//! The SLIF access graph (AG).
//!
//! "Because this graph is oriented around the various accesses among
//! functional objects, we refer to it as an access graph" (Section 2.2).
//! Nodes are behaviors and variables; edges (channels) are accesses,
//! directed from the initiating behavior to the accessed object. The graph
//! is "very much like a call-graph commonly used for software profiling,
//! with variables included in addition to procedures".
//!
//! [`AccessGraph`] validates structure on insertion — channel sources must
//! be behaviors, access kinds must match their targets — and maintains
//! adjacency indexes so the paper's `GetBehChans(b)` query is O(out-degree).

use crate::channel::{AccessKind, Channel};
use crate::error::CoreError;
use crate::ids::{AccessTarget, ChannelId, NodeId, PortId};
use crate::node::{Node, NodeKind, Port};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The functional-object side of SLIF: `< BV_all, IO_all, C_all >`.
///
/// # Examples
///
/// Building the heart of the paper's Figure 2 (the fuzzy-logic controller):
///
/// ```
/// use slif_core::{AccessGraph, AccessKind, NodeKind, PortDirection};
///
/// let mut ag = AccessGraph::new();
/// let main = ag.add_node("FuzzyMain", NodeKind::process());
/// let eval = ag.add_node("EvaluateRule", NodeKind::procedure());
/// let in1val = ag.add_node("in1val", NodeKind::scalar(8));
/// let in1 = ag.add_port("in1", PortDirection::In, 8);
///
/// ag.add_channel(main, in1.into(), AccessKind::Read)?;
/// ag.add_channel(main, in1val.into(), AccessKind::Write)?;
/// ag.add_channel(main, eval.into(), AccessKind::Call)?;
/// ag.add_channel(eval, in1val.into(), AccessKind::Read)?;
///
/// assert_eq!(ag.node_count(), 3);
/// assert_eq!(ag.channel_count(), 4);
/// assert_eq!(ag.channels_of(main).count(), 3);
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessGraph {
    nodes: Vec<Node>,
    ports: Vec<Port>,
    channels: Vec<Channel>,
    /// Outgoing channel ids per node (indexed by node).
    out_channels: Vec<Vec<ChannelId>>,
    /// Incoming channel ids per node (indexed by node).
    in_channels: Vec<Vec<ChannelId>>,
    /// Incoming channel ids per port (indexed by port).
    port_channels: Vec<Vec<ChannelId>>,
    /// Name lookup across nodes and ports.
    names: HashMap<String, NameEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NameEntry {
    Node(NodeId),
    Port(PortId),
}

impl AccessGraph {
    /// Creates an empty access graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a behavior or variable node and returns its id.
    ///
    /// Specifications have a single flat namespace of system-level objects,
    /// and the frontend mangles nested scopes before reaching this point.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if another node or port already uses
    /// `name`; the graph is left unchanged.
    pub fn try_add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, CoreError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(CoreError::DuplicateName { name });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.names.insert(name.clone(), NameEntry::Node(id));
        self.nodes.push(Node::new(name, kind));
        self.out_channels.push(Vec::new());
        self.in_channels.push(Vec::new());
        Ok(id)
    }

    /// Adds a behavior or variable node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another node or port already uses `name`; use
    /// [`try_add_node`](Self::try_add_node) to handle the collision.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        match self.try_add_node(name, kind) {
            Ok(id) => id,
            Err(CoreError::DuplicateName { name }) => {
                panic!("duplicate object name `{name}`")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds an external port and returns its id.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if another node or port already uses
    /// `name`; the graph is left unchanged.
    pub fn try_add_port(
        &mut self,
        name: impl Into<String>,
        direction: crate::node::PortDirection,
        bits: u32,
    ) -> Result<PortId, CoreError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(CoreError::DuplicateName { name });
        }
        let id = PortId(self.ports.len() as u32);
        self.names.insert(name.clone(), NameEntry::Port(id));
        self.ports.push(Port::new(name, direction, bits));
        self.port_channels.push(Vec::new());
        Ok(id)
    }

    /// Adds an external port and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another node or port already uses `name`; use
    /// [`try_add_port`](Self::try_add_port) to handle the collision.
    pub fn add_port(
        &mut self,
        name: impl Into<String>,
        direction: crate::node::PortDirection,
        bits: u32,
    ) -> PortId {
        match self.try_add_port(name, direction, bits) {
            Ok(id) => id,
            Err(CoreError::DuplicateName { name }) => {
                panic!("duplicate object name `{name}`")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a channel from behavior `src` to `dst` and returns its id.
    ///
    /// The paper merges repeated accesses into a single edge (the two calls
    /// of `EvaluateRule` by `FuzzyMain` "translate to a single edge"); use
    /// [`find_channel`](Self::find_channel) first, or
    /// [`add_or_merge_channel`](Self::add_or_merge_channel), to get that
    /// behaviour.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SourceNotBehavior`] if `src` is a variable node.
    /// * [`CoreError::KindTargetMismatch`] if the access kind cannot target
    ///   `dst` (calls and messages must target behaviors; reads and writes
    ///   must target variables or ports).
    pub fn add_channel(
        &mut self,
        src: NodeId,
        dst: AccessTarget,
        kind: AccessKind,
    ) -> Result<ChannelId, CoreError> {
        self.check_channel(src, dst, kind)?;
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel::new(src, dst, kind));
        self.out_channels[src.index()].push(id);
        match dst {
            AccessTarget::Node(n) => self.in_channels[n.index()].push(id),
            AccessTarget::Port(p) => self.port_channels[p.index()].push(id),
        }
        Ok(id)
    }

    /// [`try_add_node`](Self::try_add_node), refusing growth past
    /// `limits.max_nodes` with a typed error instead of allocating.
    ///
    /// # Errors
    ///
    /// [`CoreError::LimitExceeded`] at the node cap, or any
    /// [`try_add_node`](Self::try_add_node) error.
    pub fn try_add_node_bounded(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        limits: &crate::limits::GraphLimits,
    ) -> Result<NodeId, CoreError> {
        if self.nodes.len() >= limits.max_nodes {
            return Err(CoreError::LimitExceeded {
                what: "node",
                limit: limits.max_nodes,
                actual: self.nodes.len() + 1,
            });
        }
        self.try_add_node(name, kind)
    }

    /// [`try_add_port`](Self::try_add_port), refusing growth past
    /// `limits.max_ports` with a typed error instead of allocating.
    ///
    /// # Errors
    ///
    /// [`CoreError::LimitExceeded`] at the port cap, or any
    /// [`try_add_port`](Self::try_add_port) error.
    pub fn try_add_port_bounded(
        &mut self,
        name: impl Into<String>,
        direction: crate::node::PortDirection,
        bits: u32,
        limits: &crate::limits::GraphLimits,
    ) -> Result<PortId, CoreError> {
        if self.ports.len() >= limits.max_ports {
            return Err(CoreError::LimitExceeded {
                what: "port",
                limit: limits.max_ports,
                actual: self.ports.len() + 1,
            });
        }
        self.try_add_port(name, direction, bits)
    }

    /// [`add_channel`](Self::add_channel), refusing growth past
    /// `limits.max_channels` with a typed error instead of allocating.
    ///
    /// # Errors
    ///
    /// [`CoreError::LimitExceeded`] at the channel cap, or any
    /// [`add_channel`](Self::add_channel) error.
    pub fn try_add_channel_bounded(
        &mut self,
        src: NodeId,
        dst: AccessTarget,
        kind: AccessKind,
        limits: &crate::limits::GraphLimits,
    ) -> Result<ChannelId, CoreError> {
        if self.channels.len() >= limits.max_channels {
            return Err(CoreError::LimitExceeded {
                what: "channel",
                limit: limits.max_channels,
                actual: self.channels.len() + 1,
            });
        }
        self.add_channel(src, dst, kind)
    }

    /// Audits a finished graph against `limits`, reporting the first cap
    /// exceeded. The check a consumer runs on a graph it did not build
    /// itself (say, one deserialized from [`text`](crate::text) or built
    /// by an unbounded frontend) before compiling or estimating it.
    ///
    /// # Errors
    ///
    /// [`CoreError::LimitExceeded`] naming the violated cap.
    pub fn check_limits(&self, limits: &crate::limits::GraphLimits) -> Result<(), CoreError> {
        if self.nodes.len() > limits.max_nodes {
            return Err(CoreError::LimitExceeded {
                what: "node",
                limit: limits.max_nodes,
                actual: self.nodes.len(),
            });
        }
        if self.ports.len() > limits.max_ports {
            return Err(CoreError::LimitExceeded {
                what: "port",
                limit: limits.max_ports,
                actual: self.ports.len(),
            });
        }
        if self.channels.len() > limits.max_channels {
            return Err(CoreError::LimitExceeded {
                what: "channel",
                limit: limits.max_channels,
                actual: self.channels.len(),
            });
        }
        Ok(())
    }

    /// Returns the existing channel `src → dst` of the same kind, or adds
    /// one. Merging repeated accesses into one edge is how SLIF stays
    /// coarse: the frontend accumulates access frequencies on the single
    /// edge instead.
    ///
    /// # Errors
    ///
    /// Same as [`add_channel`](Self::add_channel).
    pub fn add_or_merge_channel(
        &mut self,
        src: NodeId,
        dst: AccessTarget,
        kind: AccessKind,
    ) -> Result<ChannelId, CoreError> {
        if let Some(existing) = self.find_channel(src, dst, kind) {
            return Ok(existing);
        }
        self.add_channel(src, dst, kind)
    }

    /// Finds the channel `src → dst` with the given kind, if present.
    pub fn find_channel(
        &self,
        src: NodeId,
        dst: AccessTarget,
        kind: AccessKind,
    ) -> Option<ChannelId> {
        self.out_channels
            .get(src.index())?
            .iter()
            .copied()
            .find(|&c| {
                let ch = &self.channels[c.index()];
                ch.dst() == dst && ch.kind() == kind
            })
    }

    fn check_channel(
        &self,
        src: NodeId,
        dst: AccessTarget,
        kind: AccessKind,
    ) -> Result<(), CoreError> {
        if !self.node(src).kind().is_behavior() {
            return Err(CoreError::SourceNotBehavior { node: src });
        }
        let dst_is_behavior = match dst {
            AccessTarget::Node(n) => self.node(n).kind().is_behavior(),
            AccessTarget::Port(p) => {
                // Validate the port id eagerly.
                let _ = self.port(p);
                false
            }
        };
        let ok = match kind {
            AccessKind::Call | AccessKind::Message => dst_is_behavior,
            AccessKind::Read | AccessKind::Write => !dst_is_behavior,
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::KindTargetMismatch {
                kind: match kind {
                    AccessKind::Call => "call",
                    AccessKind::Message => "message",
                    AccessKind::Read => "read",
                    AccessKind::Write => "write",
                },
                dst,
            })
        }
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for annotation).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Mutable access to a channel (for annotation).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut Channel {
        &mut self.channels[id.index()]
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        match self.names.get(name) {
            Some(NameEntry::Node(id)) => Some(*id),
            _ => None,
        }
    }

    /// Looks up a port by name.
    pub fn port_by_name(&self, name: &str) -> Option<PortId> {
        match self.names.get(name) {
            Some(NameEntry::Port(id)) => Some(*id),
            _ => None,
        }
    }

    /// Number of behavior + variable nodes (`|BV_all|` — the "BV" column
    /// of the paper's Figure 4).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of external ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of channels (`|C_all|` — the "C" column of Figure 4).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all port ids.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..self.ports.len() as u32).map(PortId)
    }

    /// Iterates over all channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channels.len() as u32).map(ChannelId)
    }

    /// Iterates over behavior node ids only (`B_all`).
    pub fn behavior_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(|&n| self.node(n).kind().is_behavior())
    }

    /// Iterates over variable node ids only (`V_all`).
    pub fn variable_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(|&n| self.node(n).kind().is_variable())
    }

    /// The channels accessed by behavior `b` — the paper's
    /// `GetBehChans(b)`: all channels `c` with `c.src == b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` did not come from this graph.
    pub fn channels_of(&self, b: NodeId) -> impl Iterator<Item = ChannelId> + '_ {
        self.out_channels[b.index()].iter().copied()
    }

    /// The channels that access node `n` (calls of a behavior, reads and
    /// writes of a variable).
    ///
    /// # Panics
    ///
    /// Panics if `n` did not come from this graph.
    pub fn accessors_of(&self, n: NodeId) -> impl Iterator<Item = ChannelId> + '_ {
        self.in_channels[n.index()].iter().copied()
    }

    /// The channels that access external port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` did not come from this graph.
    pub fn port_accessors(&self, p: PortId) -> impl Iterator<Item = ChannelId> + '_ {
        self.port_channels[p.index()].iter().copied()
    }

    /// Returns a node on a call/message cycle, if any such cycle exists.
    ///
    /// "A cycle would represent recursion" (Section 2.2). Execution-time
    /// estimation requires an acyclic behavior-access structure, so callers
    /// use this to detect recursion up front.
    ///
    /// Channels whose destination id is out of range (possible only in a
    /// corrupted graph) are skipped rather than followed; dangling
    /// references are reported separately by
    /// [`validate`](crate::validate::validate_design).
    pub fn find_recursion(&self) -> Option<NodeId> {
        // Iterative DFS over behavior→behavior edges with colour marking.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.nodes.len()];
        for start in self.behavior_ids() {
            if colour[start.index()] != Colour::White {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
            colour[start.index()] = Colour::Grey;
            'dfs: while let Some(&(n, _)) = stack.last() {
                let out = &self.out_channels[n.index()];
                loop {
                    let next = stack.last().expect("stack is non-empty").1;
                    if next >= out.len() {
                        break;
                    }
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let ch = &self.channels[out[next].index()];
                    if let AccessTarget::Node(dst) = ch.dst() {
                        if dst.index() < self.nodes.len() && self.node(dst).kind().is_behavior() {
                            match colour[dst.index()] {
                                Colour::Grey => return Some(dst),
                                Colour::White => {
                                    colour[dst.index()] = Colour::Grey;
                                    stack.push((dst, 0));
                                    continue 'dfs;
                                }
                                Colour::Black => {}
                            }
                        }
                    }
                }
                colour[n.index()] = Colour::Black;
                stack.pop();
            }
        }
        None
    }

    /// Returns the behavior ids in reverse topological order of the
    /// behavior-access (call) relation: every behavior appears after all
    /// behaviors it accesses.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RecursiveAccess`] if the call structure is
    /// cyclic.
    pub fn behaviors_bottom_up(&self) -> Result<Vec<NodeId>, CoreError> {
        if let Some(node) = self.find_recursion() {
            return Err(CoreError::RecursiveAccess { node });
        }
        let mut order = Vec::new();
        let mut state = vec![0u8; self.nodes.len()]; // 0 unvisited, 1 in-stack, 2 done
        for start in self.behavior_ids() {
            if state[start.index()] != 0 {
                continue;
            }
            let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
            state[start.index()] = 1;
            'dfs: while let Some(&(n, _)) = stack.last() {
                let out = &self.out_channels[n.index()];
                loop {
                    let next = stack.last().expect("stack is non-empty").1;
                    if next >= out.len() {
                        break;
                    }
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let ch = &self.channels[out[next].index()];
                    if let AccessTarget::Node(dst) = ch.dst() {
                        if dst.index() < self.nodes.len()
                            && self.node(dst).kind().is_behavior()
                            && state[dst.index()] == 0
                        {
                            state[dst.index()] = 1;
                            stack.push((dst, 0));
                            continue 'dfs;
                        }
                    }
                }
                state[n.index()] = 2;
                order.push(n);
                stack.pop();
            }
        }
        Ok(order)
    }

    /// All nodes from which `target` is reachable over channels (including
    /// `target` itself): the transitive initiators whose estimates depend
    /// on `target`. Used by incremental estimation to invalidate caches.
    pub fn dependents_of(&self, target: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![target];
        seen[target.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in &self.in_channels[n.index()] {
                let src = self.channels[c.index()].src();
                if src.index() < seen.len() && !seen[src.index()] {
                    seen[src.index()] = true;
                    stack.push(src);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PortDirection;

    fn tiny() -> (AccessGraph, NodeId, NodeId, NodeId) {
        let mut ag = AccessGraph::new();
        let main = ag.add_node("Main", NodeKind::process());
        let sub = ag.add_node("Sub", NodeKind::procedure());
        let v = ag.add_node("v", NodeKind::scalar(8));
        (ag, main, sub, v)
    }

    #[test]
    fn add_and_query_channels() {
        let (mut ag, main, sub, v) = tiny();
        let c1 = ag.add_channel(main, sub.into(), AccessKind::Call).unwrap();
        let c2 = ag.add_channel(sub, v.into(), AccessKind::Write).unwrap();
        assert_eq!(ag.channels_of(main).collect::<Vec<_>>(), vec![c1]);
        assert_eq!(ag.channels_of(sub).collect::<Vec<_>>(), vec![c2]);
        assert_eq!(ag.accessors_of(sub).collect::<Vec<_>>(), vec![c1]);
        assert_eq!(ag.accessors_of(v).collect::<Vec<_>>(), vec![c2]);
    }

    #[test]
    fn variable_cannot_initiate_access() {
        let (mut ag, _main, sub, v) = tiny();
        let err = ag.add_channel(v, sub.into(), AccessKind::Call).unwrap_err();
        assert_eq!(err, CoreError::SourceNotBehavior { node: v });
    }

    #[test]
    fn call_must_target_behavior() {
        let (mut ag, main, _sub, v) = tiny();
        let err = ag
            .add_channel(main, v.into(), AccessKind::Call)
            .unwrap_err();
        assert!(matches!(err, CoreError::KindTargetMismatch { .. }));
    }

    #[test]
    fn read_must_target_variable_or_port() {
        let (mut ag, main, sub, _v) = tiny();
        let err = ag
            .add_channel(main, sub.into(), AccessKind::Read)
            .unwrap_err();
        assert!(matches!(err, CoreError::KindTargetMismatch { .. }));
        let p = ag.add_port("in1", PortDirection::In, 8);
        assert!(ag.add_channel(main, p.into(), AccessKind::Read).is_ok());
    }

    #[test]
    fn merge_reuses_existing_edge() {
        let (mut ag, main, sub, _v) = tiny();
        let c1 = ag
            .add_or_merge_channel(main, sub.into(), AccessKind::Call)
            .unwrap();
        let c2 = ag
            .add_or_merge_channel(main, sub.into(), AccessKind::Call)
            .unwrap();
        assert_eq!(c1, c2);
        assert_eq!(ag.channel_count(), 1);
    }

    #[test]
    fn name_lookup() {
        let (mut ag, main, _sub, v) = tiny();
        let p = ag.add_port("in1", PortDirection::In, 8);
        assert_eq!(ag.node_by_name("Main"), Some(main));
        assert_eq!(ag.node_by_name("v"), Some(v));
        assert_eq!(ag.port_by_name("in1"), Some(p));
        assert_eq!(ag.node_by_name("in1"), None);
        assert_eq!(ag.node_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate object name")]
    fn duplicate_names_rejected() {
        let mut ag = AccessGraph::new();
        ag.add_node("x", NodeKind::scalar(8));
        ag.add_node("x", NodeKind::process());
    }

    #[test]
    fn try_add_reports_duplicates_without_mutating() {
        let mut ag = AccessGraph::new();
        let x = ag.try_add_node("x", NodeKind::scalar(8)).unwrap();
        let err = ag.try_add_node("x", NodeKind::process()).unwrap_err();
        assert_eq!(err, CoreError::DuplicateName { name: "x".into() });
        // A port colliding with a node name is also rejected, and the
        // failed insertions leave the graph untouched.
        let err = ag
            .try_add_port("x", PortDirection::In, 8)
            .unwrap_err();
        assert_eq!(err, CoreError::DuplicateName { name: "x".into() });
        assert_eq!(ag.node_count(), 1);
        assert_eq!(ag.port_count(), 0);
        assert_eq!(ag.node_by_name("x"), Some(x));
        assert!(ag.node(x).kind().is_variable(), "first insertion wins");
        let p = ag.try_add_port("in1", PortDirection::In, 8).unwrap();
        let err = ag.try_add_node("in1", NodeKind::process()).unwrap_err();
        assert_eq!(err, CoreError::DuplicateName { name: "in1".into() });
        assert_eq!(ag.port_by_name("in1"), Some(p));
    }

    #[test]
    fn recursion_detected() {
        let (mut ag, main, sub, _v) = tiny();
        ag.add_channel(main, sub.into(), AccessKind::Call).unwrap();
        assert_eq!(ag.find_recursion(), None);
        ag.add_channel(sub, main.into(), AccessKind::Call).unwrap();
        assert!(ag.find_recursion().is_some());
        assert!(matches!(
            ag.behaviors_bottom_up(),
            Err(CoreError::RecursiveAccess { .. })
        ));
    }

    #[test]
    fn self_recursion_detected() {
        let (mut ag, _main, sub, _v) = tiny();
        ag.add_channel(sub, sub.into(), AccessKind::Call).unwrap();
        assert_eq!(ag.find_recursion(), Some(sub));
    }

    #[test]
    fn bottom_up_order_has_callees_first() {
        let (mut ag, main, sub, _v) = tiny();
        let leaf = ag.add_node("Leaf", NodeKind::procedure());
        ag.add_channel(main, sub.into(), AccessKind::Call).unwrap();
        ag.add_channel(sub, leaf.into(), AccessKind::Call).unwrap();
        let order = ag.behaviors_bottom_up().unwrap();
        let pos = |n: NodeId| order.iter().position(|&m| m == n).unwrap();
        assert!(pos(leaf) < pos(sub));
        assert!(pos(sub) < pos(main));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn dependents_walks_initiators_transitively() {
        let (mut ag, main, sub, v) = tiny();
        ag.add_channel(main, sub.into(), AccessKind::Call).unwrap();
        ag.add_channel(sub, v.into(), AccessKind::Write).unwrap();
        let mut deps = ag.dependents_of(v);
        deps.sort();
        assert_eq!(deps, vec![main, sub, v]);
        let deps_main = ag.dependents_of(main);
        assert_eq!(deps_main, vec![main]);
    }

    #[test]
    fn counts_track_insertions() {
        let (mut ag, main, _sub, v) = tiny();
        assert_eq!(ag.node_count(), 3);
        assert_eq!(ag.channel_count(), 0);
        ag.add_port("o", PortDirection::Out, 4);
        ag.add_channel(main, v.into(), AccessKind::Read).unwrap();
        assert_eq!(ag.port_count(), 1);
        assert_eq!(ag.channel_count(), 1);
        assert_eq!(ag.behavior_ids().count(), 2);
        assert_eq!(ag.variable_ids().count(), 1);
    }
}
