//! A compiled, immutable query layer over a finished [`Design`].
//!
//! The paper's pitch is that SLIF annotations make estimation "a matter of
//! table lookups and sums" (Section 3). The mutable [`Design`] is built for
//! *construction* — growable vectors of vectors, name hash maps, per-class
//! weight lists searched binarily — none of which is the fastest shape for
//! the estimation-in-the-loop hot path. [`CompiledDesign`] is the same
//! information re-laid-out for *querying*:
//!
//! * CSR (compressed sparse row) out/in/port adjacency: one offset array
//!   plus one flat channel-id array per direction, preserving the graph's
//!   per-node insertion order exactly,
//! * per-channel slabs (`src`, `dst`, kind, bits, freq, tag) so a channel's
//!   annotations are a few contiguous loads instead of a struct walk,
//! * dense per-node × per-class `ict`/`size` weight tables replacing the
//!   [`WeightList`](crate::WeightList) binary search with one index,
//! * interned object names with a sorted index for by-name lookup,
//! * precomputed bottom-up behavior order and the ascending list of
//!   process nodes (the roots of Equation 1),
//! * component/bus slabs (classes, constraints, bitwidth/ts/td/capacity).
//!
//! A `CompiledDesign` is deliberately plain data: `Clone`, `Send + Sync`,
//! no interior mutability. Estimators share one compiled view and keep the
//! [`Partition`](crate::Partition) as the only mutable state, which is the
//! prerequisite for parallel multi-start exploration. There is no
//! general invalidation story by design — mutate the [`Design`], compile
//! again. The one bounded exception is
//! [`patch_annotations_from`](CompiledDesign::patch_annotations_from),
//! which refreshes the annotation slabs in place when the topology is
//! provably unchanged (the edit-session fast path).

use crate::annotation::{AccessFreq, ConcurrencyTag};
use crate::channel::AccessKind;
use crate::component::ClassKind;
use crate::design::Design;
use crate::error::CoreError;
use crate::ids::{AccessTarget, BusId, ChannelId, ClassId, MemoryId, NodeId, PmRef, PortId};
use crate::node::NodeKind;

/// An immutable, query-optimized snapshot of a [`Design`].
///
/// Built once with [`CompiledDesign::compile`] after the frontend finishes
/// (`build_design`), then shared by every estimator and partitioner. All
/// query methods mirror the corresponding [`AccessGraph`](crate::AccessGraph)
/// / [`Design`] queries element-for-element (including iteration order),
/// so estimates computed through the compiled view are bit-identical to
/// estimates computed by walking the design.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_core::CompiledDesign;
///
/// let (design, _) = DesignGenerator::new(7).build();
/// let cd = CompiledDesign::compile(&design);
/// for n in design.graph().node_ids() {
///     let a: Vec<_> = design.graph().channels_of(n).collect();
///     assert_eq!(cd.channels_of(n), &a[..]);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDesign {
    node_count: usize,
    port_count: usize,
    channel_count: usize,
    class_count: usize,
    processor_count: usize,
    memory_count: usize,
    bus_count: usize,

    // CSR adjacency: `*_offsets` has one entry per row plus a trailing
    // total; row `i`'s ids are `*_adj[offsets[i]..offsets[i + 1]]` in the
    // graph's insertion order.
    out_offsets: Vec<u32>,
    out_adj: Vec<ChannelId>,
    in_offsets: Vec<u32>,
    in_adj: Vec<ChannelId>,
    port_offsets: Vec<u32>,
    port_adj: Vec<ChannelId>,

    // Channel slabs.
    chan_src: Vec<NodeId>,
    chan_dst: Vec<AccessTarget>,
    chan_kind: Vec<AccessKind>,
    chan_bits: Vec<u32>,
    chan_freq: Vec<AccessFreq>,
    chan_tag: Vec<ConcurrencyTag>,

    // Node slabs.
    node_kind: Vec<NodeKind>,

    // Interned names: node names first, then port names; `name_order`
    // holds indices into `names` sorted by the name they point at.
    names: Vec<String>,
    name_order: Vec<u32>,

    // Dense weight tables indexed `[node * class_count + class]`; `None`
    // marks a class the node has no recorded weight for.
    ict: Vec<Option<u64>>,
    size_val: Vec<Option<u64>>,
    size_datapath: Vec<Option<u64>>,

    // Component slabs in `pm_index` order (processors, then memories).
    class_kind: Vec<ClassKind>,
    pm_class: Vec<ClassId>,
    proc_size_constraint: Vec<Option<u64>>,
    proc_pin_constraint: Vec<Option<u32>>,
    mem_size_constraint: Vec<Option<u64>>,

    // Bus slabs.
    bus_bitwidth: Vec<u32>,
    bus_ts: Vec<u64>,
    bus_td: Vec<u64>,
    bus_capacity: Vec<Option<f64>>,

    // Precomputed traversals.
    bottom_up: Result<Vec<NodeId>, CoreError>,
    process_nodes: Vec<NodeId>,
}

/// What changed when a compiled view was re-annotated in place by
/// [`CompiledDesign::patch_annotations_delta`].
///
/// The booleans classify the change by *which annotation slab* it hit,
/// which is exactly the granularity downstream slicers need: the lint
/// passes partition into "reads channel bits/tags", "reads weights",
/// and "reads topology only", so a patch that only moved access
/// frequencies can skip every lint pass, while the estimator's memo
/// invalidation keys off the per-node dirty set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnnotationDelta {
    /// Nodes whose estimates may have changed: every node with a changed
    /// weight row, plus the source node of every changed channel.
    pub dirty_nodes: Vec<NodeId>,
    /// Some channel's bit width or concurrency tag changed.
    pub chan_bits_or_tags: bool,
    /// Some channel's access frequency changed.
    pub chan_freqs: bool,
    /// Some node's dense `ict`/`size` weight row changed.
    pub weights: bool,
}

impl AnnotationDelta {
    /// True when the patch found nothing to change — the compiled view
    /// is byte-identical to before and every downstream cache is valid.
    pub fn is_empty(&self) -> bool {
        self.dirty_nodes.is_empty()
            && !self.chan_bits_or_tags
            && !self.chan_freqs
            && !self.weights
    }
}

impl CompiledDesign {
    /// Compiles `design` into the immutable query layout.
    ///
    /// Tolerates the dangling references a fault injector (or buggy
    /// producer) can leave behind — out-of-range weight classes are
    /// dropped from the dense tables (they are unreachable through a
    /// valid [`ClassId`] anyway), and endpoint ids are copied verbatim
    /// for the estimators' own range checks to report.
    pub fn compile(design: &Design) -> Self {
        let g = design.graph();
        let node_count = g.node_count();
        let port_count = g.port_count();
        let channel_count = g.channel_count();
        let class_count = design.class_count();

        let mut out_offsets = Vec::with_capacity(node_count + 1);
        let mut out_adj = Vec::with_capacity(channel_count);
        let mut in_offsets = Vec::with_capacity(node_count + 1);
        let mut in_adj = Vec::with_capacity(channel_count);
        out_offsets.push(0);
        in_offsets.push(0);
        for n in g.node_ids() {
            out_adj.extend(g.channels_of(n));
            out_offsets.push(out_adj.len() as u32);
            in_adj.extend(g.accessors_of(n));
            in_offsets.push(in_adj.len() as u32);
        }
        let mut port_offsets = Vec::with_capacity(port_count + 1);
        let mut port_adj = Vec::new();
        port_offsets.push(0);
        for p in g.port_ids() {
            port_adj.extend(g.port_accessors(p));
            port_offsets.push(port_adj.len() as u32);
        }

        let mut chan_src = Vec::with_capacity(channel_count);
        let mut chan_dst = Vec::with_capacity(channel_count);
        let mut chan_kind = Vec::with_capacity(channel_count);
        let mut chan_bits = Vec::with_capacity(channel_count);
        let mut chan_freq = Vec::with_capacity(channel_count);
        let mut chan_tag = Vec::with_capacity(channel_count);
        for c in g.channel_ids() {
            let ch = g.channel(c);
            chan_src.push(ch.src());
            chan_dst.push(ch.dst());
            chan_kind.push(ch.kind());
            chan_bits.push(ch.bits());
            chan_freq.push(ch.freq());
            chan_tag.push(ch.tag());
        }

        let mut node_kind = Vec::with_capacity(node_count);
        let mut names = Vec::with_capacity(node_count + port_count);
        let mut ict = vec![None; node_count * class_count];
        let mut size_val = vec![None; node_count * class_count];
        let mut size_datapath = vec![None; node_count * class_count];
        for n in g.node_ids() {
            let node = g.node(n);
            node_kind.push(node.kind());
            names.push(node.name().to_owned());
            let row = n.index() * class_count;
            for e in node.ict().iter() {
                if e.class.index() < class_count {
                    ict[row + e.class.index()] = Some(e.val);
                }
            }
            for e in node.size().iter() {
                if e.class.index() < class_count {
                    size_val[row + e.class.index()] = Some(e.val);
                    size_datapath[row + e.class.index()] = e.datapath;
                }
            }
        }
        for p in g.port_ids() {
            names.push(g.port(p).name().to_owned());
        }
        let mut name_order: Vec<u32> = (0..names.len() as u32).collect();
        name_order.sort_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));

        let class_kind = design.class_ids().map(|k| design.class(k).kind()).collect();
        let mut pm_class = Vec::with_capacity(design.processor_count() + design.memory_count());
        let mut proc_size_constraint = Vec::with_capacity(design.processor_count());
        let mut proc_pin_constraint = Vec::with_capacity(design.processor_count());
        for p in design.processor_ids() {
            let proc = design.processor(p);
            pm_class.push(proc.class());
            proc_size_constraint.push(proc.size_constraint());
            proc_pin_constraint.push(proc.pin_constraint());
        }
        let mut mem_size_constraint = Vec::with_capacity(design.memory_count());
        for m in design.memory_ids() {
            let mem = design.memory(m);
            pm_class.push(mem.class());
            mem_size_constraint.push(mem.size_constraint());
        }

        let mut bus_bitwidth = Vec::with_capacity(design.bus_count());
        let mut bus_ts = Vec::with_capacity(design.bus_count());
        let mut bus_td = Vec::with_capacity(design.bus_count());
        let mut bus_capacity = Vec::with_capacity(design.bus_count());
        for b in design.bus_ids() {
            let bus = design.bus(b);
            bus_bitwidth.push(bus.bitwidth());
            bus_ts.push(bus.ts());
            bus_td.push(bus.td());
            bus_capacity.push(bus.capacity());
        }

        let bottom_up = g.behaviors_bottom_up();
        let process_nodes = g
            .node_ids()
            .filter(|&n| g.node(n).kind().is_process())
            .collect();

        Self {
            node_count,
            port_count,
            channel_count,
            class_count,
            processor_count: design.processor_count(),
            memory_count: design.memory_count(),
            bus_count: design.bus_count(),
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            port_offsets,
            port_adj,
            chan_src,
            chan_dst,
            chan_kind,
            chan_bits,
            chan_freq,
            chan_tag,
            node_kind,
            names,
            name_order,
            ict,
            size_val,
            size_datapath,
            class_kind,
            pm_class,
            proc_size_constraint,
            proc_pin_constraint,
            mem_size_constraint,
            bus_bitwidth,
            bus_ts,
            bus_td,
            bus_capacity,
            bottom_up,
            process_nodes,
        }
    }

    /// [`compile`](Self::compile) guarded by [`GraphLimits`]: the graph's
    /// node/port/channel counts are audited first, and the dense
    /// weight-table product (`nodes × classes`, the allocation a hostile
    /// class-heavy design can blow up) is checked against
    /// `limits.max_weight_cells` — so an over-limit design costs a typed
    /// error, not gigabytes.
    ///
    /// # Errors
    ///
    /// [`CoreError::LimitExceeded`] naming the violated cap.
    pub fn compile_bounded(
        design: &Design,
        limits: &crate::limits::GraphLimits,
    ) -> Result<Self, CoreError> {
        design.graph().check_limits(limits)?;
        let cells = design
            .graph()
            .node_count()
            .saturating_mul(design.class_count());
        if cells > limits.max_weight_cells {
            return Err(CoreError::LimitExceeded {
                what: "weight cell",
                limit: limits.max_weight_cells,
                actual: cells,
            });
        }
        Ok(Self::compile(design))
    }

    /// Re-copies every *annotation* — channel bits/frequencies/tags and
    /// the dense per-class `ict`/`size` weight tables — from `design`
    /// into this compiled view, leaving the topology (CSR adjacency,
    /// node kinds, names, precomputed orders) untouched. The fast path
    /// for edit sessions whose edit changed only weights and access
    /// frequencies.
    ///
    /// Returns the nodes whose estimates may have changed: every node
    /// with a changed weight row, plus the source node of every changed
    /// channel (a channel's frequency and bits feed its source's
    /// execution time and traffic).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] when `design` is not
    /// topology-identical to the design this view was compiled from
    /// (counts, node names/kinds, channel endpoints/kinds,
    /// component/bus structure). The view is unchanged on error;
    /// callers fall back to a full [`compile`](Self::compile).
    pub fn patch_annotations_from(&mut self, design: &Design) -> Result<Vec<NodeId>, CoreError> {
        self.patch_annotations_delta(design).map(|d| d.dirty_nodes)
    }

    /// [`patch_annotations_from`](Self::patch_annotations_from), but
    /// reporting *which kinds* of annotation changed alongside the dirty
    /// nodes — the classification downstream slicers (incremental lint,
    /// memoized estimation) key their invalidation on.
    ///
    /// # Errors
    ///
    /// As for [`patch_annotations_from`](Self::patch_annotations_from).
    pub fn patch_annotations_delta(
        &mut self,
        design: &Design,
    ) -> Result<AnnotationDelta, CoreError> {
        fn mismatch(what: &str) -> CoreError {
            CoreError::InvalidInput {
                message: format!("patch_annotations_from: {what} differs from the compiled view"),
            }
        }
        let g = design.graph();
        if g.node_count() != self.node_count
            || g.port_count() != self.port_count
            || g.channel_count() != self.channel_count
            || design.class_count() != self.class_count
            || design.processor_count() != self.processor_count
            || design.memory_count() != self.memory_count
            || design.bus_count() != self.bus_count
        {
            return Err(mismatch("an object count"));
        }
        for n in g.node_ids() {
            let node = g.node(n);
            if node.name() != self.names[n.index()] {
                return Err(mismatch("a node name"));
            }
            if node.kind() != self.node_kind[n.index()] {
                return Err(mismatch("a node kind"));
            }
        }
        for (i, p) in g.port_ids().enumerate() {
            if g.port(p).name() != self.names[self.node_count + i] {
                return Err(mismatch("a port name"));
            }
        }
        for c in g.channel_ids() {
            let ch = g.channel(c);
            let i = c.index();
            if ch.src() != self.chan_src[i]
                || ch.dst() != self.chan_dst[i]
                || ch.kind() != self.chan_kind[i]
            {
                return Err(mismatch("a channel endpoint or kind"));
            }
        }
        let classes_match = design
            .class_ids()
            .map(|k| design.class(k).kind())
            .eq(self.class_kind.iter().copied());
        if !classes_match {
            return Err(mismatch("a class kind"));
        }
        let pm: Vec<ClassId> = design
            .processor_ids()
            .map(|p| design.processor(p).class())
            .chain(design.memory_ids().map(|m| design.memory(m).class()))
            .collect();
        if pm != self.pm_class {
            return Err(mismatch("a component class"));
        }
        let alloc_matches = design
            .processor_ids()
            .map(|p| design.processor(p))
            .enumerate()
            .all(|(i, proc)| {
                proc.size_constraint() == self.proc_size_constraint[i]
                    && proc.pin_constraint() == self.proc_pin_constraint[i]
            })
            && design
                .memory_ids()
                .map(|m| design.memory(m))
                .enumerate()
                .all(|(i, mem)| mem.size_constraint() == self.mem_size_constraint[i])
            && design.bus_ids().map(|b| design.bus(b)).enumerate().all(|(i, bus)| {
                bus.bitwidth() == self.bus_bitwidth[i]
                    && bus.ts() == self.bus_ts[i]
                    && bus.td() == self.bus_td[i]
                    && bus.capacity() == self.bus_capacity[i]
            });
        if !alloc_matches {
            return Err(mismatch("a component or bus constraint"));
        }

        // Topology verified; copy the annotation slabs, tracking what
        // actually changed.
        let mut delta = AnnotationDelta::default();
        let mut dirty = vec![false; self.node_count];
        for c in g.channel_ids() {
            let ch = g.channel(c);
            let i = c.index();
            let bits_or_tag =
                self.chan_bits[i] != ch.bits() || self.chan_tag[i] != ch.tag();
            let freq = self.chan_freq[i] != ch.freq();
            if bits_or_tag || freq {
                self.chan_bits[i] = ch.bits();
                self.chan_freq[i] = ch.freq();
                self.chan_tag[i] = ch.tag();
                delta.chan_bits_or_tags |= bits_or_tag;
                delta.chan_freqs |= freq;
                if ch.src().index() < dirty.len() {
                    dirty[ch.src().index()] = true;
                }
            }
        }
        // Rebuild each node's dense rows with exactly `compile`'s fill
        // semantics (range-checked class, later entries win).
        let mut new_ict = vec![None; self.class_count];
        let mut new_size = vec![None; self.class_count];
        let mut new_datapath = vec![None; self.class_count];
        for n in g.node_ids() {
            let node = g.node(n);
            new_ict.fill(None);
            new_size.fill(None);
            new_datapath.fill(None);
            for e in node.ict().iter() {
                if e.class.index() < self.class_count {
                    new_ict[e.class.index()] = Some(e.val);
                }
            }
            for e in node.size().iter() {
                if e.class.index() < self.class_count {
                    new_size[e.class.index()] = Some(e.val);
                    new_datapath[e.class.index()] = e.datapath;
                }
            }
            let row = n.index() * self.class_count;
            let range = row..row + self.class_count;
            if self.ict[range.clone()] != new_ict[..]
                || self.size_val[range.clone()] != new_size[..]
                || self.size_datapath[range.clone()] != new_datapath[..]
            {
                self.ict[range.clone()].copy_from_slice(&new_ict);
                self.size_val[range.clone()].copy_from_slice(&new_size);
                self.size_datapath[range].copy_from_slice(&new_datapath);
                delta.weights = true;
                dirty[n.index()] = true;
            }
        }
        delta.dirty_nodes = g.node_ids().filter(|n| dirty[n.index()]).collect();
        Ok(delta)
    }

    // ---- counts -------------------------------------------------------

    /// Number of behavior + variable nodes (`|BV_all|`).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of external ports.
    pub fn port_count(&self) -> usize {
        self.port_count
    }

    /// Number of channels (`|C_all|`).
    pub fn channel_count(&self) -> usize {
        self.channel_count
    }

    /// Number of registered component classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of allocated processors (`|P_all|`).
    pub fn processor_count(&self) -> usize {
        self.processor_count
    }

    /// Number of allocated memories (`|M_all|`).
    pub fn memory_count(&self) -> usize {
        self.memory_count
    }

    /// Number of allocated buses (`|I_all|`).
    pub fn bus_count(&self) -> usize {
        self.bus_count
    }

    // ---- id iterators -------------------------------------------------
    //
    // Ids are dense, so iteration is a counter; the returned iterators do
    // not borrow the compiled design, which lets callers interleave them
    // with mutable estimator state.

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count as u32).map(NodeId::from_raw)
    }

    /// Iterates over all port ids in ascending order.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> {
        (0..self.port_count as u32).map(PortId::from_raw)
    }

    /// Iterates over all channel ids in ascending order.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channel_count as u32).map(ChannelId::from_raw)
    }

    /// Iterates over all processor ids in ascending order.
    pub fn processor_ids(&self) -> impl Iterator<Item = crate::ids::ProcessorId> {
        (0..self.processor_count as u32).map(crate::ids::ProcessorId::from_raw)
    }

    /// Iterates over all bus ids in ascending order.
    pub fn bus_ids(&self) -> impl Iterator<Item = BusId> {
        (0..self.bus_count as u32).map(BusId::from_raw)
    }

    // ---- adjacency ----------------------------------------------------

    /// The channels accessed by behavior `b` — the paper's
    /// `GetBehChans(b)` — in the graph's insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `b` did not come from the compiled design.
    pub fn channels_of(&self, b: NodeId) -> &[ChannelId] {
        let i = b.index();
        &self.out_adj[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// The channels that access node `n`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` did not come from the compiled design.
    pub fn accessors_of(&self, n: NodeId) -> &[ChannelId] {
        let i = n.index();
        &self.in_adj[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// The channels that access external port `p`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `p` did not come from the compiled design.
    pub fn port_accessors(&self, p: PortId) -> &[ChannelId] {
        let i = p.index();
        &self.port_adj[self.port_offsets[i] as usize..self.port_offsets[i + 1] as usize]
    }

    /// All nodes from which `target` is reachable over channels (including
    /// `target` itself), in the same order as
    /// [`AccessGraph::dependents_of`](crate::AccessGraph::dependents_of).
    ///
    /// # Panics
    ///
    /// Panics if `target` did not come from the compiled design.
    pub fn dependents_of(&self, target: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![target];
        seen[target.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.accessors_of(n) {
                let src = self.chan_src[c.index()];
                if src.index() < seen.len() && !seen[src.index()] {
                    seen[src.index()] = true;
                    stack.push(src);
                }
            }
        }
        out
    }

    /// The precomputed bottom-up behavior order (every behavior after all
    /// behaviors it accesses), or the [`CoreError::RecursiveAccess`] the
    /// traversal hit at compile time.
    ///
    /// # Errors
    ///
    /// [`CoreError::RecursiveAccess`] if the call structure is cyclic.
    pub fn behaviors_bottom_up(&self) -> Result<&[NodeId], CoreError> {
        match &self.bottom_up {
            Ok(order) => Ok(order),
            Err(e) => Err(e.clone()),
        }
    }

    /// The process nodes (Equation 1's roots) in ascending id order.
    pub fn process_nodes(&self) -> &[NodeId] {
        &self.process_nodes
    }

    // ---- node / channel slabs -----------------------------------------

    /// What node `n` represents.
    ///
    /// # Panics
    ///
    /// Panics if `n` did not come from the compiled design.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        self.node_kind[n.index()]
    }

    /// Node `n`'s interned name.
    ///
    /// # Panics
    ///
    /// Panics if `n` did not come from the compiled design.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// Port `p`'s interned name.
    ///
    /// # Panics
    ///
    /// Panics if `p` did not come from the compiled design.
    pub fn port_name(&self, p: PortId) -> &str {
        &self.names[self.node_count + p.index()]
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        match self.name_entry(name)? {
            i if i < self.node_count => Some(NodeId::from_raw(i as u32)),
            _ => None,
        }
    }

    /// Looks up a port by name.
    pub fn port_by_name(&self, name: &str) -> Option<PortId> {
        match self.name_entry(name)? {
            i if i >= self.node_count => Some(PortId::from_raw((i - self.node_count) as u32)),
            _ => None,
        }
    }

    fn name_entry(&self, name: &str) -> Option<usize> {
        self.name_order
            .binary_search_by(|&i| self.names[i as usize].as_str().cmp(name))
            .ok()
            .map(|pos| self.name_order[pos] as usize)
    }

    /// The accessing (initiating) behavior of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_src(&self, c: ChannelId) -> NodeId {
        self.chan_src[c.index()]
    }

    /// The accessed behavior, variable, or port of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_dst(&self, c: ChannelId) -> AccessTarget {
        self.chan_dst[c.index()]
    }

    /// The flavour of access channel `c` performs.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_kind(&self, c: ChannelId) -> AccessKind {
        self.chan_kind[c.index()]
    }

    /// Bits transferred per access of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_bits(&self, c: ChannelId) -> u32 {
        self.chan_bits[c.index()]
    }

    /// The access-frequency annotation of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_freq(&self, c: ChannelId) -> AccessFreq {
        self.chan_freq[c.index()]
    }

    /// The concurrency tag of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from the compiled design.
    pub fn chan_tag(&self, c: ChannelId) -> ConcurrencyTag {
        self.chan_tag[c.index()]
    }

    // ---- dense weight tables ------------------------------------------

    /// The `ict` weight of node `n` on `class` — the paper's
    /// `GetBvIct(bv, pm)` as a single table load.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `class` did not come from the compiled design.
    pub fn ict_weight(&self, n: NodeId, class: ClassId) -> Option<u64> {
        assert!(class.index() < self.class_count, "class out of range");
        self.ict[n.index() * self.class_count + class.index()]
    }

    /// The `size` weight of node `n` on `class` — the paper's
    /// `GetBvSize(bv, pm)` as a single table load.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `class` did not come from the compiled design.
    pub fn size_weight(&self, n: NodeId, class: ClassId) -> Option<u64> {
        assert!(class.index() < self.class_count, "class out of range");
        self.size_val[n.index() * self.class_count + class.index()]
    }

    /// The datapath portion of `n`'s size weight on `class`, when the
    /// frontend recorded a datapath/control split.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `class` did not come from the compiled design.
    pub fn size_datapath(&self, n: NodeId, class: ClassId) -> Option<u64> {
        assert!(class.index() < self.class_count, "class out of range");
        self.size_datapath[n.index() * self.class_count + class.index()]
    }

    // ---- components ---------------------------------------------------

    /// The technology kind of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` did not come from the compiled design.
    pub fn class_kind(&self, class: ClassId) -> ClassKind {
        self.class_kind[class.index()]
    }

    /// Whether `pm` names a component that exists in the design.
    pub fn pm_exists(&self, pm: PmRef) -> bool {
        match pm {
            PmRef::Processor(p) => p.index() < self.processor_count,
            PmRef::Memory(m) => m.index() < self.memory_count,
        }
    }

    /// The class of a processor-or-memory component.
    ///
    /// # Panics
    ///
    /// Panics if `pm` did not come from the compiled design.
    pub fn component_class(&self, pm: PmRef) -> ClassId {
        self.pm_class[self.pm_index(pm)]
    }

    /// Dense index of a component: processors first, then memories.
    ///
    /// Matches the slot layout estimators use for per-component caches.
    pub fn pm_index(&self, pm: PmRef) -> usize {
        match pm {
            PmRef::Processor(p) => p.index(),
            PmRef::Memory(m) => self.processor_count + m.index(),
        }
    }

    /// The component at dense index `i` (inverse of
    /// [`pm_index`](Self::pm_index)).
    ///
    /// # Panics
    ///
    /// Panics if `i` is at least `processor_count + memory_count`.
    pub fn pm_of_index(&self, i: usize) -> PmRef {
        if i < self.processor_count {
            PmRef::Processor(crate::ids::ProcessorId::from_raw(i as u32))
        } else {
            assert!(i - self.processor_count < self.memory_count, "pm index out of range");
            PmRef::Memory(MemoryId::from_raw((i - self.processor_count) as u32))
        }
    }

    /// Number of processor-or-memory components.
    pub fn pm_count(&self) -> usize {
        self.processor_count + self.memory_count
    }

    /// Iterates over all processor-or-memory component references in the
    /// same order as [`Design::pm_refs`]: processors, then memories.
    pub fn pm_refs(&self) -> impl Iterator<Item = PmRef> + '_ {
        (0..self.processor_count as u32)
            .map(|p| PmRef::Processor(crate::ids::ProcessorId::from_raw(p)))
            .chain((0..self.memory_count as u32).map(|m| PmRef::Memory(MemoryId::from_raw(m))))
    }

    /// The size constraint of component `pm`, if constrained.
    ///
    /// # Panics
    ///
    /// Panics if `pm` did not come from the compiled design.
    pub fn size_constraint(&self, pm: PmRef) -> Option<u64> {
        match pm {
            PmRef::Processor(p) => self.proc_size_constraint[p.index()],
            PmRef::Memory(m) => self.mem_size_constraint[m.index()],
        }
    }

    /// The pin constraint of processor `p`, if constrained.
    ///
    /// # Panics
    ///
    /// Panics if `p` did not come from the compiled design.
    pub fn pin_constraint(&self, p: crate::ids::ProcessorId) -> Option<u32> {
        self.proc_pin_constraint[p.index()]
    }

    // ---- buses --------------------------------------------------------

    /// Number of physical wires of bus `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` did not come from the compiled design.
    pub fn bus_bitwidth(&self, b: BusId) -> u32 {
        self.bus_bitwidth[b.index()]
    }

    /// Maximum sustainable bitrate of bus `b`, if modelled.
    ///
    /// # Panics
    ///
    /// Panics if `b` did not come from the compiled design.
    pub fn bus_capacity(&self, b: BusId) -> Option<f64> {
        self.bus_capacity[b.index()]
    }

    /// Time for one access of `bits` bits over bus `b`, on the same
    /// component (`same == true`) or across components — identical to
    /// [`Bus::access_time`](crate::Bus::access_time).
    ///
    /// # Panics
    ///
    /// Panics if `b` did not come from the compiled design or the bus has
    /// zero bitwidth (callers check and report
    /// [`CoreError::ZeroBitwidthBus`] first).
    pub fn bus_access_time(&self, b: BusId, bits: u32, same: bool) -> u64 {
        let i = b.index();
        let transfers = u64::from(bits.div_ceil(self.bus_bitwidth[i])).max(1);
        transfers * if same { self.bus_ts[i] } else { self.bus_td[i] }
    }

    /// Disassembles the compiled view into its raw slabs for external
    /// serialization (the `slif-store` compiled-design cache).
    ///
    /// `to_parts` / [`try_from_parts`](Self::try_from_parts) exist so a
    /// persistence layer can round-trip a `CompiledDesign` without this
    /// crate committing to an on-disk layout: the parts struct is plain
    /// public data, and reassembly re-audits every structural invariant,
    /// so a codec bug (or disk corruption that slipped past checksums)
    /// yields a typed error instead of a compiled view that answers
    /// queries wrongly.
    pub fn to_parts(&self) -> CompiledParts {
        CompiledParts {
            node_count: self.node_count,
            port_count: self.port_count,
            channel_count: self.channel_count,
            class_count: self.class_count,
            processor_count: self.processor_count,
            memory_count: self.memory_count,
            bus_count: self.bus_count,
            out_offsets: self.out_offsets.clone(),
            out_adj: self.out_adj.clone(),
            in_offsets: self.in_offsets.clone(),
            in_adj: self.in_adj.clone(),
            port_offsets: self.port_offsets.clone(),
            port_adj: self.port_adj.clone(),
            chan_src: self.chan_src.clone(),
            chan_dst: self.chan_dst.clone(),
            chan_kind: self.chan_kind.clone(),
            chan_bits: self.chan_bits.clone(),
            chan_freq: self.chan_freq.clone(),
            chan_tag: self.chan_tag.clone(),
            node_kind: self.node_kind.clone(),
            names: self.names.clone(),
            name_order: self.name_order.clone(),
            ict: self.ict.clone(),
            size_val: self.size_val.clone(),
            size_datapath: self.size_datapath.clone(),
            class_kind: self.class_kind.clone(),
            pm_class: self.pm_class.clone(),
            proc_size_constraint: self.proc_size_constraint.clone(),
            proc_pin_constraint: self.proc_pin_constraint.clone(),
            mem_size_constraint: self.mem_size_constraint.clone(),
            bus_bitwidth: self.bus_bitwidth.clone(),
            bus_ts: self.bus_ts.clone(),
            bus_td: self.bus_td.clone(),
            bus_capacity: self.bus_capacity.clone(),
            bottom_up: self.bottom_up.clone(),
            process_nodes: self.process_nodes.clone(),
        }
    }

    /// Reassembles a compiled view from [`CompiledParts`], re-auditing
    /// every structural invariant the query methods rely on: slab
    /// lengths against the declared counts, CSR offset monotonicity and
    /// totals, and the range of every stored id. Parts that fail any
    /// check are refused — the caller (typically a cache) falls back to
    /// recompiling from the [`Design`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] naming the violated invariant.
    pub fn try_from_parts(parts: CompiledParts) -> Result<Self, CoreError> {
        fn bad(what: &str) -> CoreError {
            CoreError::InvalidInput {
                message: format!("compiled parts: {what}"),
            }
        }
        fn check_csr(
            offsets: &[u32],
            adj_len: usize,
            rows: usize,
            what: &str,
        ) -> Result<(), CoreError> {
            if offsets.len() != rows + 1 {
                return Err(bad(&format!("{what} offset length")));
            }
            if offsets.first() != Some(&0) {
                return Err(bad(&format!("{what} offset origin")));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(bad(&format!("{what} offsets not monotone")));
            }
            if offsets.last().copied() != Some(adj_len as u32) {
                return Err(bad(&format!("{what} offset total")));
            }
            Ok(())
        }
        let p = parts;
        check_csr(&p.out_offsets, p.out_adj.len(), p.node_count, "out")?;
        check_csr(&p.in_offsets, p.in_adj.len(), p.node_count, "in")?;
        check_csr(&p.port_offsets, p.port_adj.len(), p.port_count, "port")?;
        if p.out_adj.len() != p.channel_count {
            return Err(bad("out adjacency does not cover every channel"));
        }
        if p.in_adj.len() + p.port_adj.len() != p.channel_count {
            return Err(bad("in/port adjacency does not cover every channel"));
        }
        for &c in p.out_adj.iter().chain(&p.in_adj).chain(&p.port_adj) {
            if c.index() >= p.channel_count {
                return Err(bad("adjacency channel id out of range"));
            }
        }
        let chan_slabs_ok = p.chan_src.len() == p.channel_count
            && p.chan_dst.len() == p.channel_count
            && p.chan_kind.len() == p.channel_count
            && p.chan_bits.len() == p.channel_count
            && p.chan_freq.len() == p.channel_count
            && p.chan_tag.len() == p.channel_count;
        if !chan_slabs_ok {
            return Err(bad("channel slab length"));
        }
        if p.chan_src.iter().any(|n| n.index() >= p.node_count) {
            return Err(bad("channel source out of range"));
        }
        for dst in &p.chan_dst {
            let in_range = match *dst {
                AccessTarget::Node(n) => n.index() < p.node_count,
                AccessTarget::Port(q) => q.index() < p.port_count,
            };
            if !in_range {
                return Err(bad("channel destination out of range"));
            }
        }
        if p.node_kind.len() != p.node_count {
            return Err(bad("node kind slab length"));
        }
        if p.names.len() != p.node_count + p.port_count {
            return Err(bad("name slab length"));
        }
        if p.name_order.len() != p.names.len() {
            return Err(bad("name order length"));
        }
        let mut seen = vec![false; p.names.len()];
        for &i in &p.name_order {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(bad("name order is not a permutation")),
            }
        }
        let cells = p.node_count.saturating_mul(p.class_count);
        if p.ict.len() != cells || p.size_val.len() != cells || p.size_datapath.len() != cells {
            return Err(bad("weight table length"));
        }
        if p.class_kind.len() != p.class_count {
            return Err(bad("class slab length"));
        }
        if p.pm_class.len() != p.processor_count + p.memory_count {
            return Err(bad("component slab length"));
        }
        if p.pm_class.iter().any(|k| k.index() >= p.class_count) {
            return Err(bad("component class out of range"));
        }
        if p.proc_size_constraint.len() != p.processor_count
            || p.proc_pin_constraint.len() != p.processor_count
            || p.mem_size_constraint.len() != p.memory_count
        {
            return Err(bad("constraint slab length"));
        }
        let bus_slabs_ok = p.bus_bitwidth.len() == p.bus_count
            && p.bus_ts.len() == p.bus_count
            && p.bus_td.len() == p.bus_count
            && p.bus_capacity.len() == p.bus_count;
        if !bus_slabs_ok {
            return Err(bad("bus slab length"));
        }
        if let Ok(order) = &p.bottom_up {
            if order.iter().any(|n| n.index() >= p.node_count) {
                return Err(bad("bottom-up node out of range"));
            }
        }
        if p.process_nodes.iter().any(|n| n.index() >= p.node_count) {
            return Err(bad("process node out of range"));
        }
        Ok(Self {
            node_count: p.node_count,
            port_count: p.port_count,
            channel_count: p.channel_count,
            class_count: p.class_count,
            processor_count: p.processor_count,
            memory_count: p.memory_count,
            bus_count: p.bus_count,
            out_offsets: p.out_offsets,
            out_adj: p.out_adj,
            in_offsets: p.in_offsets,
            in_adj: p.in_adj,
            port_offsets: p.port_offsets,
            port_adj: p.port_adj,
            chan_src: p.chan_src,
            chan_dst: p.chan_dst,
            chan_kind: p.chan_kind,
            chan_bits: p.chan_bits,
            chan_freq: p.chan_freq,
            chan_tag: p.chan_tag,
            node_kind: p.node_kind,
            names: p.names,
            name_order: p.name_order,
            ict: p.ict,
            size_val: p.size_val,
            size_datapath: p.size_datapath,
            class_kind: p.class_kind,
            pm_class: p.pm_class,
            proc_size_constraint: p.proc_size_constraint,
            proc_pin_constraint: p.proc_pin_constraint,
            mem_size_constraint: p.mem_size_constraint,
            bus_bitwidth: p.bus_bitwidth,
            bus_ts: p.bus_ts,
            bus_td: p.bus_td,
            bus_capacity: p.bus_capacity,
            bottom_up: p.bottom_up,
            process_nodes: p.process_nodes,
        })
    }
}

/// The raw slabs of a [`CompiledDesign`], all public, for external
/// serialization.
///
/// Produced by [`CompiledDesign::to_parts`] and consumed by
/// [`CompiledDesign::try_from_parts`]; see those methods for the
/// contract. Field meanings mirror the compiled view's internals: CSR
/// `*_offsets`/`*_adj` adjacency, per-channel and per-component slabs,
/// dense `[node * class_count + class]` weight tables, interned names
/// with a sorted order index, and the precomputed traversals.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings documented on the struct; names mirror CompiledDesign
pub struct CompiledParts {
    pub node_count: usize,
    pub port_count: usize,
    pub channel_count: usize,
    pub class_count: usize,
    pub processor_count: usize,
    pub memory_count: usize,
    pub bus_count: usize,
    pub out_offsets: Vec<u32>,
    pub out_adj: Vec<ChannelId>,
    pub in_offsets: Vec<u32>,
    pub in_adj: Vec<ChannelId>,
    pub port_offsets: Vec<u32>,
    pub port_adj: Vec<ChannelId>,
    pub chan_src: Vec<NodeId>,
    pub chan_dst: Vec<AccessTarget>,
    pub chan_kind: Vec<AccessKind>,
    pub chan_bits: Vec<u32>,
    pub chan_freq: Vec<AccessFreq>,
    pub chan_tag: Vec<ConcurrencyTag>,
    pub node_kind: Vec<NodeKind>,
    pub names: Vec<String>,
    pub name_order: Vec<u32>,
    pub ict: Vec<Option<u64>>,
    pub size_val: Vec<Option<u64>>,
    pub size_datapath: Vec<Option<u64>>,
    pub class_kind: Vec<ClassKind>,
    pub pm_class: Vec<ClassId>,
    pub proc_size_constraint: Vec<Option<u64>>,
    pub proc_pin_constraint: Vec<Option<u32>>,
    pub mem_size_constraint: Vec<Option<u64>>,
    pub bus_bitwidth: Vec<u32>,
    pub bus_ts: Vec<u64>,
    pub bus_td: Vec<u64>,
    pub bus_capacity: Vec<Option<f64>>,
    pub bottom_up: Result<Vec<NodeId>, CoreError>,
    pub process_nodes: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignGenerator;

    fn compiled(seed: u64) -> (Design, CompiledDesign) {
        let (design, _) = DesignGenerator::new(seed)
            .behaviors(12)
            .variables(9)
            .processors(2)
            .memories(1)
            .build();
        let cd = CompiledDesign::compile(&design);
        (design, cd)
    }

    #[test]
    fn counts_match_design() {
        let (d, cd) = compiled(1);
        assert_eq!(cd.node_count(), d.graph().node_count());
        assert_eq!(cd.port_count(), d.graph().port_count());
        assert_eq!(cd.channel_count(), d.graph().channel_count());
        assert_eq!(cd.class_count(), d.class_count());
        assert_eq!(cd.processor_count(), d.processor_count());
        assert_eq!(cd.memory_count(), d.memory_count());
        assert_eq!(cd.bus_count(), d.bus_count());
    }

    #[test]
    fn csr_adjacency_matches_graph_order() {
        let (d, cd) = compiled(2);
        for n in d.graph().node_ids() {
            let out: Vec<_> = d.graph().channels_of(n).collect();
            assert_eq!(cd.channels_of(n), &out[..]);
            let inc: Vec<_> = d.graph().accessors_of(n).collect();
            assert_eq!(cd.accessors_of(n), &inc[..]);
        }
        for p in d.graph().port_ids() {
            let acc: Vec<_> = d.graph().port_accessors(p).collect();
            assert_eq!(cd.port_accessors(p), &acc[..]);
        }
    }

    #[test]
    fn channel_slabs_match_channels() {
        let (d, cd) = compiled(3);
        for c in d.graph().channel_ids() {
            let ch = d.graph().channel(c);
            assert_eq!(cd.chan_src(c), ch.src());
            assert_eq!(cd.chan_dst(c), ch.dst());
            assert_eq!(cd.chan_kind(c), ch.kind());
            assert_eq!(cd.chan_bits(c), ch.bits());
            assert_eq!(cd.chan_freq(c), ch.freq());
            assert_eq!(cd.chan_tag(c), ch.tag());
        }
    }

    /// After any annotation-only mutation, the patched view must be
    /// `==` a fresh compile, and the returned dirty set must name
    /// exactly the affected nodes.
    #[test]
    fn patch_annotations_matches_fresh_compile() {
        for seed in [5u64, 6, 7, 8] {
            let (mut d, mut cd) = compiled(seed);
            // Mutate one channel's frequency+bits and one node's
            // weights.
            let c = d.graph().channel_ids().next().expect("has channels");
            let src = d.graph().channel(c).src();
            d.graph_mut().channel_mut(c).set_bits(77);
            d.graph_mut().channel_mut(c).freq_mut().avg += 3.0;
            let n = d
                .graph()
                .node_ids()
                .last()
                .expect("has nodes");
            let class = d.class_ids().next().expect("has classes");
            d.graph_mut().node_mut(n).ict_mut().set(class, 4242);
            let dirty = cd.patch_annotations_from(&d).expect("topology unchanged");
            assert_eq!(cd, CompiledDesign::compile(&d), "seed {seed}");
            assert!(dirty.contains(&src), "channel source dirty (seed {seed})");
            assert!(
                dirty.contains(&n) || n == src,
                "reweighted node dirty (seed {seed})"
            );
        }
    }

    #[test]
    fn patch_annotations_noop_reports_nothing_dirty() {
        let (d, mut cd) = compiled(9);
        let before = cd.clone();
        let dirty = cd.patch_annotations_from(&d).expect("identical design");
        assert!(dirty.is_empty());
        assert_eq!(cd, before);
    }

    #[test]
    fn patch_annotations_rejects_topology_changes() {
        let (mut d, mut cd) = compiled(10);
        let before = cd.clone();
        d.graph_mut().add_node("late_arrival", NodeKind::process());
        let err = cd.patch_annotations_from(&d).expect_err("extra node");
        assert!(matches!(err, CoreError::InvalidInput { .. }));
        assert_eq!(cd, before, "view untouched on error");
    }

    #[test]
    fn dense_tables_match_weight_lists() {
        let (d, cd) = compiled(4);
        for n in d.graph().node_ids() {
            let node = d.graph().node(n);
            for k in d.class_ids() {
                assert_eq!(cd.ict_weight(n, k), node.ict().get(k));
                assert_eq!(cd.size_weight(n, k), node.size().get(k));
                assert_eq!(
                    cd.size_datapath(n, k),
                    node.size().entry(k).and_then(|e| e.datapath)
                );
            }
        }
    }

    #[test]
    fn traversals_match_graph() {
        let (d, cd) = compiled(5);
        assert_eq!(
            cd.behaviors_bottom_up().unwrap(),
            &d.graph().behaviors_bottom_up().unwrap()[..]
        );
        for n in d.graph().node_ids() {
            assert_eq!(cd.dependents_of(n), d.graph().dependents_of(n));
        }
        let procs: Vec<_> = d
            .graph()
            .node_ids()
            .filter(|&n| d.graph().node(n).kind().is_process())
            .collect();
        assert_eq!(cd.process_nodes(), &procs[..]);
    }

    #[test]
    fn name_lookup_matches_graph() {
        let (d, cd) = compiled(6);
        for n in d.graph().node_ids() {
            let name = d.graph().node(n).name();
            assert_eq!(cd.node_name(n), name);
            assert_eq!(cd.node_by_name(name), Some(n));
            assert_eq!(cd.port_by_name(name), None);
        }
        for p in d.graph().port_ids() {
            let name = d.graph().port(p).name();
            assert_eq!(cd.port_name(p), name);
            assert_eq!(cd.port_by_name(name), Some(p));
            assert_eq!(cd.node_by_name(name), None);
        }
        assert_eq!(cd.node_by_name("no such object"), None);
    }

    #[test]
    fn component_and_bus_slabs_match_design() {
        let (d, cd) = compiled(7);
        for pm in d.pm_refs() {
            assert!(cd.pm_exists(pm));
            assert_eq!(cd.component_class(pm), d.component_class(pm));
            assert_eq!(cd.pm_of_index(cd.pm_index(pm)), pm);
            let want = match pm {
                PmRef::Processor(p) => d.processor(p).size_constraint(),
                PmRef::Memory(m) => d.memory(m).size_constraint(),
            };
            assert_eq!(cd.size_constraint(pm), want);
        }
        let pm_order: Vec<_> = cd.pm_refs().collect();
        assert_eq!(pm_order, d.pm_refs().collect::<Vec<_>>());
        for p in d.processor_ids() {
            assert_eq!(cd.pin_constraint(p), d.processor(p).pin_constraint());
        }
        for k in d.class_ids() {
            assert_eq!(cd.class_kind(k), d.class(k).kind());
        }
        for b in d.bus_ids() {
            assert_eq!(cd.bus_bitwidth(b), d.bus(b).bitwidth());
            assert_eq!(cd.bus_capacity(b), d.bus(b).capacity());
            for bits in [0, 1, 7, 16, 33] {
                assert_eq!(cd.bus_access_time(b, bits, true), d.bus(b).access_time(bits, true));
                assert_eq!(
                    cd.bus_access_time(b, bits, false),
                    d.bus(b).access_time(bits, false)
                );
            }
        }
    }

    #[test]
    fn recursive_designs_compile_with_stored_error() {
        use crate::{AccessKind, ClassKind, NodeKind};
        let mut d = Design::new("rec");
        d.add_class("p", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        d.graph_mut().add_channel(a, b.into(), AccessKind::Call).unwrap();
        d.graph_mut().add_channel(b, a.into(), AccessKind::Call).unwrap();
        let cd = CompiledDesign::compile(&d);
        assert!(matches!(
            cd.behaviors_bottom_up(),
            Err(CoreError::RecursiveAccess { .. })
        ));
    }

    #[test]
    fn parts_round_trip_is_identity() {
        for seed in [11u64, 12, 13] {
            let (_, cd) = compiled(seed);
            let rebuilt = CompiledDesign::try_from_parts(cd.to_parts()).expect("valid parts");
            assert_eq!(rebuilt, cd, "seed {seed}");
        }
    }

    #[test]
    fn tampered_parts_are_refused() {
        let (_, cd) = compiled(21);
        let breakers: Vec<Box<dyn Fn(&mut CompiledParts)>> = vec![
            Box::new(|p| p.out_offsets[0] = 1),
            Box::new(|p| {
                let last = p.out_offsets.len() - 1;
                p.out_offsets[last] += 1;
            }),
            Box::new(|p| p.out_adj.push(ChannelId::from_raw(u32::MAX))),
            Box::new(|p| p.chan_src.pop().map(|_| ()).unwrap_or(())),
            Box::new(|p| p.chan_src[0] = NodeId::from_raw(u32::MAX)),
            Box::new(|p| p.names.pop().map(|_| ()).unwrap_or(())),
            Box::new(|p| p.name_order[0] = p.name_order[1]),
            Box::new(|p| p.ict.pop().map(|_| ()).unwrap_or(())),
            Box::new(|p| p.pm_class[0] = ClassId::from_raw(u32::MAX)),
            Box::new(|p| p.bus_ts.pop().map(|_| ()).unwrap_or(())),
            Box::new(|p| p.process_nodes.push(NodeId::from_raw(u32::MAX))),
        ];
        for (i, hit) in breakers.iter().enumerate() {
            let mut parts = cd.to_parts();
            hit(&mut parts);
            let err = CompiledDesign::try_from_parts(parts);
            assert!(
                matches!(err, Err(CoreError::InvalidInput { .. })),
                "breaker {i} accepted"
            );
        }
    }
}
