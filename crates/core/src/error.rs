//! Error types for SLIF construction and validation.

use crate::ids::{AccessTarget, BusId, ChannelId, MemoryId, NodeId, PmRef, ProcessorId};
use std::error::Error;
use std::fmt;

/// Error building or validating a SLIF design.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A channel's source is not a behavior node (`src` must be in `B_all`).
    SourceNotBehavior {
        /// The offending node.
        node: NodeId,
    },
    /// A channel's access kind does not match its destination, e.g. a
    /// `Call` to a variable or a `Read` of a behavior.
    KindTargetMismatch {
        /// The channel's access kind, as text.
        kind: &'static str,
        /// The offending destination.
        dst: AccessTarget,
    },
    /// Two distinct nodes (or ports) carry the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A name was looked up but does not exist in the design.
    UnknownName {
        /// The missing name.
        name: String,
    },
    /// A behavior was mapped to a memory component.
    BehaviorInMemory {
        /// The behavior node.
        node: NodeId,
        /// The memory it was mapped to.
        memory: MemoryId,
    },
    /// A functional object is not mapped to any component, so the partition
    /// is not proper ("each functional object is mapped to exactly one
    /// system component").
    UnmappedNode {
        /// The unmapped node.
        node: NodeId,
    },
    /// A channel is not mapped to any bus.
    UnmappedChannel {
        /// The unmapped channel.
        channel: ChannelId,
    },
    /// A node was mapped to a component instance that does not exist in
    /// the design.
    UnknownComponent {
        /// The dangling reference.
        component: PmRef,
    },
    /// A channel was mapped to a bus that does not exist in the design.
    UnknownBus {
        /// The dangling reference.
        bus: BusId,
    },
    /// A node lacks the weight needed for the component class it was
    /// mapped to ("one weight for each type of system component on which
    /// that node could possibly be implemented").
    MissingWeight {
        /// The node missing a weight.
        node: NodeId,
        /// Which list is incomplete: `"ict"` or `"size"`.
        list: &'static str,
        /// The component the node is mapped to.
        component: PmRef,
    },
    /// Execution-time estimation encountered a cycle of call accesses,
    /// which represents recursion; the paper's Equation 1 has no finite
    /// value for recursive behaviors.
    RecursiveAccess {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A processor id is out of range for this design.
    InvalidProcessor {
        /// The offending id.
        processor: ProcessorId,
    },
    /// A bus has a bitwidth of zero, so transfer counts (Equation 2's
    /// `bits(c) / buswidth` term) are undefined.
    ZeroBitwidthBus {
        /// The offending bus.
        bus: BusId,
    },
    /// An id embedded in the design points outside the arena it indexes —
    /// the kind of corruption a fault injector (or a buggy producer)
    /// creates, which estimators must surface instead of panicking on.
    DanglingReference {
        /// What kind of thing the id claims to be (`"node"`, `"port"`,
        /// `"channel"`, `"bus"`, `"class"`, `"component"`).
        what: &'static str,
        /// The out-of-range index.
        index: usize,
    },
    /// An algorithm was invoked with inputs that violate its documented
    /// preconditions (empty allocation option, zero cluster count, ...).
    InvalidInput {
        /// What was wrong with the input.
        message: String,
    },
    /// A [`GraphLimits`](crate::GraphLimits) resource cap was exceeded: a
    /// design asked for more nodes, ports, channels, or weight-table cells
    /// than the configured guard allows. The typed refusal replaces an
    /// unbounded allocation (or an OOM kill) on hostile input.
    LimitExceeded {
        /// Which cap tripped (`"node"`, `"port"`, `"channel"`,
        /// `"weight cell"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The count that tripped it.
        actual: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SourceNotBehavior { node } => {
                write!(f, "channel source {node} is not a behavior")
            }
            CoreError::KindTargetMismatch { kind, dst } => {
                write!(f, "{kind} access cannot target {dst}")
            }
            CoreError::DuplicateName { name } => {
                write!(f, "duplicate object name `{name}`")
            }
            CoreError::UnknownName { name } => {
                write!(f, "no object named `{name}`")
            }
            CoreError::BehaviorInMemory { node, memory } => {
                write!(f, "behavior {node} mapped to memory {memory}")
            }
            CoreError::UnmappedNode { node } => {
                write!(f, "node {node} is not mapped to any component")
            }
            CoreError::UnmappedChannel { channel } => {
                write!(f, "channel {channel} is not mapped to any bus")
            }
            CoreError::UnknownComponent { component } => {
                write!(f, "component {component} does not exist in the design")
            }
            CoreError::UnknownBus { bus } => {
                write!(f, "bus {bus} does not exist in the design")
            }
            CoreError::MissingWeight {
                node,
                list,
                component,
            } => {
                write!(
                    f,
                    "node {node} has no {list} weight for the class of component {component}"
                )
            }
            CoreError::RecursiveAccess { node } => {
                write!(
                    f,
                    "access cycle (recursion) through {node}; execution time is undefined"
                )
            }
            CoreError::InvalidProcessor { processor } => {
                write!(f, "processor {processor} does not exist in the design")
            }
            CoreError::ZeroBitwidthBus { bus } => {
                write!(f, "bus {bus} has zero bitwidth; transfer counts are undefined")
            }
            CoreError::DanglingReference { what, index } => {
                write!(f, "dangling {what} reference (index {index} is out of range)")
            }
            CoreError::InvalidInput { message } => {
                write!(f, "invalid input: {message}")
            }
            CoreError::LimitExceeded {
                what,
                limit,
                actual,
            } => {
                write!(f, "{what} count {actual} exceeds the limit of {limit}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CoreError::UnmappedNode {
            node: NodeId::from_raw(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("bv3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        let e = CoreError::MissingWeight {
            node: NodeId::from_raw(1),
            list: "ict",
            component: PmRef::Processor(ProcessorId::from_raw(0)),
        };
        assert!(e.to_string().contains("ict"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }

    /// Every variant renders a non-empty, lowercase, single-line message
    /// that names the offending object. Guards the machine-facing surface
    /// used by `ValidationReport` and the diagnostics docs.
    #[test]
    fn every_variant_displays() {
        let all: Vec<(CoreError, &str)> = vec![
            (
                CoreError::SourceNotBehavior {
                    node: NodeId::from_raw(0),
                },
                "bv0",
            ),
            (
                CoreError::KindTargetMismatch {
                    kind: "call",
                    dst: AccessTarget::Node(NodeId::from_raw(2)),
                },
                "call",
            ),
            (
                CoreError::DuplicateName { name: "x".into() },
                "`x`",
            ),
            (
                CoreError::UnknownName { name: "y".into() },
                "`y`",
            ),
            (
                CoreError::BehaviorInMemory {
                    node: NodeId::from_raw(1),
                    memory: MemoryId::from_raw(0),
                },
                "memory",
            ),
            (
                CoreError::UnmappedNode {
                    node: NodeId::from_raw(4),
                },
                "bv4",
            ),
            (
                CoreError::UnmappedChannel {
                    channel: ChannelId::from_raw(7),
                },
                "c7",
            ),
            (
                CoreError::UnknownComponent {
                    component: PmRef::Memory(MemoryId::from_raw(9)),
                },
                "does not exist",
            ),
            (
                CoreError::UnknownBus {
                    bus: BusId::from_raw(3),
                },
                "does not exist",
            ),
            (
                CoreError::MissingWeight {
                    node: NodeId::from_raw(1),
                    list: "size",
                    component: PmRef::Processor(ProcessorId::from_raw(0)),
                },
                "size weight",
            ),
            (
                CoreError::RecursiveAccess {
                    node: NodeId::from_raw(5),
                },
                "recursion",
            ),
            (
                CoreError::InvalidProcessor {
                    processor: ProcessorId::from_raw(8),
                },
                "does not exist",
            ),
            (
                CoreError::ZeroBitwidthBus {
                    bus: BusId::from_raw(2),
                },
                "zero bitwidth",
            ),
            (
                CoreError::DanglingReference {
                    what: "node",
                    index: 99,
                },
                "index 99",
            ),
            (
                CoreError::InvalidInput {
                    message: "k must be positive".into(),
                },
                "k must be positive",
            ),
            (
                CoreError::LimitExceeded {
                    what: "node",
                    limit: 100,
                    actual: 101,
                },
                "exceeds the limit of 100",
            ),
        ];
        for (err, needle) in all {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "{err:?} renders `{msg}` without `{needle}`"
            );
            assert!(!msg.contains('\n'), "{err:?} renders multi-line");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{err:?} does not start lowercase: `{msg}`"
            );
        }
    }
}
