//! Error types for SLIF construction and validation.

use crate::ids::{AccessTarget, BusId, ChannelId, MemoryId, NodeId, PmRef, ProcessorId};
use std::error::Error;
use std::fmt;

/// Error building or validating a SLIF design.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A channel's source is not a behavior node (`src` must be in `B_all`).
    SourceNotBehavior {
        /// The offending node.
        node: NodeId,
    },
    /// A channel's access kind does not match its destination, e.g. a
    /// `Call` to a variable or a `Read` of a behavior.
    KindTargetMismatch {
        /// The channel's access kind, as text.
        kind: &'static str,
        /// The offending destination.
        dst: AccessTarget,
    },
    /// Two distinct nodes (or ports) carry the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A name was looked up but does not exist in the design.
    UnknownName {
        /// The missing name.
        name: String,
    },
    /// A behavior was mapped to a memory component.
    BehaviorInMemory {
        /// The behavior node.
        node: NodeId,
        /// The memory it was mapped to.
        memory: MemoryId,
    },
    /// A functional object is not mapped to any component, so the partition
    /// is not proper ("each functional object is mapped to exactly one
    /// system component").
    UnmappedNode {
        /// The unmapped node.
        node: NodeId,
    },
    /// A channel is not mapped to any bus.
    UnmappedChannel {
        /// The unmapped channel.
        channel: ChannelId,
    },
    /// A node was mapped to a component instance that does not exist in
    /// the design.
    UnknownComponent {
        /// The dangling reference.
        component: PmRef,
    },
    /// A channel was mapped to a bus that does not exist in the design.
    UnknownBus {
        /// The dangling reference.
        bus: BusId,
    },
    /// A node lacks the weight needed for the component class it was
    /// mapped to ("one weight for each type of system component on which
    /// that node could possibly be implemented").
    MissingWeight {
        /// The node missing a weight.
        node: NodeId,
        /// Which list is incomplete: `"ict"` or `"size"`.
        list: &'static str,
        /// The component the node is mapped to.
        component: PmRef,
    },
    /// Execution-time estimation encountered a cycle of call accesses,
    /// which represents recursion; the paper's Equation 1 has no finite
    /// value for recursive behaviors.
    RecursiveAccess {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A processor id is out of range for this design.
    InvalidProcessor {
        /// The offending id.
        processor: ProcessorId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SourceNotBehavior { node } => {
                write!(f, "channel source {node} is not a behavior")
            }
            CoreError::KindTargetMismatch { kind, dst } => {
                write!(f, "{kind} access cannot target {dst}")
            }
            CoreError::DuplicateName { name } => {
                write!(f, "duplicate object name `{name}`")
            }
            CoreError::UnknownName { name } => {
                write!(f, "no object named `{name}`")
            }
            CoreError::BehaviorInMemory { node, memory } => {
                write!(f, "behavior {node} mapped to memory {memory}")
            }
            CoreError::UnmappedNode { node } => {
                write!(f, "node {node} is not mapped to any component")
            }
            CoreError::UnmappedChannel { channel } => {
                write!(f, "channel {channel} is not mapped to any bus")
            }
            CoreError::UnknownComponent { component } => {
                write!(f, "component {component} does not exist in the design")
            }
            CoreError::UnknownBus { bus } => {
                write!(f, "bus {bus} does not exist in the design")
            }
            CoreError::MissingWeight {
                node,
                list,
                component,
            } => {
                write!(
                    f,
                    "node {node} has no {list} weight for the class of component {component}"
                )
            }
            CoreError::RecursiveAccess { node } => {
                write!(
                    f,
                    "access cycle (recursion) through {node}; execution time is undefined"
                )
            }
            CoreError::InvalidProcessor { processor } => {
                write!(f, "processor {processor} does not exist in the design")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CoreError::UnmappedNode {
            node: NodeId::from_raw(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("bv3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        let e = CoreError::MissingWeight {
            node: NodeId::from_raw(1),
            list: "ict",
            component: PmRef::Processor(ProcessorId::from_raw(0)),
        };
        assert!(e.to_string().contains("ict"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
