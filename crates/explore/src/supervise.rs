//! Run supervision: budgets, deadlines, cancellation, progress, and
//! checkpoint cadence.
//!
//! Long exploration runs ("algorithms that explore thousands of possible
//! designs", Section 5) need an off switch. A [`Supervisor`] carries the
//! limits under which a run executes — a wall-clock deadline, an
//! evaluation budget, a cooperative [`CancelToken`] — plus two periodic
//! side effects: a progress callback and crash-safe checkpoint writes.
//! Every partitioner checks the supervisor at deterministic algorithm
//! boundaries; when a limit trips, the run stops with a typed
//! [`StopReason`] and still returns the best partition seen so far.

use crate::checkpoint::{CheckpointError, ExplorationCheckpoint};
use crate::ExplorationResult;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cooperative cancellation flag.
///
/// Clone the token, hand the clone to another thread (or a signal
/// handler), and call [`cancel`](CancelToken::cancel); the supervised run
/// notices at its next boundary check and stops with
/// [`StopReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a supervised run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopReason {
    /// The algorithm ran to its natural end.
    Completed,
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The evaluation budget was exhausted.
    BudgetExhausted,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl StopReason {
    /// Whether the run ended early (anything but [`Completed`](Self::Completed)).
    pub fn is_early(self) -> bool {
        self != Self::Completed
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Completed => "completed",
            Self::DeadlineExpired => "deadline expired",
            Self::BudgetExhausted => "budget exhausted",
            Self::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A progress snapshot handed to the supervisor's callback.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct Progress {
    /// Candidate partitions evaluated so far (including any counted by a
    /// resumed-from checkpoint).
    pub evaluations: u64,
    /// The best cost seen so far.
    pub best_cost: f64,
    /// Checkpoints written so far in this run.
    pub checkpoints_written: u64,
}

/// The outcome of a supervised exploration run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SupervisedResult {
    /// The best partition found, its cost, and the evaluation count —
    /// best-so-far even when the run stopped early.
    pub result: ExplorationResult,
    /// Why the run ended.
    pub stop: StopReason,
    /// How many checkpoint files were written.
    pub checkpoints_written: u64,
}

type ProgressFn = Box<dyn FnMut(&Progress)>;

/// Limits and side effects for one supervised run.
///
/// Built with the fluent `with_*` methods; a [`Supervisor::unlimited`]
/// supervisor imposes nothing and the run behaves exactly like the
/// unsupervised entry points.
///
/// # Examples
///
/// ```
/// use slif_explore::Supervisor;
/// use std::time::Duration;
///
/// let sup = Supervisor::unlimited()
///     .with_deadline(Duration::from_secs(5))
///     .with_budget(10_000);
/// let token = sup.cancel_token();
/// assert!(!token.is_cancelled());
/// ```
#[derive(Default)]
pub struct Supervisor {
    timeout: Option<Duration>,
    absolute_deadline: Option<Instant>,
    deadline: Option<Instant>,
    budget: Option<u64>,
    cancel: CancelToken,
    progress_every: u64,
    on_progress: Option<ProgressFn>,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
    ticks: u64,
    checkpoints_written: u64,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("timeout", &self.timeout)
            .field("budget", &self.budget)
            .field("cancelled", &self.cancel.is_cancelled())
            .field("progress_every", &self.progress_every)
            .field("checkpoint_path", &self.checkpoint_path)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("checkpoints_written", &self.checkpoints_written)
            .finish()
    }
}

impl Supervisor {
    /// A supervisor that imposes no limits and performs no side effects.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Stops the run once `timeout` of wall-clock time has elapsed
    /// (measured from when the run starts, not from when the supervisor is
    /// built).
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Stops the run at the absolute instant `deadline`, regardless of
    /// when the run starts. A serving layer uses this to push a per-job
    /// deadline into the exploration it runs: the job's clock starts at
    /// admission, not at the moment a worker thread finally picks the job
    /// up. Combines with [`with_deadline`](Self::with_deadline) — whichever
    /// expires first stops the run.
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.absolute_deadline = Some(deadline);
        self
    }

    /// Stops the run once `evaluations` cost evaluations have been spent.
    /// A resumed run counts the evaluations recorded in its checkpoint.
    #[must_use]
    pub fn with_budget(mut self, evaluations: u64) -> Self {
        self.budget = Some(evaluations);
        self
    }

    /// Uses `token` for cancellation instead of the supervisor's own.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of the cancellation token observed by this supervisor.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Invokes `callback` every `every` boundary checks with a
    /// [`Progress`] snapshot. An `every` of 0 is treated as 1.
    #[must_use]
    pub fn with_progress(mut self, every: u64, callback: impl FnMut(&Progress) + 'static) -> Self {
        self.progress_every = every.max(1);
        self.on_progress = Some(Box::new(callback));
        self
    }

    /// Writes a crash-safe checkpoint to `path` every `every` boundary
    /// checks, and once more when the run stops early. An `every` of 0 is
    /// treated as 1.
    #[must_use]
    pub fn with_checkpoints(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// How many checkpoint files this supervisor has written.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Arms the deadline and resets per-run counters. Called by the run
    /// drivers; harmless to call twice.
    pub(crate) fn begin(&mut self) {
        let relative = self.timeout.map(|t| Instant::now() + t);
        self.deadline = match (relative, self.absolute_deadline) {
            (Some(r), Some(a)) => Some(r.min(a)),
            (r, a) => r.or(a),
        };
        self.ticks = 0;
        self.checkpoints_written = 0;
    }

    /// The stop verdict at a boundary, or `None` to keep going. Checked
    /// in priority order: cancellation, deadline, budget.
    pub(crate) fn check(&self, evaluations: u64) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExpired);
            }
        }
        if let Some(budget) = self.budget {
            if evaluations >= budget {
                return Some(StopReason::BudgetExhausted);
            }
        }
        None
    }

    /// Counts one boundary tick: fires the progress callback on its
    /// cadence and reports whether a cadence checkpoint is due.
    pub(crate) fn tick(&mut self, evaluations: u64, best_cost: f64) -> bool {
        self.ticks += 1;
        if let Some(cb) = &mut self.on_progress {
            if self.ticks.is_multiple_of(self.progress_every) {
                cb(&Progress {
                    evaluations,
                    best_cost,
                    checkpoints_written: self.checkpoints_written,
                });
            }
        }
        self.checkpoint_path.is_some() && self.ticks.is_multiple_of(self.checkpoint_every)
    }

    /// Writes `ckpt` to the configured path (atomically), if any.
    pub(crate) fn save_checkpoint(
        &mut self,
        ckpt: &ExplorationCheckpoint,
    ) -> Result<(), CheckpointError> {
        if let Some(path) = &self.checkpoint_path {
            ckpt.save(path)?;
            self.checkpoints_written += 1;
        }
        Ok(())
    }

    /// Whether a checkpoint path is configured at all.
    pub(crate) fn wants_checkpoints(&self) -> bool {
        self.checkpoint_path.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let mut sup = Supervisor::unlimited();
        sup.begin();
        assert_eq!(sup.check(u64::MAX), None);
    }

    #[test]
    fn budget_trips_at_the_boundary() {
        let mut sup = Supervisor::unlimited().with_budget(10);
        sup.begin();
        assert_eq!(sup.check(9), None);
        assert_eq!(sup.check(10), Some(StopReason::BudgetExhausted));
        assert_eq!(sup.check(11), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let mut sup = Supervisor::unlimited().with_budget(0);
        let token = sup.cancel_token();
        sup.begin();
        assert_eq!(sup.check(5), Some(StopReason::BudgetExhausted));
        token.cancel();
        assert_eq!(sup.check(5), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let mut sup = Supervisor::unlimited().with_deadline(Duration::ZERO);
        sup.begin();
        assert_eq!(sup.check(0), Some(StopReason::DeadlineExpired));
    }

    #[test]
    fn absolute_deadline_trips_and_combines_with_timeout() {
        // An already-past absolute deadline trips immediately.
        let mut sup = Supervisor::unlimited().with_deadline_at(Instant::now());
        sup.begin();
        assert_eq!(sup.check(0), Some(StopReason::DeadlineExpired));
        // The earlier of the absolute deadline and the relative timeout
        // wins: a generous timeout does not extend a past deadline...
        let mut sup = Supervisor::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .with_deadline_at(Instant::now());
        sup.begin();
        assert_eq!(sup.check(0), Some(StopReason::DeadlineExpired));
        // ...and a zero timeout is not extended by a far-off deadline.
        let mut sup = Supervisor::unlimited()
            .with_deadline(Duration::ZERO)
            .with_deadline_at(Instant::now() + Duration::from_secs(3600));
        sup.begin();
        assert_eq!(sup.check(0), Some(StopReason::DeadlineExpired));
        // A far-off absolute deadline alone does not stop the run.
        let mut sup =
            Supervisor::unlimited().with_deadline_at(Instant::now() + Duration::from_secs(3600));
        sup.begin();
        assert_eq!(sup.check(0), None);
    }

    #[test]
    fn progress_fires_on_cadence() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<u64>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut sup = Supervisor::unlimited().with_progress(3, move |p| {
            sink.borrow_mut().push(p.evaluations);
        });
        sup.begin();
        for i in 0..9 {
            sup.tick(i, 1.0);
        }
        assert_eq!(*seen.borrow(), vec![2, 5, 8]);
    }

    #[test]
    fn tick_reports_checkpoint_cadence() {
        let mut sup = Supervisor::unlimited().with_checkpoints("/tmp/unused.ckpt", 2);
        sup.begin();
        let due: Vec<bool> = (0..6).map(|i| sup.tick(i, 0.0)).collect();
        assert_eq!(due, vec![false, true, false, true, false, true]);
        // Without a path, cadence never reports due.
        let mut bare = Supervisor::unlimited();
        bare.begin();
        assert!(!bare.tick(0, 0.0));
    }

    #[test]
    fn stop_reason_display_and_early() {
        assert_eq!(StopReason::Completed.to_string(), "completed");
        assert_eq!(StopReason::DeadlineExpired.to_string(), "deadline expired");
        assert!(!StopReason::Completed.is_early());
        assert!(StopReason::Cancelled.is_early());
    }
}
