//! Crash-safe exploration checkpoints.
//!
//! A checkpoint is a versioned, checksummed binary snapshot of everything
//! a partitioner needs to continue a run bit-for-bit: the RNG state, the
//! loop counters, the best partition and cost, the current partition, and
//! any per-pass bookkeeping (locked sets and move trails). The file
//! layout is:
//!
//! ```text
//! magic    8 bytes   b"SLIFCKPT"
//! version  u32 LE    currently 1
//! length   u64 LE    payload byte count
//! checksum u64 LE    FNV-1a 64 over the payload
//! payload  ...       design fingerprint, run state, algorithm state
//! ```
//!
//! Writes are atomic: the bytes go to a sibling `*.tmp` file which is
//! fsynced and then renamed over the destination, so a crash mid-write
//! leaves either the previous checkpoint or a temp file — never a
//! half-written snapshot under the real name. Loads verify the magic,
//! version, length, and checksum before any field is decoded, and every
//! decoded index is range-checked against the design, so corruption of
//! any kind surfaces as a typed [`CheckpointError`], never a panic.

use crate::algorithms::AnnealingConfig;
use slif_core::atomic_io::{self, fnv1a, le_u32, le_u64, FrameError};
use slif_core::{BusId, ChannelId, Design, MemoryId, NodeId, Partition, PmRef, ProcessorId};
use std::fmt;
use std::fs;
use std::path::Path;

/// The 8-byte file magic.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"SLIFCKPT";
/// The current (and only) format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written, read, or decoded.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be created, written, renamed, or read.
    Io {
        /// The path involved.
        path: String,
        /// The operating-system error text.
        message: String,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file's version is not one this build can decode.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before the announced data does.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The checkpoint was taken against a different design.
    DesignMismatch {
        /// The fingerprint field that disagrees.
        field: &'static str,
    },
    /// A decoded value is out of range for the design.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "i/o on {path}: {message}"),
            Self::BadMagic => write!(f, "not a slif checkpoint (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            Self::Truncated { context } => write!(f, "checkpoint truncated while reading {context}"),
            Self::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            Self::DesignMismatch { field } => {
                write!(f, "checkpoint was taken against a different design ({field} differs)")
            }
            Self::Corrupt { context } => write!(f, "checkpoint corrupt: invalid {context}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A cheap structural identity for a design, embedded in every
/// checkpoint so a snapshot cannot be resumed against the wrong design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DesignFingerprint {
    nodes: u32,
    channels: u32,
    processors: u32,
    memories: u32,
    buses: u32,
    name_hash: u64,
}

impl DesignFingerprint {
    pub(crate) fn of(design: &Design) -> Self {
        Self {
            nodes: design.graph().node_count() as u32,
            channels: design.graph().channel_count() as u32,
            processors: design.processor_count() as u32,
            memories: design.memory_count() as u32,
            buses: design.bus_count() as u32,
            name_hash: fnv1a(design.name().as_bytes()),
        }
    }

    fn matches(&self, design: &Design) -> Result<(), CheckpointError> {
        let live = Self::of(design);
        let mismatch = |field| Err(CheckpointError::DesignMismatch { field });
        if self.nodes != live.nodes {
            return mismatch("node count");
        }
        if self.channels != live.channels {
            return mismatch("channel count");
        }
        if self.processors != live.processors {
            return mismatch("processor count");
        }
        if self.memories != live.memories {
            return mismatch("memory count");
        }
        if self.buses != live.buses {
            return mismatch("bus count");
        }
        if self.name_hash != live.name_hash {
            return mismatch("design name");
        }
        Ok(())
    }
}

/// Where a partitioner is inside its own loop structure.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AlgorithmState {
    /// [`random_search`](crate::random_search) between iterations.
    Random {
        iterations: u64,
        iter: u64,
        rng: [u64; 4],
    },
    /// [`greedy_improve`](crate::greedy_improve) at a pass boundary.
    Greedy {
        max_passes: u32,
        pass: u32,
        current_cost: f64,
    },
    /// [`simulated_annealing`](crate::simulated_annealing) between
    /// proposals.
    Annealing {
        config: AnnealingConfig,
        temp: f64,
        move_idx: u32,
        current_cost: f64,
        rng: [u64; 4],
    },
    /// [`group_migration`](crate::group_migration) between applied moves.
    GroupMigration {
        max_passes: u32,
        pass: u32,
        pass_start_cost: f64,
        locked: Vec<bool>,
        trail: Vec<(NodeId, PmRef, f64)>,
    },
}

/// A decoded (or to-be-written) exploration snapshot.
///
/// Produce one by running [`explore`](crate::explore) with a supervisor
/// configured via
/// [`Supervisor::with_checkpoints`](crate::Supervisor::with_checkpoints);
/// consume one with [`load`](Self::load) followed by
/// [`resume`](crate::resume).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationCheckpoint {
    pub(crate) fingerprint: DesignFingerprint,
    pub(crate) evaluations: u64,
    pub(crate) best_cost: f64,
    pub(crate) best: Partition,
    pub(crate) current: Partition,
    pub(crate) state: AlgorithmState,
}

impl ExplorationCheckpoint {
    /// Evaluations recorded at the snapshot boundary.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The best cost recorded at the snapshot boundary.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// The best partition recorded at the snapshot boundary.
    pub fn best_partition(&self) -> &Partition {
        &self.best
    }

    /// Serializes the checkpoint (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        atomic_io::frame(&CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &self.encode_payload())
    }

    /// Decodes a checkpoint, verifying header, checksum, and every index
    /// against `design`.
    ///
    /// # Errors
    ///
    /// Any deviation from the format produces a typed [`CheckpointError`]:
    /// bad magic, unsupported version, truncation, checksum mismatch,
    /// design mismatch, or out-of-range fields.
    pub fn from_bytes(bytes: &[u8], design: &Design) -> Result<Self, CheckpointError> {
        let payload = atomic_io::unframe(&CHECKPOINT_MAGIC, CHECKPOINT_VERSION, bytes).map_err(
            |e| match e {
                FrameError::BadMagic => CheckpointError::BadMagic,
                FrameError::UnsupportedVersion { found } => {
                    CheckpointError::UnsupportedVersion { found }
                }
                FrameError::Truncated => CheckpointError::Truncated { context: "frame" },
                _ => CheckpointError::ChecksumMismatch,
            },
        )?;
        Self::decode_payload(payload, design)
    }

    /// Writes the checkpoint atomically: temp file, fsync, rename.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if any filesystem step fails; the
    /// destination is never left half-written.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        atomic_io::write_atomic(path, &self.to_bytes()).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read, otherwise any
    /// decode error from [`from_bytes`](Self::from_bytes).
    pub fn load(path: &Path, design: &Design) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_bytes(&bytes, design)
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::default();
        let fp = &self.fingerprint;
        e.u32(fp.nodes);
        e.u32(fp.channels);
        e.u32(fp.processors);
        e.u32(fp.memories);
        e.u32(fp.buses);
        e.u64(fp.name_hash);
        e.u64(self.evaluations);
        e.f64(self.best_cost);
        e.partition(&self.best);
        e.partition(&self.current);
        match &self.state {
            AlgorithmState::Random {
                iterations,
                iter,
                rng,
            } => {
                e.u8(0);
                e.u64(*iterations);
                e.u64(*iter);
                e.rng(rng);
            }
            AlgorithmState::Greedy {
                max_passes,
                pass,
                current_cost,
            } => {
                e.u8(1);
                e.u32(*max_passes);
                e.u32(*pass);
                e.f64(*current_cost);
            }
            AlgorithmState::Annealing {
                config,
                temp,
                move_idx,
                current_cost,
                rng,
            } => {
                e.u8(2);
                e.f64(config.t0);
                e.f64(config.alpha);
                e.u32(config.moves_per_temp);
                e.f64(config.t_min);
                e.f64(*temp);
                e.u32(*move_idx);
                e.f64(*current_cost);
                e.rng(rng);
            }
            AlgorithmState::GroupMigration {
                max_passes,
                pass,
                pass_start_cost,
                locked,
                trail,
            } => {
                e.u8(3);
                e.u32(*max_passes);
                e.u32(*pass);
                e.f64(*pass_start_cost);
                e.u32(locked.len() as u32);
                for &l in locked {
                    e.u8(u8::from(l));
                }
                e.u32(trail.len() as u32);
                for &(n, home, c) in trail {
                    e.u32(n.index() as u32);
                    e.pm_ref(home);
                    e.f64(c);
                }
            }
        }
        e.buf
    }

    fn decode_payload(payload: &[u8], design: &Design) -> Result<Self, CheckpointError> {
        let mut d = Dec::new(payload);
        let fingerprint = DesignFingerprint {
            nodes: d.u32("fingerprint")?,
            channels: d.u32("fingerprint")?,
            processors: d.u32("fingerprint")?,
            memories: d.u32("fingerprint")?,
            buses: d.u32("fingerprint")?,
            name_hash: d.u64("fingerprint")?,
        };
        fingerprint.matches(design)?;
        let evaluations = d.u64("evaluation count")?;
        let best_cost = d.finite_f64("best cost")?;
        let best = d.partition(design, "best partition")?;
        let current = d.partition(design, "current partition")?;
        let state = match d.u8("algorithm tag")? {
            0 => AlgorithmState::Random {
                iterations: d.u64("iteration budget")?,
                iter: d.u64("iteration counter")?,
                rng: d.rng()?,
            },
            1 => AlgorithmState::Greedy {
                max_passes: d.u32("pass budget")?,
                pass: d.u32("pass counter")?,
                current_cost: d.finite_f64("current cost")?,
            },
            2 => {
                let config = AnnealingConfig {
                    t0: d.finite_f64("annealing t0")?,
                    alpha: d.finite_f64("annealing alpha")?,
                    moves_per_temp: d.u32("annealing moves per temp")?,
                    t_min: d.finite_f64("annealing t_min")?,
                };
                AlgorithmState::Annealing {
                    config,
                    temp: d.finite_f64("annealing temperature")?,
                    move_idx: d.u32("annealing move index")?,
                    current_cost: d.finite_f64("current cost")?,
                    rng: d.rng()?,
                }
            }
            3 => {
                let max_passes = d.u32("pass budget")?;
                let pass = d.u32("pass counter")?;
                let pass_start_cost = d.finite_f64("pass start cost")?;
                let locked_len = d.u32("locked set length")? as usize;
                if locked_len != design.graph().node_count() {
                    return Err(CheckpointError::Corrupt {
                        context: "locked set length",
                    });
                }
                let mut locked = Vec::with_capacity(locked_len);
                for _ in 0..locked_len {
                    locked.push(match d.u8("locked flag")? {
                        0 => false,
                        1 => true,
                        _ => {
                            return Err(CheckpointError::Corrupt {
                                context: "locked flag",
                            })
                        }
                    });
                }
                let trail_len = d.u32("trail length")? as usize;
                if trail_len > design.graph().node_count() {
                    return Err(CheckpointError::Corrupt {
                        context: "trail length",
                    });
                }
                let mut trail = Vec::with_capacity(trail_len);
                for _ in 0..trail_len {
                    let n = d.node(design, "trail node")?;
                    let home = d.pm_ref(design, "trail home")?;
                    let c = d.finite_f64("trail cost")?;
                    trail.push((n, home, c));
                }
                AlgorithmState::GroupMigration {
                    max_passes,
                    pass,
                    pass_start_cost,
                    locked,
                    trail,
                }
            }
            _ => {
                return Err(CheckpointError::Corrupt {
                    context: "algorithm tag",
                })
            }
        };
        d.finish()?;
        Ok(Self {
            fingerprint,
            evaluations,
            best_cost,
            best,
            current,
            state,
        })
    }
}

/// Little-endian payload writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn rng(&mut self, s: &[u64; 4]) {
        for &w in s {
            self.u64(w);
        }
    }
    fn pm_ref(&mut self, pm: PmRef) {
        match pm {
            PmRef::Processor(p) => {
                self.u8(1);
                self.u32(p.index() as u32);
            }
            PmRef::Memory(m) => {
                self.u8(2);
                self.u32(m.index() as u32);
            }
        }
    }
    fn partition(&mut self, p: &Partition) {
        self.u32(p.node_slots() as u32);
        for i in 0..p.node_slots() {
            match p.node_component(NodeId::from_raw(i as u32)) {
                None => self.u8(0),
                Some(pm) => self.pm_ref(pm),
            }
        }
        self.u32(p.channel_slots() as u32);
        for i in 0..p.channel_slots() {
            match p.channel_bus(ChannelId::from_raw(i as u32)) {
                None => self.u8(0),
                Some(b) => {
                    self.u8(1);
                    self.u32(b.index() as u32);
                }
            }
        }
    }
}

/// Bounds-checked little-endian payload reader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        Ok(le_u32(self.take(4, context)?))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        Ok(le_u64(self.take(8, context)?))
    }

    fn finite_f64(&mut self, context: &'static str) -> Result<f64, CheckpointError> {
        let v = f64::from_bits(self.u64(context)?);
        if !v.is_finite() {
            return Err(CheckpointError::Corrupt { context });
        }
        Ok(v)
    }

    fn rng(&mut self) -> Result<[u64; 4], CheckpointError> {
        Ok([
            self.u64("rng state")?,
            self.u64("rng state")?,
            self.u64("rng state")?,
            self.u64("rng state")?,
        ])
    }

    fn node(&mut self, design: &Design, context: &'static str) -> Result<NodeId, CheckpointError> {
        let i = self.u32(context)?;
        if (i as usize) >= design.graph().node_count() {
            return Err(CheckpointError::Corrupt { context });
        }
        Ok(NodeId::from_raw(i))
    }

    fn pm_ref(&mut self, design: &Design, context: &'static str) -> Result<PmRef, CheckpointError> {
        match self.u8(context)? {
            1 => {
                let i = self.u32(context)?;
                if (i as usize) >= design.processor_count() {
                    return Err(CheckpointError::Corrupt { context });
                }
                Ok(PmRef::Processor(ProcessorId::from_raw(i)))
            }
            2 => {
                let i = self.u32(context)?;
                if (i as usize) >= design.memory_count() {
                    return Err(CheckpointError::Corrupt { context });
                }
                Ok(PmRef::Memory(MemoryId::from_raw(i)))
            }
            _ => Err(CheckpointError::Corrupt { context }),
        }
    }

    fn partition(
        &mut self,
        design: &Design,
        context: &'static str,
    ) -> Result<Partition, CheckpointError> {
        let nodes = self.u32(context)? as usize;
        if nodes != design.graph().node_count() {
            return Err(CheckpointError::Corrupt { context });
        }
        let mut p = Partition::new(design);
        for i in 0..nodes {
            match self.u8(context)? {
                0 => {}
                1 => {
                    let c = self.u32(context)?;
                    if (c as usize) >= design.processor_count() {
                        return Err(CheckpointError::Corrupt { context });
                    }
                    p.assign_node(NodeId::from_raw(i as u32), ProcessorId::from_raw(c).into());
                }
                2 => {
                    let c = self.u32(context)?;
                    if (c as usize) >= design.memory_count() {
                        return Err(CheckpointError::Corrupt { context });
                    }
                    p.assign_node(NodeId::from_raw(i as u32), MemoryId::from_raw(c).into());
                }
                _ => return Err(CheckpointError::Corrupt { context }),
            }
        }
        let channels = self.u32(context)? as usize;
        if channels != design.graph().channel_count() {
            return Err(CheckpointError::Corrupt { context });
        }
        for i in 0..channels {
            match self.u8(context)? {
                0 => {}
                1 => {
                    let b = self.u32(context)?;
                    if (b as usize) >= design.bus_count() {
                        return Err(CheckpointError::Corrupt { context });
                    }
                    p.assign_channel(ChannelId::from_raw(i as u32), BusId::from_raw(b));
                }
                _ => return Err(CheckpointError::Corrupt { context }),
            }
        }
        Ok(p)
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Corrupt {
                context: "trailing bytes",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    fn sample(seed: u64) -> (Design, ExplorationCheckpoint) {
        let (design, partition) = DesignGenerator::new(seed)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .memories(1)
            .buses(2)
            .build();
        let ckpt = ExplorationCheckpoint {
            fingerprint: DesignFingerprint::of(&design),
            evaluations: 42,
            best_cost: 7.25,
            best: partition.clone(),
            current: partition,
            state: AlgorithmState::Random {
                iterations: 100,
                iter: 17,
                rng: [1, 2, 3, 4],
            },
        };
        (design, ckpt)
    }

    #[test]
    fn round_trips_every_algorithm_state() {
        let (design, base) = sample(1);
        let node = design.graph().node_ids().next().unwrap();
        let home = base.best.node_component(node).unwrap();
        let states = [
            base.state.clone(),
            AlgorithmState::Greedy {
                max_passes: 9,
                pass: 2,
                current_cost: 1.5,
            },
            AlgorithmState::Annealing {
                config: AnnealingConfig::default(),
                temp: 12.5,
                move_idx: 3,
                current_cost: 2.0,
                rng: [9, 8, 7, 6],
            },
            AlgorithmState::GroupMigration {
                max_passes: 4,
                pass: 1,
                pass_start_cost: 3.0,
                locked: (0..design.graph().node_count()).map(|i| i % 2 == 0).collect(),
                trail: vec![(node, home, 2.75)],
            },
        ];
        for state in states {
            let ckpt = ExplorationCheckpoint {
                state,
                ..base.clone()
            };
            let bytes = ckpt.to_bytes();
            let back = ExplorationCheckpoint::from_bytes(&bytes, &design).unwrap();
            assert_eq!(back, ckpt);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (design, ckpt) = sample(2);
        let bytes = ckpt.to_bytes();
        for len in 0..bytes.len() {
            let err = ExplorationCheckpoint::from_bytes(&bytes[..len], &design).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed() {
        let (design, ckpt) = sample(3);
        let good = ckpt.to_bytes();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            ExplorationCheckpoint::from_bytes(&bad, &design),
            Err(CheckpointError::BadMagic)
        );

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            ExplorationCheckpoint::from_bytes(&bad, &design),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        );

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            ExplorationCheckpoint::from_bytes(&bad, &design),
            Err(CheckpointError::ChecksumMismatch)
        );
    }

    #[test]
    fn design_mismatch_is_field_specific() {
        let (design, ckpt) = sample(4);
        let bytes = ckpt.to_bytes();
        let (other, _) = DesignGenerator::new(4)
            .behaviors(6)
            .variables(4)
            .processors(3)
            .memories(1)
            .buses(2)
            .build();
        let err = ExplorationCheckpoint::from_bytes(&bytes, &other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::DesignMismatch { .. }),
            "got {err:?}"
        );
        let _ = design;
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let (design, ckpt) = sample(5);
        let path = std::env::temp_dir().join("slif-ckpt-roundtrip-test.ckpt");
        ckpt.save(&path).unwrap();
        // No temp droppings left behind.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        let back = ExplorationCheckpoint::load(&path, &design).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let (design, _) = sample(6);
        let err = ExplorationCheckpoint::load(
            Path::new("/nonexistent/slif-never-here.ckpt"),
            &design,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (design, ckpt) = sample(7);
        let mut payload = ckpt.encode_payload();
        payload.push(0xaa);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(
            ExplorationCheckpoint::from_bytes(&bytes, &design),
            Err(CheckpointError::Corrupt {
                context: "trailing bytes"
            })
        );
    }
}
