//! Allocation exploration: the paper's first system-design task.
//!
//! "One task is the allocation of system components, such as processors,
//! ASICs, memories and buses, to the design" (Section 1). Allocation and
//! partitioning are interdependent — a candidate allocation is only as
//! good as the best partition it admits — so this module evaluates each
//! allocation option by instantiating its components on the design and
//! running a (budgeted) partitioner inside it.

use crate::algorithms::{simulated_annealing, AnnealingConfig};
use crate::cost::Objectives;
use slif_core::{Bus, ClassId, CoreError, Design, Partition, PmRef};
use std::fmt;

/// One processor to instantiate in an allocation option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorAlloc {
    /// The component class (from the design's class table).
    pub class: ClassId,
    /// Optional size constraint (bytes or gates).
    pub size_constraint: Option<u64>,
    /// Optional pin constraint.
    pub pin_constraint: Option<u32>,
}

impl ProcessorAlloc {
    /// An unconstrained processor of the given class.
    pub fn new(class: ClassId) -> Self {
        Self {
            class,
            size_constraint: None,
            pin_constraint: None,
        }
    }
}

/// A candidate system architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOption {
    /// A short label ("cpu-only", "cpu+asic", …).
    pub name: String,
    /// Processors to instantiate (at least one).
    pub processors: Vec<ProcessorAlloc>,
    /// Memory classes to instantiate.
    pub memories: Vec<ClassId>,
    /// Buses to instantiate (at least one).
    pub buses: Vec<Bus>,
    /// Monetary/area proxy cost of the components themselves, used to
    /// rank architectures that meet constraints equally well.
    pub component_cost: f64,
}

/// The evaluation of one allocation option.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocResult {
    /// The option's label.
    pub name: String,
    /// The design with the option's components instantiated.
    pub design: Design,
    /// The best partition the budgeted search found.
    pub partition: Partition,
    /// Its objective cost.
    pub partition_cost: f64,
    /// The option's component cost.
    pub component_cost: f64,
    /// Candidate partitions examined.
    pub evaluations: u64,
}

impl AllocResult {
    /// Combined figure of merit: constraint cost dominates, component
    /// cost breaks ties among feasible architectures.
    pub fn merit(&self) -> f64 {
        self.partition_cost + self.component_cost * 1e-3
    }
}

impl fmt::Display for AllocResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} partition cost {:>10.4}  component cost {:>8.1}  ({} evals)",
            self.name, self.partition_cost, self.component_cost, self.evaluations
        )
    }
}

/// Evaluates every allocation option on a component-less base design
/// (as produced by `slif_frontend::build_design`) and returns the
/// results sorted by [`AllocResult::merit`].
///
/// Each option gets its own clone of the base design, an all-on-first-
/// processor starting partition, and a simulated-annealing budget.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if the base design already has components,
/// or if an option has no processors or no buses; otherwise propagates
/// estimation errors from partitioning.
pub fn explore_allocations(
    base: &Design,
    options: &[AllocOption],
    objectives: &Objectives,
    annealing: AnnealingConfig,
    seed: u64,
) -> Result<Vec<AllocResult>, CoreError> {
    if base.processor_count() + base.memory_count() + base.bus_count() != 0 {
        return Err(CoreError::InvalidInput {
            message: "allocation exploration needs a component-less base design".to_owned(),
        });
    }
    let mut results = Vec::with_capacity(options.len());
    for option in options {
        if option.processors.is_empty() {
            return Err(CoreError::InvalidInput {
                message: format!("allocation option `{}` has no processors", option.name),
            });
        }
        if option.buses.is_empty() {
            return Err(CoreError::InvalidInput {
                message: format!("allocation option `{}` has no buses", option.name),
            });
        }
        let mut design = base.clone();
        let mut procs = Vec::new();
        for (i, p) in option.processors.iter().enumerate() {
            let mut inst = slif_core::Processor::new(format!("{}_p{i}", option.name), p.class);
            if let Some(s) = p.size_constraint {
                inst = inst.with_size_constraint(s);
            }
            if let Some(pins) = p.pin_constraint {
                inst = inst.with_pin_constraint(pins);
            }
            procs.push(design.add_processor_instance(inst));
        }
        for (i, &m) in option.memories.iter().enumerate() {
            design.add_memory(format!("{}_m{i}", option.name), m);
        }
        let mut buses = Vec::new();
        for b in &option.buses {
            buses.push(design.add_bus(b.clone()));
        }

        let mut start = Partition::new(&design);
        for n in design.graph().node_ids() {
            start.assign_node(n, PmRef::Processor(procs[0]));
        }
        for c in design.graph().channel_ids() {
            start.assign_channel(c, buses[0]);
        }

        let r = simulated_annealing(&design, start, objectives, annealing, seed)?;
        results.push(AllocResult {
            name: option.name.clone(),
            design,
            partition: r.partition,
            partition_cost: r.cost,
            component_cost: option.component_cost,
            evaluations: r.evaluations,
        });
    }
    results.sort_by(|a, b| a.merit().total_cmp(&b.merit()));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_estimate::ExecTimeEstimator;
    use slif_frontend::build_design;
    use slif_techlib::TechnologyLibrary;

    fn base() -> Design {
        let rs = slif_speclang::corpus::by_name("vol")
            .unwrap()
            .load()
            .unwrap();
        build_design(&rs, &TechnologyLibrary::proc_asic())
    }

    fn options(d: &Design) -> Vec<AllocOption> {
        let pc = d.class_by_name("mcu8").unwrap();
        let ac = d.class_by_name("asic_ga").unwrap();
        let mc = d.class_by_name("sram").unwrap();
        let bus = || Bus::new("sysbus", 16, 20, 100);
        vec![
            AllocOption {
                name: "cpu-only".into(),
                processors: vec![ProcessorAlloc::new(pc)],
                memories: vec![],
                buses: vec![bus()],
                component_cost: 5.0,
            },
            AllocOption {
                name: "cpu+asic".into(),
                processors: vec![ProcessorAlloc::new(pc), ProcessorAlloc::new(ac)],
                memories: vec![mc],
                buses: vec![bus()],
                component_cost: 25.0,
            },
        ]
    }

    #[test]
    fn evaluates_and_ranks_every_option() {
        let base = base();
        let opts = options(&base);
        let fast_anneal = AnnealingConfig {
            t0: 5.0,
            alpha: 0.7,
            moves_per_temp: 24,
            t_min: 0.5,
        };
        let results =
            explore_allocations(&base, &opts, &Objectives::new(), fast_anneal, 3).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            r.partition.validate(&r.design).unwrap();
            assert!(r.evaluations > 0);
        }
        // Sorted by merit.
        assert!(results[0].merit() <= results[1].merit());
    }

    #[test]
    fn deadline_pressure_prefers_the_asic_architecture() {
        let base = base();
        let opts = options(&base);
        // Find the all-software period and demand a third of it: only the
        // cpu+asic option can approach that.
        let probe = {
            let pc = base.class_by_name("mcu8").unwrap();
            let mut d = base.clone();
            let cpu = d.add_processor("probe", pc);
            let bus = d.add_bus(Bus::new("b", 16, 20, 100));
            let mut part = Partition::new(&d);
            for n in d.graph().node_ids() {
                part.assign_node(n, PmRef::Processor(cpu));
            }
            for c in d.graph().channel_ids() {
                part.assign_channel(c, bus);
            }
            let main = d.graph().node_by_name("VolMain").unwrap();
            ExecTimeEstimator::new(&d, &part).exec_time(main).unwrap()
        };
        let main = base.graph().node_by_name("VolMain").unwrap();
        let objectives = Objectives::new()
            .try_with_deadline(main, probe / 3.0)
            .unwrap();
        let anneal = AnnealingConfig {
            t0: 20.0,
            alpha: 0.8,
            moves_per_temp: 48,
            t_min: 0.2,
        };
        let results = explore_allocations(&base, &opts, &objectives, anneal, 5).unwrap();
        assert_eq!(
            results[0].name, "cpu+asic",
            "under a tight deadline the hardware-assisted allocation must win: {results:?}"
        );
    }

    #[test]
    fn base_with_components_rejected_as_invalid_input() {
        let mut d = base();
        let pc = d.class_by_name("mcu8").unwrap();
        d.add_processor("cpu", pc);
        let opts = options(&d);
        let err = explore_allocations(&d, &opts, &Objectives::new(), AnnealingConfig::default(), 0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
        assert!(err.to_string().contains("component-less"), "{err}");
    }

    #[test]
    fn empty_allocation_options_rejected_as_invalid_input() {
        let d = base();
        let mut no_procs = options(&d);
        no_procs[0].processors.clear();
        let err = explore_allocations(
            &d,
            &no_procs,
            &Objectives::new(),
            AnnealingConfig::default(),
            0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no processors"), "{err}");

        let mut no_buses = options(&d);
        no_buses[0].buses.clear();
        let err = explore_allocations(
            &d,
            &no_buses,
            &Objectives::new(),
            AnnealingConfig::default(),
            0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no buses"), "{err}");
    }
}
