//! Hierarchical closeness clustering.
//!
//! SpecSyn's original exploration strategy clustered functional objects by
//! "closeness" before binding clusters to components. Closeness here is
//! communication traffic: objects that exchange many bits per execution
//! belong together, because splitting them across components turns their
//! accesses into expensive cross-component transfers.

use crate::cost::{cost, Objectives};
use crate::ExplorationResult;
use slif_core::{AccessTarget, CoreError, Design, NodeId, Partition, PmRef};
use slif_estimate::IncrementalEstimator;

/// Agglomeratively clusters the design's nodes into at most `k` groups by
/// descending communication traffic.
///
/// Each node starts in its own cluster; the pair of clusters joined by
/// the highest-traffic channel merges first, until `k` clusters remain or
/// no connecting channels are left (disconnected nodes stay singleton).
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if `k` is zero.
pub fn closeness_clusters(design: &Design, k: usize) -> Result<Vec<Vec<NodeId>>, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidInput {
            message: "cluster count must be positive (got 0)".to_owned(),
        });
    }
    let n = design.graph().node_count();
    // Union-find over nodes.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Channels sorted by descending average traffic.
    let mut edges: Vec<(f64, usize, usize)> = design
        .graph()
        .channel_ids()
        .filter_map(|c| {
            let ch = design.graph().channel(c);
            match ch.dst() {
                AccessTarget::Node(dst) => Some((ch.avg_traffic(), ch.src().index(), dst.index())),
                AccessTarget::Port(_) => None,
            }
        })
        .collect();
    edges.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut clusters = n;
    for (_, a, b) in edges {
        if clusters <= k {
            break;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
            clusters -= 1;
        }
    }

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut root_to_group: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let r = find(&mut parent, i);
        let g = match root_to_group[r] {
            Some(g) => g,
            None => {
                groups.push(Vec::new());
                root_to_group[r] = Some(groups.len() - 1);
                groups.len() - 1
            }
        };
        groups[g].push(NodeId::from_raw(i as u32));
    }
    Ok(groups)
}

/// Cluster-then-bind partitioning: clusters the nodes by closeness, then
/// greedily binds each cluster (largest first) to the component that
/// yields the lowest cost, starting from `start` (which also supplies the
/// channel-to-bus mapping).
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if `k` is zero; otherwise propagates
/// estimation errors.
pub fn cluster_partition(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    k: usize,
) -> Result<ExplorationResult, CoreError> {
    let clusters = closeness_clusters(design, k)?;
    let mut est = IncrementalEstimator::new(design, start)?;
    let mut evaluations = 0;

    // Bind biggest clusters first: they constrain the layout the most.
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(clusters[i].len()));

    for &ci in &order {
        let cluster = &clusters[ci];
        let has_behavior = cluster
            .iter()
            .any(|&n| design.graph().node(n).kind().is_behavior());
        let mut best: Option<(PmRef, f64)> = None;
        for pm in design.pm_refs() {
            if has_behavior && matches!(pm, PmRef::Memory(_)) {
                continue;
            }
            let class = design.component_class(pm);
            let fits = cluster.iter().all(|&n| {
                let node = design.graph().node(n);
                node.size().supports(class)
                    && (!node.kind().is_behavior() || node.ict().supports(class))
            });
            if !fits {
                continue;
            }
            // Tentatively place the whole cluster.
            let homes: Vec<Option<PmRef>> = cluster
                .iter()
                .map(|&n| est.partition().node_component(n))
                .collect();
            for &n in cluster {
                est.move_node(n, pm)?;
            }
            let c = cost(&mut est, objectives)?;
            evaluations += 1;
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((pm, c));
            }
            // Restore.
            for (&n, &home) in cluster.iter().zip(&homes) {
                if let Some(h) = home {
                    est.move_node(n, h)?;
                }
            }
        }
        if let Some((pm, _)) = best {
            for &n in cluster {
                est.move_node(n, pm)?;
            }
        }
    }
    let final_cost = cost(&mut est, objectives)?;
    Ok(ExplorationResult {
        partition: est.into_partition(),
        cost: final_cost,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    #[test]
    fn clusters_partition_every_node_exactly_once() {
        let (design, _) = DesignGenerator::new(1).behaviors(12).variables(10).build();
        for k in [1, 3, 7] {
            let clusters = closeness_clusters(&design, k).unwrap();
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, design.graph().node_count());
            let mut seen: Vec<NodeId> = clusters.into_iter().flatten().collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), design.graph().node_count());
        }
    }

    #[test]
    fn one_cluster_merges_every_connected_node() {
        let (design, _) = DesignGenerator::new(2).build();
        let clusters = closeness_clusters(&design, 1).unwrap();
        // At least one big cluster; disconnected nodes may stay singleton.
        let biggest = clusters.iter().map(Vec::len).max().unwrap();
        assert!(biggest > 1);
    }

    #[test]
    fn high_traffic_pairs_cluster_together() {
        use slif_core::{AccessFreq, AccessKind, ClassKind, Design, NodeKind};
        let mut d = Design::new("t");
        let pc = d.add_class("p", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        let c = d.graph_mut().add_node("C", NodeKind::procedure());
        for n in [a, b, c] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 1);
            d.graph_mut().node_mut(n).size_mut().set(pc, 1);
        }
        let hot = d
            .graph_mut()
            .add_channel(a, b.into(), AccessKind::Call)
            .unwrap();
        let cold = d
            .graph_mut()
            .add_channel(a, c.into(), AccessKind::Call)
            .unwrap();
        *d.graph_mut().channel_mut(hot).freq_mut() = AccessFreq::exact(100);
        d.graph_mut().channel_mut(hot).set_bits(32);
        *d.graph_mut().channel_mut(cold).freq_mut() = AccessFreq::exact(1);
        let clusters = closeness_clusters(&d, 2).unwrap();
        let of = |n: NodeId| clusters.iter().position(|g| g.contains(&n)).unwrap();
        assert_eq!(of(a), of(b), "hot pair clusters together");
        assert_ne!(of(a), of(c));
    }

    #[test]
    fn cluster_partition_is_valid_and_no_worse_than_start() {
        let (design, part) = DesignGenerator::new(3)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .build();
        let mut est = IncrementalEstimator::new(&design, part.clone()).unwrap();
        let c0 = cost(&mut est, &Objectives::new()).unwrap();
        let r = cluster_partition(&design, part, &Objectives::new(), 4).unwrap();
        r.partition.validate(&design).unwrap();
        // Binding is greedy per cluster; it should not end up wildly worse
        // than the random start and usually improves it.
        assert!(r.cost <= c0 * 1.5 + 1.0, "{} vs {c0}", r.cost);
    }

    #[test]
    fn zero_clusters_rejected_as_invalid_input() {
        let (design, part) = DesignGenerator::new(4).build();
        let err = closeness_clusters(&design, 0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
        assert!(err.to_string().contains("cluster count"), "{err}");
        assert!(matches!(
            cluster_partition(&design, part, &Objectives::new(), 0),
            Err(CoreError::InvalidInput { .. })
        ));
    }
}
