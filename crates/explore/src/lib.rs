//! # slif-explore — allocation, partitioning, and transformation
//!
//! The system-design tasks SLIF exists to support (Section 1): deciding
//! which functional objects go on which components, and restructuring the
//! specification when that helps. Everything here evaluates candidates
//! through `slif-estimate`'s incremental estimator, which is what lets a
//! single run examine thousands of partitions:
//!
//! * [`explore_allocations`] — the allocation task: rank candidate
//!   architectures by the best partition each admits,
//! * [`Objectives`] / [`cost`] — constraint-violation scoring,
//! * [`random_search`], [`greedy_improve`], [`simulated_annealing`],
//!   [`group_migration`] — move-based partitioners,
//! * [`explore`] / [`resume`] under a [`Supervisor`] — the same four
//!   algorithms with deadlines, evaluation budgets, cooperative
//!   cancellation, progress callbacks, and crash-safe
//!   [`ExplorationCheckpoint`] files,
//! * [`closeness_clusters`] / [`cluster_partition`] — SpecSyn-style
//!   traffic clustering,
//! * [`pareto_sweep`] — multi-objective exploration returning the
//!   non-dominated (time, gates, pins) designs,
//! * [`inline_procedure`] / [`merge_processes`] — the paper's
//!   transformation task, with annotation recomputation.
//!
//! # Examples
//!
//! ```
//! use slif_core::gen::DesignGenerator;
//! use slif_explore::{greedy_improve, Objectives};
//!
//! let (design, start) = DesignGenerator::new(5).build();
//! let result = greedy_improve(&design, start, &Objectives::new(), 10)?;
//! result.partition.validate(&design)?;
//! # Ok::<(), slif_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The checkpoint and supervision paths must degrade to typed errors,
// never panic, on bad input; `scripts/verify.sh` turns this into a gate.
#![warn(clippy::expect_used)]

mod algorithms;
mod alloc;
mod checkpoint;
mod cluster;
mod cost;
mod error;
mod pareto;
mod supervise;
mod transform;

pub use algorithms::{
    explore, greedy_improve, group_migration, random_search, resume, simulated_annealing,
    Algorithm, AnnealingConfig, ExplorationResult,
};
pub use checkpoint::{
    CheckpointError, ExplorationCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use error::ExploreError;
pub use supervise::{CancelToken, Progress, StopReason, SupervisedResult, Supervisor};
pub use alloc::{explore_allocations, AllocOption, AllocResult, ProcessorAlloc};
pub use cluster::{closeness_clusters, cluster_partition};
pub use cost::{cost, Objectives};
pub use pareto::{pareto_sweep, ParetoPoint};
pub use transform::{
    auto_inline, inline_candidates, inline_procedure, merge_processes, TransformError,
    TransformResult,
};
