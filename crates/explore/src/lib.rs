//! # slif-explore — allocation, partitioning, and transformation
//!
//! The system-design tasks SLIF exists to support (Section 1): deciding
//! which functional objects go on which components, and restructuring the
//! specification when that helps. Everything here evaluates candidates
//! through `slif-estimate`'s incremental estimator, which is what lets a
//! single run examine thousands of partitions:
//!
//! * [`explore_allocations`] — the allocation task: rank candidate
//!   architectures by the best partition each admits,
//! * [`Objectives`] / [`cost`] — constraint-violation scoring,
//! * [`random_search`], [`greedy_improve`], [`simulated_annealing`],
//!   [`group_migration`] — move-based partitioners,
//! * [`closeness_clusters`] / [`cluster_partition`] — SpecSyn-style
//!   traffic clustering,
//! * [`pareto_sweep`] — multi-objective exploration returning the
//!   non-dominated (time, gates, pins) designs,
//! * [`inline_procedure`] / [`merge_processes`] — the paper's
//!   transformation task, with annotation recomputation.
//!
//! # Examples
//!
//! ```
//! use slif_core::gen::DesignGenerator;
//! use slif_explore::{greedy_improve, Objectives};
//!
//! let (design, start) = DesignGenerator::new(5).build();
//! let result = greedy_improve(&design, start, &Objectives::new(), 10)?;
//! result.partition.validate(&design)?;
//! # Ok::<(), slif_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithms;
mod alloc;
mod cluster;
mod cost;
mod pareto;
mod transform;

pub use algorithms::{
    greedy_improve, group_migration, random_search, simulated_annealing, AnnealingConfig,
    ExplorationResult,
};
pub use alloc::{explore_allocations, AllocOption, AllocResult, ProcessorAlloc};
pub use cluster::{closeness_clusters, cluster_partition};
pub use cost::{cost, Objectives};
pub use pareto::{pareto_sweep, ParetoPoint};
pub use transform::{
    auto_inline, inline_candidates, inline_procedure, merge_processes, TransformError,
    TransformResult,
};
