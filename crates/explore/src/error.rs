//! Error type for supervised exploration.
//!
//! Supervised runs can fail for two reasons: the estimation/partition
//! layer rejects a move (a [`CoreError`]), or a checkpoint cannot be
//! written or read (a [`CheckpointError`]). [`ExploreError`] keeps the
//! two apart so callers can retry the right thing — resubmit a run
//! versus delete a damaged snapshot.

use crate::checkpoint::CheckpointError;
use slif_core::CoreError;
use std::fmt;

/// Anything that can go wrong during a supervised exploration run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The estimation or partition layer rejected an operation.
    Core(CoreError),
    /// A checkpoint could not be written, read, or decoded.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<CoreError> for ExploreError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<CheckpointError> for ExploreError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_routes_through_inner_errors() {
        let core: ExploreError = CoreError::UnmappedNode {
            node: slif_core::NodeId::from_raw(3),
        }
        .into();
        assert!(core.to_string().contains("node"));
        let ckpt: ExploreError = CheckpointError::BadMagic.into();
        assert!(ckpt.to_string().starts_with("checkpoint:"));
    }
}
