//! Multi-objective (Pareto) design-space exploration.
//!
//! System design trades performance against hardware cost: SpecSyn's
//! designers examined many allocations and partitions precisely to see
//! that trade-off. This module sweeps the partition space and maintains
//! the set of *non-dominated* designs over three metrics:
//!
//! * worst process execution time (Equation 1),
//! * custom-hardware gates (Equation 4 over `CustomHw` components),
//! * total I/O pins (Equation 6 over all processors).
//!
//! A point dominates another when it is no worse in every metric and
//! strictly better in at least one.

use crate::cost::{cost, Objectives};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slif_core::{ClassKind, CoreError, Design, NodeId, Partition, PmRef};
use slif_estimate::IncrementalEstimator;

/// One design point on (or off) the Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The partition realizing the point.
    pub partition: Partition,
    /// Worst per-process execution time (ns).
    pub exec_time: f64,
    /// Gates on custom-hardware components.
    pub hw_gates: u64,
    /// Total processor pins.
    pub pins: u32,
}

impl ParetoPoint {
    /// Whether `self` dominates `other` (no worse everywhere, better
    /// somewhere).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.exec_time <= other.exec_time
            && self.hw_gates <= other.hw_gates
            && self.pins <= other.pins;
        let better = self.exec_time < other.exec_time
            || self.hw_gates < other.hw_gates
            || self.pins < other.pins;
        no_worse && better
    }
}

/// Measures the metrics of the estimator's current partition.
fn measure(
    design: &Design,
    est: &mut IncrementalEstimator<'_>,
) -> Result<(f64, u64, u32), CoreError> {
    let mut worst = 0.0f64;
    for n in design.graph().node_ids() {
        if design.graph().node(n).kind().is_process() {
            worst = worst.max(est.exec_time(n)?);
        }
    }
    let mut gates = 0;
    for p in design.processor_ids() {
        if design.class(design.processor(p).class()).kind() == ClassKind::CustomHw {
            gates += est.size(PmRef::Processor(p));
        }
    }
    let mut pins = 0;
    for p in design.processor_ids() {
        pins += est.pins(p)?;
    }
    Ok((worst, gates, pins))
}

/// Inserts `point` into `front`, dropping dominated members; returns
/// whether it was kept.
fn insert_nondominated(front: &mut Vec<ParetoPoint>, point: ParetoPoint) -> bool {
    if front.iter().any(|p| {
        p.dominates(&point)
            || (p.exec_time == point.exec_time
                && p.hw_gates == point.hw_gates
                && p.pins == point.pins)
    }) {
        return false;
    }
    front.retain(|p| !point.dominates(p));
    front.push(point);
    true
}

/// Sweeps the partition space with `iterations` random single-node moves
/// (biased toward improving the aggregate cost so the walk stays in
/// sensible territory) and returns the non-dominated set, sorted by
/// execution time.
///
/// # Errors
///
/// Propagates estimation errors; the starting partition must be complete.
pub fn pareto_sweep(
    design: &Design,
    start: Partition,
    iterations: u64,
    seed: u64,
) -> Result<Vec<ParetoPoint>, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut est = IncrementalEstimator::new(design, start)?;
    let objectives = Objectives::new();
    let mut current_cost = cost(&mut est, &objectives)?;
    let mut front: Vec<ParetoPoint> = Vec::new();
    let (t, g, p) = measure(design, &mut est)?;
    insert_nondominated(
        &mut front,
        ParetoPoint {
            partition: est.partition().clone(),
            exec_time: t,
            hw_gates: g,
            pins: p,
        },
    );

    let nodes: Vec<NodeId> = design.graph().node_ids().collect();
    let comps: Vec<PmRef> = design.pm_refs().collect();
    for _ in 0..iterations {
        let n = nodes[rng.gen_range(0..nodes.len())];
        let target = comps[rng.gen_range(0..comps.len())];
        let node = design.graph().node(n);
        if node.kind().is_behavior() && matches!(target, PmRef::Memory(_)) {
            continue;
        }
        let class = design.component_class(target);
        if !node.size().supports(class)
            || (node.kind().is_behavior() && !node.ict().supports(class))
        {
            continue;
        }
        let home = est
            .partition()
            .node_component(n)
            .ok_or(CoreError::UnmappedNode { node: n })?;
        est.move_node(n, target)?;
        let c = cost(&mut est, &objectives)?;
        // Metropolis-ish bias: always keep improving moves, sometimes
        // keep worsening ones so the sweep explores the cost surface.
        let keep = c <= current_cost || rng.gen::<f64>() < 0.3;
        if keep {
            current_cost = c;
            let (t, g, p) = measure(design, &mut est)?;
            insert_nondominated(
                &mut front,
                ParetoPoint {
                    partition: est.partition().clone(),
                    exec_time: t,
                    hw_gates: g,
                    pins: p,
                },
            );
        } else {
            est.move_node(n, home)?;
        }
    }
    front.sort_by(|a, b| a.exec_time.total_cmp(&b.exec_time));
    Ok(front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    fn front(seed: u64) -> (Design, Vec<ParetoPoint>) {
        let (design, part) = DesignGenerator::new(seed)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .build();
        let f = pareto_sweep(&design, part, 300, seed).unwrap();
        (design, f)
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let (_, f) = front(1);
        assert!(!f.is_empty());
        for (i, a) in f.iter().enumerate() {
            for (j, b) in f.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "front member dominated");
                }
            }
        }
    }

    #[test]
    fn front_is_sorted_by_time() {
        let (_, f) = front(2);
        for w in f.windows(2) {
            assert!(w[0].exec_time <= w[1].exec_time);
        }
    }

    #[test]
    fn front_partitions_are_valid() {
        let (design, f) = front(3);
        for p in &f {
            p.partition.validate(&design).unwrap();
        }
    }

    #[test]
    fn dominance_definition() {
        let mk = |t: f64, g: u64, p: u32| ParetoPoint {
            partition: Partition::new(&DesignGenerator::new(0).build().0),
            exec_time: t,
            hw_gates: g,
            pins: p,
        };
        assert!(mk(1.0, 10, 5).dominates(&mk(2.0, 10, 5)));
        assert!(mk(1.0, 9, 5).dominates(&mk(1.0, 10, 5)));
        assert!(!mk(1.0, 11, 5).dominates(&mk(2.0, 10, 5)), "trade-off");
        assert!(!mk(1.0, 10, 5).dominates(&mk(1.0, 10, 5)), "equal");
    }

    #[test]
    fn sweep_is_deterministic() {
        let (design, part) = DesignGenerator::new(4).build();
        let a = pareto_sweep(&design, part.clone(), 100, 7).unwrap();
        let b = pareto_sweep(&design, part, 100, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_drops_dominated_members() {
        let mk = |t: f64, g: u64| ParetoPoint {
            partition: Partition::new(&DesignGenerator::new(0).build().0),
            exec_time: t,
            hw_gates: g,
            pins: 0,
        };
        let mut front = vec![mk(5.0, 5)];
        assert!(insert_nondominated(&mut front, mk(1.0, 1)));
        assert_eq!(front.len(), 1, "dominating point evicts");
        assert!(!insert_nondominated(&mut front, mk(2.0, 2)));
        assert!(insert_nondominated(&mut front, mk(0.5, 9)));
        assert_eq!(front.len(), 2, "trade-off point joins");
    }
}
