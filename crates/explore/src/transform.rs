//! Specification transformations: procedure inlining and process merging.
//!
//! The third system-design task (besides allocation and partitioning) is
//! "the transformation of the specification into one more suited for
//! synthesis, such as merging processes into a single process" (Section
//! 1). The paper defers demonstrating transformations to future work but
//! notes they "would require modification of certain nodes and edges,
//! along with recomputation of certain annotations" (Section 3) — which
//! is exactly what this module implements, directly on SLIF:
//!
//! * [`inline_procedure`] — remove a procedure node, re-source its
//!   accesses from every caller (frequencies multiply), and fold its
//!   ict/size into the callers (code is duplicated per caller),
//! * [`merge_processes`] — combine two process nodes into one (ict/size
//!   add, access sets union, messages between the two become internal and
//!   disappear).

use slif_core::{AccessFreq, AccessTarget, ChannelId, Design, NodeId, WeightEntry};
use std::error::Error;
use std::fmt;

/// Error applying a transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// The node is not of the kind the transformation needs.
    WrongKind {
        /// The offending node.
        node: NodeId,
        /// What was required.
        expected: &'static str,
    },
    /// Inlining a self-calling (recursive) procedure is impossible.
    Recursive {
        /// The recursive node.
        node: NodeId,
    },
    /// A remapping invariant did not hold while rebuilding the design;
    /// this indicates an inconsistent input graph.
    Inconsistent {
        /// What was being remapped when the invariant failed.
        context: &'static str,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::WrongKind { node, expected } => {
                write!(f, "node {node} is not a {expected}")
            }
            TransformError::Recursive { node } => {
                write!(f, "cannot inline recursive procedure {node}")
            }
            TransformError::Inconsistent { context } => {
                write!(f, "transformation bookkeeping inconsistent: {context}")
            }
        }
    }
}

impl Error for TransformError {}

/// The outcome of a transformation: the rewritten design plus the mapping
/// from old node indices to new node ids (`None` for removed nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct TransformResult {
    /// The transformed design.
    pub design: Design,
    /// Old node index → new node id.
    pub node_map: Vec<Option<NodeId>>,
}

/// Inlines procedure `proc` into all of its callers.
///
/// Every access the procedure made is re-sourced from each caller with
/// its frequency multiplied by the call frequency; each caller's `ict`
/// grows by `call_freq × proc_ict` and its `size` by the full procedure
/// size (code duplication). The procedure node and its call edges
/// disappear.
///
/// # Errors
///
/// [`TransformError::WrongKind`] if `proc` is not a procedure (processes
/// and variables cannot be inlined), [`TransformError::Recursive`] if the
/// procedure calls itself.
pub fn inline_procedure(design: &Design, proc: NodeId) -> Result<TransformResult, TransformError> {
    let g = design.graph();
    let kind = g.node(proc).kind();
    if !kind.is_behavior() || kind.is_process() {
        return Err(TransformError::WrongKind {
            node: proc,
            expected: "procedure",
        });
    }
    for c in g.channels_of(proc) {
        if g.channel(c).dst() == AccessTarget::Node(proc) {
            return Err(TransformError::Recursive { node: proc });
        }
    }
    // Only call sites can be inlined; a message-accessed behavior runs on
    // its own schedule and cannot be folded into its senders.
    for c in g.accessors_of(proc) {
        if g.channel(c).kind() != slif_core::AccessKind::Call {
            return Err(TransformError::WrongKind {
                node: proc,
                expected: "call-only procedure",
            });
        }
    }

    let mut out = clone_structure(design, |n| n != proc);

    // Call frequencies per caller.
    let callers: Vec<(NodeId, AccessFreq)> = g
        .accessors_of(proc)
        .map(|c| {
            let ch = g.channel(c);
            (ch.src(), ch.freq())
        })
        .collect();

    // Copy all channels except those touching `proc`; then replay the
    // procedure's accesses from each caller.
    for c in g.channel_ids() {
        let ch = g.channel(c);
        if ch.src() == proc || ch.dst() == AccessTarget::Node(proc) {
            continue;
        }
        copy_channel(design, &mut out, c)?;
    }
    for &(caller, call_freq) in &callers {
        let new_src = out.node_map[caller.index()].ok_or(TransformError::Inconsistent {
            context: "caller node was removed",
        })?;
        for c in g.channels_of(proc) {
            let ch = g.channel(c);
            let new_dst = remap_target(ch.dst(), &out.node_map)?;
            let id = out
                .design
                .graph_mut()
                .add_or_merge_channel(new_src, new_dst, ch.kind())
                .map_err(|_| TransformError::Inconsistent {
                    context: "inlined channel kinds conflict",
                })?;
            let scaled = AccessFreq::new(
                call_freq.avg * ch.freq().avg,
                call_freq.min * ch.freq().min,
                call_freq.max * ch.freq().max,
            );
            accumulate_channel(&mut out.design, id, scaled, ch.bits());
        }
        // Fold the procedure's weights into the caller.
        let proc_node = g.node(proc).clone();
        let caller_node = out.design.graph_mut().node_mut(new_src);
        for e in proc_node.ict().iter() {
            let grown = (call_freq.avg * e.val as f64).round() as u64;
            let old = caller_node.ict().get(e.class).unwrap_or(0);
            caller_node.ict_mut().set(e.class, old + grown);
        }
        for e in proc_node.size().iter() {
            let old = caller_node.size().entry(e.class).copied();
            let merged = match old {
                Some(o) => WeightEntry {
                    class: e.class,
                    val: o.val + e.val,
                    datapath: match (o.datapath, e.datapath) {
                        (None, None) => None,
                        (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
                    },
                },
                None => *e,
            };
            caller_node.size_mut().insert(merged);
        }
    }
    Ok(out)
}

/// Merges process `b` into process `a`: the result keeps `a`'s node with
/// summed ict/size, the union of both access sets, and `b`'s incoming
/// messages redirected to `a`. Messages between `a` and `b` become
/// internal control flow and disappear.
///
/// # Errors
///
/// [`TransformError::WrongKind`] unless both nodes are processes.
pub fn merge_processes(
    design: &Design,
    a: NodeId,
    b: NodeId,
) -> Result<TransformResult, TransformError> {
    let g = design.graph();
    for n in [a, b] {
        if !g.node(n).kind().is_process() {
            return Err(TransformError::WrongKind {
                node: n,
                expected: "process",
            });
        }
    }
    let mut out = clone_structure(design, |n| n != b);
    // Fold b's weights into a.
    let b_node = g.node(b).clone();
    let new_a = out.node_map[a.index()].ok_or(TransformError::Inconsistent {
        context: "merge target was removed",
    })?;
    {
        let a_mut = out.design.graph_mut().node_mut(new_a);
        for e in b_node.ict().iter() {
            let old = a_mut.ict().get(e.class).unwrap_or(0);
            a_mut.ict_mut().set(e.class, old + e.val);
        }
        for e in b_node.size().iter() {
            let old = a_mut.size().entry(e.class).copied();
            let merged = match old {
                Some(o) => WeightEntry {
                    class: e.class,
                    val: o.val + e.val,
                    datapath: match (o.datapath, e.datapath) {
                        (None, None) => None,
                        (x, y) => Some(x.unwrap_or(0) + y.unwrap_or(0)),
                    },
                },
                None => *e,
            };
            a_mut.size_mut().insert(merged);
        }
    }
    // Channels: redirect b's endpoints to a; drop a↔b internals.
    for c in design.graph().channel_ids() {
        let ch = design.graph().channel(c);
        let src_is_pair = ch.src() == a || ch.src() == b;
        let dst_is_pair = ch.dst() == AccessTarget::Node(a) || ch.dst() == AccessTarget::Node(b);
        if src_is_pair && dst_is_pair {
            continue; // now-internal communication
        }
        let new_src = if ch.src() == b {
            new_a
        } else {
            out.node_map[ch.src().index()].ok_or(TransformError::Inconsistent {
                context: "channel source was removed",
            })?
        };
        let new_dst = match ch.dst() {
            AccessTarget::Node(n) if n == b => AccessTarget::Node(new_a),
            other => remap_target(other, &out.node_map)?,
        };
        let id = out
            .design
            .graph_mut()
            .add_or_merge_channel(new_src, new_dst, ch.kind())
            .map_err(|_| TransformError::Inconsistent {
                context: "merged channel kinds conflict",
            })?;
        accumulate_channel(&mut out.design, id, ch.freq(), ch.bits());
    }
    Ok(out)
}

/// Clones classes, ports, components, and the surviving nodes (with their
/// weights); channels are left for the caller.
fn clone_structure(design: &Design, keep: impl Fn(NodeId) -> bool) -> TransformResult {
    let g = design.graph();
    let mut d = Design::new(design.name().to_owned());
    for k in design.class_ids() {
        let c = design.class(k);
        d.add_class(c.name(), c.kind());
    }
    for p in g.port_ids() {
        let port = g.port(p);
        d.graph_mut()
            .add_port(port.name(), port.direction(), port.bits());
    }
    let mut node_map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for n in g.node_ids() {
        if !keep(n) {
            continue;
        }
        let node = g.node(n);
        let id = d.graph_mut().add_node(node.name(), node.kind());
        for e in node.ict().iter() {
            d.graph_mut().node_mut(id).ict_mut().insert(*e);
        }
        for e in node.size().iter() {
            d.graph_mut().node_mut(id).size_mut().insert(*e);
        }
        node_map[n.index()] = Some(id);
    }
    for p in design.processor_ids() {
        d.add_processor_instance(design.processor(p).clone());
    }
    for m in design.memory_ids() {
        d.add_memory_instance(design.memory(m).clone());
    }
    for b in design.bus_ids() {
        d.add_bus(design.bus(b).clone());
    }
    TransformResult {
        design: d,
        node_map,
    }
}

fn remap_target(dst: AccessTarget, map: &[Option<NodeId>]) -> Result<AccessTarget, TransformError> {
    match dst {
        AccessTarget::Node(n) => map[n.index()]
            .map(AccessTarget::Node)
            .ok_or(TransformError::Inconsistent {
                context: "channel destination was removed",
            }),
        AccessTarget::Port(p) => Ok(AccessTarget::Port(p)),
    }
}

/// Copies channel `c` of `design` into `out`, merging with any existing
/// same-source/destination edge.
fn copy_channel(
    design: &Design,
    out: &mut TransformResult,
    c: ChannelId,
) -> Result<(), TransformError> {
    let ch = design.graph().channel(c);
    let src = out.node_map[ch.src().index()].ok_or(TransformError::Inconsistent {
        context: "channel source was removed",
    })?;
    let dst = remap_target(ch.dst(), &out.node_map)?;
    let id = out
        .design
        .graph_mut()
        .add_or_merge_channel(src, dst, ch.kind())
        .map_err(|_| TransformError::Inconsistent {
            context: "copied channel kinds conflict",
        })?;
    accumulate_channel(&mut out.design, id, ch.freq(), ch.bits());
    out.design.graph_mut().channel_mut(id).set_tag(ch.tag());
    Ok(())
}

/// Adds `freq` (and the wider `bits`) onto channel `id`, treating a
/// freshly created channel (default 1-access/1-bit) as empty.
fn accumulate_channel(design: &mut Design, id: ChannelId, freq: AccessFreq, bits: u32) {
    let ch = design.graph_mut().channel_mut(id);
    let fresh = ch.freq() == AccessFreq::default() && ch.bits() == 1;
    if fresh {
        *ch.freq_mut() = freq;
        ch.set_bits(bits);
    } else {
        let old = ch.freq();
        *ch.freq_mut() =
            AccessFreq::new(old.avg + freq.avg, old.min + freq.min, old.max + freq.max);
        ch.set_bits(ch.bits().max(bits));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{AccessKind, Bus, ClassKind, NodeKind, Partition, PmRef};

    /// main calls sub twice; sub writes v 3 times per execution.
    fn fixture() -> (Design, NodeId, NodeId, NodeId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let sub = d.graph_mut().add_node("Sub", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        for (n, ict, size) in [(main, 100u64, 500u64), (sub, 40, 200)] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, ict);
            d.graph_mut().node_mut(n).size_mut().set(pc, size);
        }
        d.graph_mut().node_mut(v).ict_mut().set(pc, 2);
        d.graph_mut().node_mut(v).size_mut().set(pc, 1);
        let call = d
            .graph_mut()
            .add_channel(main, sub.into(), AccessKind::Call)
            .unwrap();
        *d.graph_mut().channel_mut(call).freq_mut() = AccessFreq::exact(2);
        d.graph_mut().channel_mut(call).set_bits(8);
        let wr = d
            .graph_mut()
            .add_channel(sub, v.into(), AccessKind::Write)
            .unwrap();
        *d.graph_mut().channel_mut(wr).freq_mut() = AccessFreq::exact(3);
        d.graph_mut().channel_mut(wr).set_bits(8);
        d.add_processor("cpu", pc);
        d.add_bus(Bus::new("b", 8, 1, 2));
        (d, main, sub, v)
    }

    #[test]
    fn inline_multiplies_frequencies_and_folds_weights() {
        let (d, main, sub, v) = fixture();
        let r = inline_procedure(&d, sub).unwrap();
        let g = r.design.graph();
        assert_eq!(g.node_count(), 2);
        assert!(g.node_by_name("Sub").is_none());
        let new_main = r.node_map[main.index()].unwrap();
        let new_v = r.node_map[v.index()].unwrap();
        // Main now writes v with freq 2 × 3 = 6.
        let c = g
            .find_channel(new_main, new_v.into(), AccessKind::Write)
            .unwrap();
        assert_eq!(g.channel(c).freq().avg, 6.0);
        assert_eq!(g.channel(c).bits(), 8);
        // Main's ict grew by 2 × 40; size by 200.
        let pc = r.design.class_by_name("proc").unwrap();
        assert_eq!(g.node(new_main).ict().get(pc), Some(100 + 80));
        assert_eq!(g.node(new_main).size().get(pc), Some(500 + 200));
    }

    #[test]
    fn inline_preserves_execution_time_modulo_call_transfer() {
        let (d, main, sub, _v) = fixture();
        let cpu = d.processor_by_name("cpu").unwrap();
        let bus = d.bus_by_name("b").unwrap();
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            part.assign_node(n, PmRef::Processor(cpu));
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        let before = slif_estimate::ExecTimeEstimator::new(&d, &part)
            .exec_time(main)
            .unwrap();

        let r = inline_procedure(&d, sub).unwrap();
        let cpu2 = r.design.processor_by_name("cpu").unwrap();
        let bus2 = r.design.bus_by_name("b").unwrap();
        let mut part2 = Partition::new(&r.design);
        for n in r.design.graph().node_ids() {
            part2.assign_node(n, PmRef::Processor(cpu2));
        }
        for c in r.design.graph().channel_ids() {
            part2.assign_channel(c, bus2);
        }
        let new_main = r.node_map[main.index()].unwrap();
        let after = slif_estimate::ExecTimeEstimator::new(&r.design, &part2)
            .exec_time(new_main)
            .unwrap();
        // The call's own bus transfers (2 accesses × ts=1) disappear;
        // everything else is preserved.
        assert_eq!(before - after, 2.0);
    }

    #[test]
    fn inline_rejects_processes_variables_and_recursion() {
        let (mut d, main, sub, v) = fixture();
        assert!(matches!(
            inline_procedure(&d, main),
            Err(TransformError::WrongKind { .. })
        ));
        assert!(matches!(
            inline_procedure(&d, v),
            Err(TransformError::WrongKind { .. })
        ));
        d.graph_mut()
            .add_channel(sub, sub.into(), AccessKind::Call)
            .unwrap();
        assert!(matches!(
            inline_procedure(&d, sub),
            Err(TransformError::Recursive { .. })
        ));
    }

    #[test]
    fn inline_with_two_callers_duplicates_code() {
        let (mut d, _main, sub, v) = fixture();
        let pc = d.class_by_name("proc").unwrap();
        let other = d.graph_mut().add_node("Other", NodeKind::process());
        d.graph_mut().node_mut(other).ict_mut().set(pc, 10);
        d.graph_mut().node_mut(other).size_mut().set(pc, 50);
        let c2 = d
            .graph_mut()
            .add_channel(other, sub.into(), AccessKind::Call)
            .unwrap();
        *d.graph_mut().channel_mut(c2).freq_mut() = AccessFreq::exact(5);
        let r = inline_procedure(&d, sub).unwrap();
        let g = r.design.graph();
        let new_other = r.node_map[other.index()].unwrap();
        let new_v = r.node_map[v.index()].unwrap();
        let c = g
            .find_channel(new_other, new_v.into(), AccessKind::Write)
            .unwrap();
        assert_eq!(g.channel(c).freq().avg, 15.0); // 5 calls × 3 writes
                                                   // Both callers carry a full copy of the code.
        assert_eq!(g.node(new_other).size().get(pc), Some(50 + 200));
    }

    #[test]
    fn merge_sums_weights_and_unions_accesses() {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        for (n, ict, size) in [(a, 10u64, 100u64), (b, 20, 300)] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, ict);
            d.graph_mut().node_mut(n).size_mut().set(pc, size);
        }
        d.graph_mut().node_mut(v).ict_mut().set(pc, 1);
        d.graph_mut().node_mut(v).size_mut().set(pc, 1);
        // Both write v; they also message each other (becomes internal).
        let wa = d
            .graph_mut()
            .add_channel(a, v.into(), AccessKind::Write)
            .unwrap();
        *d.graph_mut().channel_mut(wa).freq_mut() = AccessFreq::exact(2);
        let wb = d
            .graph_mut()
            .add_channel(b, v.into(), AccessKind::Write)
            .unwrap();
        *d.graph_mut().channel_mut(wb).freq_mut() = AccessFreq::exact(3);
        d.graph_mut()
            .add_channel(a, b.into(), AccessKind::Message)
            .unwrap();
        d.graph_mut()
            .add_channel(b, a.into(), AccessKind::Message)
            .unwrap();

        let r = merge_processes(&d, a, b).unwrap();
        let g = r.design.graph();
        assert_eq!(g.node_count(), 2);
        let new_a = r.node_map[a.index()].unwrap();
        assert_eq!(g.node(new_a).ict().get(pc), Some(30));
        assert_eq!(g.node(new_a).size().get(pc), Some(400));
        // Writes union: 2 + 3 = 5 accesses of v.
        let new_v = r.node_map[v.index()].unwrap();
        let c = g
            .find_channel(new_a, new_v.into(), AccessKind::Write)
            .unwrap();
        assert_eq!(g.channel(c).freq().avg, 5.0);
        // The messages between a and b are gone.
        assert_eq!(g.channel_count(), 1);
    }

    #[test]
    fn merge_redirects_external_messages() {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let c = d.graph_mut().add_node("C", NodeKind::process());
        for n in [a, b, c] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 1);
            d.graph_mut().node_mut(n).size_mut().set(pc, 1);
        }
        d.graph_mut()
            .add_channel(c, b.into(), AccessKind::Message)
            .unwrap();
        let r = merge_processes(&d, a, b).unwrap();
        let g = r.design.graph();
        let new_a = r.node_map[a.index()].unwrap();
        let new_c = r.node_map[c.index()].unwrap();
        assert!(g
            .find_channel(new_c, new_a.into(), AccessKind::Message)
            .is_some());
    }

    #[test]
    fn merge_rejects_non_processes() {
        let (d, _main, sub, _v) = fixture();
        let main = d.graph().node_by_name("Main").unwrap();
        assert!(matches!(
            merge_processes(&d, main, sub),
            Err(TransformError::WrongKind { .. })
        ));
    }
}

/// Estimated execution-time gain from inlining each procedure of the
/// design, under `partition`: inlining removes the call's bus transfers
/// (`freq × TransferTime` per caller). Returns `(procedure, gain)` pairs
/// with positive gain, sorted descending — a transformation-selection
/// heuristic for the paper's transformation task.
pub fn inline_candidates(design: &Design, partition: &slif_core::Partition) -> Vec<(NodeId, f64)> {
    let g = design.graph();
    let mut out: Vec<(NodeId, f64)> = Vec::new();
    for n in g.node_ids() {
        let kind = g.node(n).kind();
        if !kind.is_behavior() || kind.is_process() {
            continue;
        }
        // Recursive procedures cannot be inlined.
        if g.channels_of(n)
            .any(|c| g.channel(c).dst() == AccessTarget::Node(n))
        {
            continue;
        }
        let mut gain = 0.0;
        for c in g.accessors_of(n) {
            let ch = g.channel(c);
            let Some(bus_id) = partition.channel_bus(c) else {
                continue;
            };
            let bus = design.bus(bus_id);
            let same = partition.node_component(ch.src()) == partition.node_component(n);
            gain += ch.freq().avg * bus.access_time(ch.bits(), same) as f64;
        }
        if gain > 0.0 {
            out.push((n, gain));
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// Applies [`inline_procedure`] to every candidate whose estimated gain
/// meets `min_gain`, highest gain first, re-evaluating candidates after
/// each step (inlining changes the graph). Returns the transformed design
/// and how many procedures were inlined.
///
/// The partition argument only supplies the channel-to-bus mapping used
/// to price call transfers; the returned design needs a fresh partition.
///
/// # Errors
///
/// Propagates [`TransformError`] from an individual inline step.
pub fn auto_inline(
    design: &Design,
    partition: &slif_core::Partition,
    min_gain: f64,
) -> Result<(Design, usize), TransformError> {
    let mut current = design.clone();
    // Bus mapping by name survives across rebuilds; price transfers with
    // the first bus when the original mapping no longer applies.
    let mut inlined = 0;
    loop {
        // Price against an everything-on-first-bus mapping of the current
        // design (the structure changed, so the original partition's
        // channel slots no longer line up).
        let Some(first_bus) = current.bus_ids().next() else {
            return Ok((current, inlined));
        };
        let mut pricing = slif_core::Partition::new(&current);
        for c in current.graph().channel_ids() {
            pricing.assign_channel(c, first_bus);
        }
        for n in current.graph().node_ids() {
            // Component placement affects ts-vs-td; reuse the original
            // partition's placement where names still match.
            if let Some(orig) = design.graph().node_by_name(current.graph().node(n).name()) {
                if let Some(comp) = partition.node_component(orig) {
                    pricing.assign_node(n, comp);
                }
            }
        }
        let candidates = inline_candidates(&current, &pricing);
        let Some(&(target, gain)) = candidates.first() else {
            return Ok((current, inlined));
        };
        if gain < min_gain {
            return Ok((current, inlined));
        }
        current = inline_procedure(&current, target)?.design;
        inlined += 1;
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use slif_core::{AccessFreq, AccessKind, Bus, ClassKind, NodeKind, Partition, PmRef};

    /// Two procedures: Hot is called 100x with wide parameters, Cold once.
    fn fixture() -> (Design, Partition, NodeId, NodeId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let hot = d.graph_mut().add_node("Hot", NodeKind::procedure());
        let cold = d.graph_mut().add_node("Cold", NodeKind::procedure());
        for n in [main, hot, cold] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 10);
            d.graph_mut().node_mut(n).size_mut().set(pc, 100);
        }
        let c_hot = d
            .graph_mut()
            .add_channel(main, hot.into(), AccessKind::Call)
            .unwrap();
        *d.graph_mut().channel_mut(c_hot).freq_mut() = AccessFreq::exact(100);
        d.graph_mut().channel_mut(c_hot).set_bits(32);
        let c_cold = d
            .graph_mut()
            .add_channel(main, cold.into(), AccessKind::Call)
            .unwrap();
        *d.graph_mut().channel_mut(c_cold).freq_mut() = AccessFreq::exact(1);
        d.graph_mut().channel_mut(c_cold).set_bits(1);
        let cpu = d.add_processor("cpu", pc);
        let bus = d.add_bus(Bus::new("b", 16, 2, 8));
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            part.assign_node(n, PmRef::Processor(cpu));
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        (d, part, hot, cold)
    }

    #[test]
    fn candidates_ranked_by_transfer_savings() {
        let (d, part, hot, cold) = fixture();
        let candidates = inline_candidates(&d, &part);
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].0, hot);
        assert_eq!(candidates[1].0, cold);
        // Hot: 100 calls × 2 transfers × ts 2 = 400. Cold: 1 × 1 × 2 = 2.
        assert_eq!(candidates[0].1, 400.0);
        assert_eq!(candidates[1].1, 2.0);
    }

    #[test]
    fn processes_and_recursive_procedures_excluded() {
        let (mut d, _, _, _) = fixture();
        let hot = d.graph().node_by_name("Hot").unwrap();
        d.graph_mut()
            .add_channel(hot, hot.into(), AccessKind::Call)
            .unwrap();
        // Rebuild the partition for the grown graph.
        let cpu = d.processor_by_name("cpu").unwrap();
        let bus = d.bus_by_name("b").unwrap();
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            part.assign_node(n, PmRef::Processor(cpu));
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        let names: Vec<&str> = inline_candidates(&d, &part)
            .iter()
            .map(|(n, _)| d.graph().node(*n).name())
            .collect();
        assert!(!names.contains(&"Hot"), "recursive Hot excluded: {names:?}");
        assert!(!names.contains(&"Main"), "processes excluded");
    }

    #[test]
    fn auto_inline_applies_above_threshold_only() {
        let (d, part, ..) = fixture();
        // Threshold 100: only Hot (gain 400) qualifies.
        let (out, count) = auto_inline(&d, &part, 100.0).unwrap();
        assert_eq!(count, 1);
        assert!(out.graph().node_by_name("Hot").is_none());
        assert!(out.graph().node_by_name("Cold").is_some());
        // Threshold 1: both go.
        let (out, count) = auto_inline(&d, &part, 1.0).unwrap();
        assert_eq!(count, 2);
        assert!(out.graph().node_by_name("Cold").is_none());
        // Impossible threshold: nothing changes.
        let (out, count) = auto_inline(&d, &part, 1e12).unwrap();
        assert_eq!(count, 0);
        assert_eq!(out.graph().node_count(), d.graph().node_count());
    }

    #[test]
    fn auto_inline_on_the_corpus_terminates_and_shrinks() {
        let rs = slif_speclang::corpus::by_name("fuzzy")
            .unwrap()
            .load()
            .unwrap();
        let d = slif_frontend::build_design(&rs, &slif_techlib::TechnologyLibrary::proc_asic());
        let mut d = d;
        let arch = slif_frontend::allocate_proc_asic(&mut d);
        let part = slif_frontend::all_software_partition(&d, arch);
        let (out, count) = auto_inline(&d, &part, 0.1).unwrap();
        assert!(count > 0, "fuzzy has inlinable procedures");
        assert!(out.graph().node_count() < d.graph().node_count());
        // Processes survive.
        assert!(out.graph().node_by_name("FuzzyMain").is_some());
        assert!(out.graph().node_by_name("Monitor").is_some());
    }
}
