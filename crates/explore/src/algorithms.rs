//! Partitioning algorithms.
//!
//! SpecSyn "permits rapid exploration of partitions of functionality
//! among processors, ASICs, memories and bus components" and the paper's
//! speed argument exists so that "algorithms that explore thousands of
//! possible designs" stay practical (Section 5). This module provides the
//! classic system-partitioning quartet over SLIF + incremental
//! estimation:
//!
//! * [`random_search`] — uniform random moves, keep the best,
//! * [`greedy_improve`] — steepest-descent single-object moves,
//! * [`simulated_annealing`] — Metropolis acceptance with geometric
//!   cooling,
//! * [`group_migration`] — Kernighan–Lin-style passes with node locking
//!   and best-prefix rollback.
//!
//! All four run as resumable state machines under a
//! [`Supervisor`]: [`explore`] starts a run, [`resume`] continues one
//! from an [`ExplorationCheckpoint`], and the four classic entry points
//! are unlimited-supervisor wrappers kept for convenience. The state
//! machines only observe the supervisor at deterministic algorithm
//! boundaries, so a run interrupted at any point and resumed from its
//! checkpoint retraces the uninterrupted run bit for bit.

use crate::checkpoint::{AlgorithmState, DesignFingerprint, ExplorationCheckpoint};
use crate::cost::{cost, Objectives};
use crate::error::ExploreError;
use crate::supervise::{StopReason, SupervisedResult, Supervisor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slif_core::{BusId, ChannelId, CoreError, Design, NodeId, Partition, PartitionTxn, PmRef};
use slif_estimate::IncrementalEstimator;

/// The outcome of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationResult {
    /// The best partition found.
    pub partition: Partition,
    /// Its cost.
    pub cost: f64,
    /// How many candidate partitions were evaluated.
    pub evaluations: u64,
}

/// Simulated-annealing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Starting temperature.
    pub t0: f64,
    /// Geometric cooling factor per temperature step.
    pub alpha: f64,
    /// Moves attempted per temperature step.
    pub moves_per_temp: u32,
    /// Stop when the temperature falls below this.
    pub t_min: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            t0: 50.0,
            alpha: 0.9,
            moves_per_temp: 64,
            t_min: 0.05,
        }
    }
}

/// Which partitioner a supervised run executes, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Algorithm {
    /// Uniform random moves, keep the best.
    RandomSearch {
        /// Moves to attempt.
        iterations: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Steepest-descent single-object moves.
    GreedyImprove {
        /// Maximum improvement passes.
        max_passes: u32,
    },
    /// Metropolis acceptance with geometric cooling.
    SimulatedAnnealing {
        /// Cooling schedule.
        config: AnnealingConfig,
        /// RNG seed.
        seed: u64,
    },
    /// Kernighan–Lin-style passes with locking and best-prefix rollback.
    GroupMigration {
        /// Maximum passes.
        max_passes: u32,
    },
}

/// All components a node could legally move to.
fn move_targets(design: &Design, n: NodeId) -> Vec<PmRef> {
    let node = design.graph().node(n);
    let mut targets: Vec<PmRef> = Vec::new();
    for pm in design.pm_refs() {
        if node.kind().is_behavior() && matches!(pm, PmRef::Memory(_)) {
            continue;
        }
        let class = design.component_class(pm);
        if node.size().supports(class) && (!node.kind().is_behavior() || node.ict().supports(class))
        {
            targets.push(pm);
        }
    }
    targets
}

/// Mutable best-so-far bookkeeping shared by every state machine.
struct Run {
    evaluations: u64,
    best: Partition,
    best_cost: f64,
}

/// Packages the current run + algorithm state as a checkpoint.
///
/// `evaluations` is passed separately because greedy and group migration
/// snapshot at their *last deterministic boundary*: evaluations spent on
/// a partial (and discarded) scan are rolled back so a resumed run
/// retraces the uninterrupted one exactly.
fn snapshot(
    design: &Design,
    run: &Run,
    current: &Partition,
    state: AlgorithmState,
    evaluations: u64,
) -> ExplorationCheckpoint {
    ExplorationCheckpoint {
        fingerprint: DesignFingerprint::of(design),
        evaluations,
        best_cost: run.best_cost,
        best: run.best.clone(),
        current: current.clone(),
        state,
    }
}

/// Starts a supervised exploration run from `start`.
///
/// The run observes `supervisor` at deterministic algorithm boundaries:
/// it stops early with a typed [`StopReason`] when a limit trips, writes
/// crash-safe checkpoints on the configured cadence (plus a final one at
/// an early stop), and always returns the best partition seen so far.
///
/// # Errors
///
/// Propagates estimation errors and checkpoint write failures.
pub fn explore(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    algorithm: &Algorithm,
    supervisor: &mut Supervisor,
) -> Result<SupervisedResult, ExploreError> {
    let mut est = IncrementalEstimator::new(design, start)?;
    let c0 = cost(&mut est, objectives)?;
    let run = Run {
        evaluations: 1,
        best: est.partition().clone(),
        best_cost: c0,
    };
    let state = match *algorithm {
        Algorithm::RandomSearch { iterations, seed } => AlgorithmState::Random {
            iterations,
            iter: 0,
            rng: StdRng::seed_from_u64(seed).state(),
        },
        Algorithm::GreedyImprove { max_passes } => AlgorithmState::Greedy {
            max_passes,
            pass: 0,
            current_cost: c0,
        },
        Algorithm::SimulatedAnnealing { config, seed } => AlgorithmState::Annealing {
            config,
            temp: config.t0,
            move_idx: 0,
            current_cost: c0,
            rng: StdRng::seed_from_u64(seed).state(),
        },
        Algorithm::GroupMigration { max_passes } => AlgorithmState::GroupMigration {
            max_passes,
            pass: 0,
            pass_start_cost: c0,
            locked: vec![false; design.graph().node_count()],
            trail: Vec::new(),
        },
    };
    drive(design, objectives, supervisor, est, run, state)
}

/// Continues a supervised run from a checkpoint.
///
/// The checkpoint must have been decoded against the same `design`
/// (checked structurally at decode time). A resumed run retraces the
/// uninterrupted run exactly: same best partition, same cost bits, same
/// evaluation count.
///
/// # Errors
///
/// Propagates estimation errors and checkpoint write failures.
pub fn resume(
    design: &Design,
    objectives: &Objectives,
    checkpoint: ExplorationCheckpoint,
    supervisor: &mut Supervisor,
) -> Result<SupervisedResult, ExploreError> {
    let ExplorationCheckpoint {
        evaluations,
        best_cost,
        best,
        current,
        state,
        ..
    } = checkpoint;
    let est = IncrementalEstimator::new(design, current)?;
    let run = Run {
        evaluations,
        best,
        best_cost,
    };
    drive(design, objectives, supervisor, est, run, state)
}

fn drive(
    design: &Design,
    objectives: &Objectives,
    supervisor: &mut Supervisor,
    mut est: IncrementalEstimator<'_>,
    mut run: Run,
    state: AlgorithmState,
) -> Result<SupervisedResult, ExploreError> {
    supervisor.begin();
    let stop = match state {
        AlgorithmState::Random {
            iterations,
            iter,
            rng,
        } => run_random(
            design, objectives, supervisor, &mut est, &mut run, iterations, iter, rng,
        )?,
        AlgorithmState::Greedy {
            max_passes,
            pass,
            current_cost,
        } => run_greedy(
            design,
            objectives,
            supervisor,
            &mut est,
            &mut run,
            max_passes,
            pass,
            current_cost,
        )?,
        AlgorithmState::Annealing {
            config,
            temp,
            move_idx,
            current_cost,
            rng,
        } => run_annealing(
            design,
            objectives,
            supervisor,
            &mut est,
            &mut run,
            config,
            temp,
            move_idx,
            current_cost,
            rng,
        )?,
        AlgorithmState::GroupMigration {
            max_passes,
            pass,
            pass_start_cost,
            locked,
            trail,
        } => run_group_migration(
            design,
            objectives,
            supervisor,
            &mut est,
            &mut run,
            max_passes,
            pass,
            pass_start_cost,
            locked,
            trail,
        )?,
    };
    Ok(SupervisedResult {
        result: ExplorationResult {
            partition: run.best,
            cost: run.best_cost,
            evaluations: run.evaluations,
        },
        stop,
        checkpoints_written: supervisor.checkpoints_written(),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_random(
    design: &Design,
    objectives: &Objectives,
    sup: &mut Supervisor,
    est: &mut IncrementalEstimator<'_>,
    run: &mut Run,
    iterations: u64,
    mut iter: u64,
    rng_state: [u64; 4],
) -> Result<StopReason, ExploreError> {
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();
    let mut rng = StdRng::from_state(rng_state);
    loop {
        // Boundary: between iterations; the RNG snapshot taken here is
        // exactly what a resumed run restarts from.
        let boundary_rng = rng.state();
        if iter >= iterations {
            return Ok(StopReason::Completed);
        }
        if let Some(stop) = sup.check(run.evaluations) {
            if sup.wants_checkpoints() {
                let state = AlgorithmState::Random {
                    iterations,
                    iter,
                    rng: boundary_rng,
                };
                sup.save_checkpoint(&snapshot(
                    design,
                    run,
                    est.partition(),
                    state,
                    run.evaluations,
                ))?;
            }
            return Ok(stop);
        }
        if sup.tick(run.evaluations, run.best_cost) {
            let state = AlgorithmState::Random {
                iterations,
                iter,
                rng: boundary_rng,
            };
            sup.save_checkpoint(&snapshot(
                design,
                run,
                est.partition(),
                state,
                run.evaluations,
            ))?;
        }
        let n = nodes[rng.gen_range(0..nodes.len())];
        let targets = move_targets(design, n);
        if !targets.is_empty() {
            let target = targets[rng.gen_range(0..targets.len())];
            est.move_node(n, target)?;
            let c = cost(est, objectives)?;
            run.evaluations += 1;
            if c < run.best_cost {
                run.best_cost = c;
                run.best = est.partition().clone();
            }
        }
        iter += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_greedy(
    design: &Design,
    objectives: &Objectives,
    sup: &mut Supervisor,
    est: &mut IncrementalEstimator<'_>,
    run: &mut Run,
    max_passes: u32,
    mut pass: u32,
    mut current_cost: f64,
) -> Result<StopReason, ExploreError> {
    loop {
        // Boundary: between passes. Probes inside a pass are applied and
        // immediately undone, so at any stop check the estimator sits on
        // the pass-boundary partition; the checkpoint rolls the
        // evaluation counter back to the boundary so a resumed run
        // re-scans the pass and retraces the uninterrupted trajectory.
        if pass >= max_passes {
            return Ok(StopReason::Completed);
        }
        let boundary_evals = run.evaluations;
        if let Some(stop) = sup.check(run.evaluations) {
            if sup.wants_checkpoints() {
                let state = AlgorithmState::Greedy {
                    max_passes,
                    pass,
                    current_cost,
                };
                sup.save_checkpoint(&snapshot(
                    design,
                    run,
                    est.partition(),
                    state,
                    boundary_evals,
                ))?;
            }
            return Ok(stop);
        }
        if sup.tick(run.evaluations, run.best_cost) {
            let state = AlgorithmState::Greedy {
                max_passes,
                pass,
                current_cost,
            };
            sup.save_checkpoint(&snapshot(
                design,
                run,
                est.partition(),
                state,
                boundary_evals,
            ))?;
        }
        let mut best_move: Option<(NodeId, PmRef, f64)> = None;
        for n in design.graph().node_ids() {
            let home = est
                .partition()
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            for target in move_targets(design, n) {
                if target == home {
                    continue;
                }
                if let Some(stop) = sup.check(run.evaluations) {
                    if sup.wants_checkpoints() {
                        let state = AlgorithmState::Greedy {
                            max_passes,
                            pass,
                            current_cost,
                        };
                        sup.save_checkpoint(&snapshot(
                            design,
                            run,
                            est.partition(),
                            state,
                            boundary_evals,
                        ))?;
                    }
                    return Ok(stop);
                }
                est.move_node(n, target)?;
                let c = cost(est, objectives)?;
                run.evaluations += 1;
                est.move_node(n, home)?;
                if c < current_cost && best_move.is_none_or(|(_, _, bc)| c < bc) {
                    best_move = Some((n, target, c));
                }
            }
        }
        match best_move {
            Some((n, target, c)) => {
                est.move_node(n, target)?;
                current_cost = c;
                run.best = est.partition().clone();
                run.best_cost = c;
                pass += 1;
            }
            None => return Ok(StopReason::Completed),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_annealing(
    design: &Design,
    objectives: &Objectives,
    sup: &mut Supervisor,
    est: &mut IncrementalEstimator<'_>,
    run: &mut Run,
    config: AnnealingConfig,
    mut temp: f64,
    mut move_idx: u32,
    mut current: f64,
    rng_state: [u64; 4],
) -> Result<StopReason, ExploreError> {
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();
    let channels: Vec<ChannelId> = design.graph().channel_ids().collect();
    let buses: Vec<BusId> = design.bus_ids().collect();
    let mut rng = StdRng::from_state(rng_state);
    enum Undo {
        Node(NodeId, PmRef),
        Channel(ChannelId, BusId),
    }
    loop {
        // Boundary: between proposals; (temp, move_idx, rng) pin the
        // exact position in the cooling schedule.
        let boundary_rng = rng.state();
        if move_idx == 0 && temp <= config.t_min {
            return Ok(StopReason::Completed);
        }
        if let Some(stop) = sup.check(run.evaluations) {
            if sup.wants_checkpoints() {
                let state = AlgorithmState::Annealing {
                    config,
                    temp,
                    move_idx,
                    current_cost: current,
                    rng: boundary_rng,
                };
                sup.save_checkpoint(&snapshot(
                    design,
                    run,
                    est.partition(),
                    state,
                    run.evaluations,
                ))?;
            }
            return Ok(stop);
        }
        if sup.tick(run.evaluations, run.best_cost) {
            let state = AlgorithmState::Annealing {
                config,
                temp,
                move_idx,
                current_cost: current,
                rng: boundary_rng,
            };
            sup.save_checkpoint(&snapshot(
                design,
                run,
                est.partition(),
                state,
                run.evaluations,
            ))?;
        }
        if config.moves_per_temp == 0 {
            temp *= config.alpha;
            continue;
        }
        'propose: {
            // A quarter of the proposals re-home a channel when the
            // design has several buses to choose from.
            let channel_move = buses.len() > 1 && !channels.is_empty() && rng.gen_bool(0.25);
            let undo = if channel_move {
                let ch = channels[rng.gen_range(0..channels.len())];
                let target = buses[rng.gen_range(0..buses.len())];
                let home = est
                    .partition()
                    .channel_bus(ch)
                    .ok_or(CoreError::UnmappedChannel { channel: ch })?;
                if target == home {
                    break 'propose;
                }
                est.move_channel(ch, target)?;
                Undo::Channel(ch, home)
            } else {
                let n = nodes[rng.gen_range(0..nodes.len())];
                let targets = move_targets(design, n);
                if targets.is_empty() {
                    break 'propose;
                }
                let target = targets[rng.gen_range(0..targets.len())];
                let home = est
                    .partition()
                    .node_component(n)
                    .ok_or(CoreError::UnmappedNode { node: n })?;
                if target == home {
                    break 'propose;
                }
                est.move_node(n, target)?;
                Undo::Node(n, home)
            };
            let c = cost(est, objectives)?;
            run.evaluations += 1;
            let accept = c <= current || rng.gen::<f64>() < ((current - c) / temp).exp();
            if accept {
                current = c;
                if c < run.best_cost {
                    run.best_cost = c;
                    run.best = est.partition().clone();
                }
            } else {
                match undo {
                    Undo::Node(n, home) => {
                        est.move_node(n, home)?;
                    }
                    Undo::Channel(ch, home) => {
                        est.move_channel(ch, home)?;
                    }
                }
            }
        }
        move_idx += 1;
        if move_idx >= config.moves_per_temp {
            move_idx = 0;
            temp *= config.alpha;
        }
    }
}

/// Rolls the estimator back to the state before `trail[keep..]` was
/// applied, using an all-or-nothing [`PartitionTxn`] on a scratch copy:
/// the rewound partition is validated before the estimator adopts it.
fn rewind_trail(
    design: &Design,
    est: &mut IncrementalEstimator<'_>,
    trail: &[(NodeId, PmRef, f64)],
    keep: usize,
) -> Result<(), ExploreError> {
    if keep >= trail.len() {
        return Ok(());
    }
    let mut target = est.partition().clone();
    let mut txn = PartitionTxn::begin(&mut target);
    for &(n, home, _) in trail[keep..].iter().rev() {
        txn.assign_node(n, home)?;
    }
    txn.commit(design)?;
    est.sync_to(&target)?;
    Ok(())
}

/// Best-prefix index and cost of a (possibly partial) pass trail.
fn best_prefix(trail: &[(NodeId, PmRef, f64)], pass_start_cost: f64) -> (Option<usize>, f64) {
    let best_idx = trail
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
        .map(|(i, _)| i);
    let best_cost = best_idx.map_or(pass_start_cost, |i| trail[i].2);
    (best_idx, best_cost)
}

/// Settles an interrupted group-migration pass: keep the best prefix if
/// it gains over the pass start, otherwise undo the whole pass.
fn settle_interrupted_pass(
    design: &Design,
    est: &mut IncrementalEstimator<'_>,
    run: &mut Run,
    trail: &[(NodeId, PmRef, f64)],
    pass_start_cost: f64,
) -> Result<(), ExploreError> {
    let (best_idx, best_prefix_cost) = best_prefix(trail, pass_start_cost);
    if best_prefix_cost < pass_start_cost {
        let keep = best_idx.map_or(0, |i| i + 1);
        rewind_trail(design, est, trail, keep)?;
        if best_prefix_cost < run.best_cost {
            run.best = est.partition().clone();
            run.best_cost = best_prefix_cost;
        }
    } else {
        rewind_trail(design, est, trail, 0)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_group_migration(
    design: &Design,
    objectives: &Objectives,
    sup: &mut Supervisor,
    est: &mut IncrementalEstimator<'_>,
    run: &mut Run,
    max_passes: u32,
    mut pass: u32,
    mut pass_start_cost: f64,
    mut locked: Vec<bool>,
    mut trail: Vec<(NodeId, PmRef, f64)>,
) -> Result<StopReason, ExploreError> {
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();
    loop {
        if pass >= max_passes {
            return Ok(StopReason::Completed);
        }
        // Inner loop: apply (and lock) one best move per round until
        // every node has moved or no candidate remains. The boundary is
        // *between applied moves*: locked + trail + the current
        // partition pin the mid-pass position exactly.
        while trail.len() < nodes.len() {
            let boundary_evals = run.evaluations;
            if let Some(stop) = sup.check(run.evaluations) {
                if sup.wants_checkpoints() {
                    let state = AlgorithmState::GroupMigration {
                        max_passes,
                        pass,
                        pass_start_cost,
                        locked: locked.clone(),
                        trail: trail.clone(),
                    };
                    sup.save_checkpoint(&snapshot(
                        design,
                        run,
                        est.partition(),
                        state,
                        boundary_evals,
                    ))?;
                }
                settle_interrupted_pass(design, est, run, &trail, pass_start_cost)?;
                return Ok(stop);
            }
            if sup.tick(run.evaluations, run.best_cost) {
                let state = AlgorithmState::GroupMigration {
                    max_passes,
                    pass,
                    pass_start_cost,
                    locked: locked.clone(),
                    trail: trail.clone(),
                };
                sup.save_checkpoint(&snapshot(
                    design,
                    run,
                    est.partition(),
                    state,
                    boundary_evals,
                ))?;
            }
            // Best (possibly worsening) move among unlocked nodes.
            let mut best: Option<(NodeId, PmRef, PmRef, f64)> = None;
            for &n in &nodes {
                if locked[n.index()] {
                    continue;
                }
                let home = est
                    .partition()
                    .node_component(n)
                    .ok_or(CoreError::UnmappedNode { node: n })?;
                for target in move_targets(design, n) {
                    if target == home {
                        continue;
                    }
                    if let Some(stop) = sup.check(run.evaluations) {
                        // Probes are undone: the estimator sits on the
                        // last applied-move boundary, and the checkpoint
                        // discards the partial scan's evaluations.
                        if sup.wants_checkpoints() {
                            let state = AlgorithmState::GroupMigration {
                                max_passes,
                                pass,
                                pass_start_cost,
                                locked: locked.clone(),
                                trail: trail.clone(),
                            };
                            sup.save_checkpoint(&snapshot(
                                design,
                                run,
                                est.partition(),
                                state,
                                boundary_evals,
                            ))?;
                        }
                        settle_interrupted_pass(design, est, run, &trail, pass_start_cost)?;
                        return Ok(stop);
                    }
                    est.move_node(n, target)?;
                    let c = cost(est, objectives)?;
                    run.evaluations += 1;
                    est.move_node(n, home)?;
                    if best.is_none_or(|(_, _, _, bc)| c < bc) {
                        best = Some((n, home, target, c));
                    }
                }
            }
            let Some((n, home, target, c)) = best else {
                break;
            };
            est.move_node(n, target)?;
            locked[n.index()] = true;
            trail.push((n, home, c));
        }

        // Roll back to the best prefix of the pass.
        let (best_idx, best_prefix_cost) = best_prefix(&trail, pass_start_cost);
        if best_prefix_cost >= pass_start_cost {
            // No gain: undo the whole pass and stop.
            rewind_trail(design, est, &trail, 0)?;
            return Ok(StopReason::Completed);
        }
        let keep = best_idx.map_or(0, |i| i + 1);
        rewind_trail(design, est, &trail, keep)?;
        pass_start_cost = best_prefix_cost;
        run.best = est.partition().clone();
        run.best_cost = best_prefix_cost;
        pass += 1;
        locked.iter_mut().for_each(|l| *l = false);
        trail.clear();
    }
}

/// Runs `algorithm` under an unlimited supervisor, folding the (then
/// impossible) checkpoint errors into [`CoreError`] for the classic
/// entry points.
fn run_unsupervised(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    algorithm: &Algorithm,
) -> Result<ExplorationResult, CoreError> {
    let mut supervisor = Supervisor::unlimited();
    match explore(design, start, objectives, algorithm, &mut supervisor) {
        Ok(s) => Ok(s.result),
        Err(ExploreError::Core(e)) => Err(e),
        Err(other) => Err(CoreError::InvalidInput {
            message: other.to_string(),
        }),
    }
}

/// Random search: `iterations` random single-node moves, always applied,
/// remembering the best partition seen.
///
/// # Errors
///
/// Propagates estimation errors; the starting partition must be complete.
pub fn random_search(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    iterations: u64,
    seed: u64,
) -> Result<ExplorationResult, CoreError> {
    run_unsupervised(
        design,
        start,
        objectives,
        &Algorithm::RandomSearch { iterations, seed },
    )
}

/// Greedy improvement: repeatedly apply the best single-node move until a
/// full pass yields no improvement (or `max_passes` is hit).
///
/// # Errors
///
/// Propagates estimation errors.
pub fn greedy_improve(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    max_passes: u32,
) -> Result<ExplorationResult, CoreError> {
    run_unsupervised(
        design,
        start,
        objectives,
        &Algorithm::GreedyImprove { max_passes },
    )
}

/// Simulated annealing with Metropolis acceptance.
///
/// The neighborhood covers both mapping dimensions: node-to-component
/// moves always, and channel-to-bus moves (a quarter of proposals) when
/// the design has more than one bus.
///
/// # Errors
///
/// Propagates estimation errors.
pub fn simulated_annealing(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    config: AnnealingConfig,
    seed: u64,
) -> Result<ExplorationResult, CoreError> {
    run_unsupervised(
        design,
        start,
        objectives,
        &Algorithm::SimulatedAnnealing { config, seed },
    )
}

/// Kernighan–Lin-style group migration: in each pass every node is moved
/// once (to its best target) and locked; the pass is then rolled back to
/// its best prefix. Stops when a pass yields no net gain.
///
/// # Errors
///
/// Propagates estimation errors.
pub fn group_migration(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    max_passes: u32,
) -> Result<ExplorationResult, CoreError> {
    run_unsupervised(
        design,
        start,
        objectives,
        &Algorithm::GroupMigration { max_passes },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::CancelToken;
    use slif_core::gen::DesignGenerator;

    fn setup(seed: u64) -> (Design, Partition) {
        DesignGenerator::new(seed)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .buses(1)
            .build()
    }

    fn start_cost(design: &Design, part: &Partition) -> f64 {
        let mut est = IncrementalEstimator::new(design, part.clone()).unwrap();
        cost(&mut est, &Objectives::new()).unwrap()
    }

    #[test]
    fn random_search_never_worsens() {
        let (design, part) = setup(3);
        let c0 = start_cost(&design, &part);
        let r = random_search(&design, part, &Objectives::new(), 200, 7).unwrap();
        assert!(r.cost <= c0);
        assert!(r.evaluations > 1);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn greedy_never_worsens_and_reaches_local_optimum() {
        let (design, part) = setup(4);
        let c0 = start_cost(&design, &part);
        let r = greedy_improve(&design, part, &Objectives::new(), 20).unwrap();
        assert!(r.cost <= c0);
        r.partition.validate(&design).unwrap();
        // Re-running greedy from the result must find nothing better.
        let r2 = greedy_improve(&design, r.partition.clone(), &Objectives::new(), 20).unwrap();
        assert!(r2.cost >= r.cost - 1e-9);
    }

    #[test]
    fn annealing_never_returns_worse_than_start() {
        let (design, part) = setup(5);
        let c0 = start_cost(&design, &part);
        let r = simulated_annealing(
            &design,
            part,
            &Objectives::new(),
            AnnealingConfig {
                t0: 10.0,
                alpha: 0.8,
                moves_per_temp: 32,
                t_min: 0.1,
            },
            11,
        )
        .unwrap();
        assert!(r.cost <= c0);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn group_migration_never_worsens() {
        let (design, part) = setup(6);
        let c0 = start_cost(&design, &part);
        let r = group_migration(&design, part, &Objectives::new(), 4).unwrap();
        assert!(r.cost <= c0, "{} vs {c0}", r.cost);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn algorithms_are_deterministic_per_seed() {
        let (design, part) = setup(7);
        let a = random_search(&design, part.clone(), &Objectives::new(), 100, 1).unwrap();
        let b = random_search(&design, part, &Objectives::new(), 100, 1).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn greedy_beats_or_ties_random_with_same_budget() {
        let (design, part) = setup(8);
        let greedy = greedy_improve(&design, part.clone(), &Objectives::new(), 10).unwrap();
        let random =
            random_search(&design, part, &Objectives::new(), greedy.evaluations, 2).unwrap();
        assert!(greedy.cost <= random.cost * 1.05 + 1e-9);
    }

    #[test]
    fn annealing_explores_bus_assignments_on_multibus_designs() {
        let (design, part) = DesignGenerator::new(12)
            .behaviors(8)
            .variables(6)
            .processors(2)
            .buses(3)
            .build();
        let r = simulated_annealing(
            &design,
            part,
            &Objectives::new(),
            AnnealingConfig {
                t0: 10.0,
                alpha: 0.8,
                moves_per_temp: 64,
                t_min: 0.2,
            },
            21,
        )
        .unwrap();
        r.partition.validate(&design).unwrap();
        // Channels are spread across (or at least legally mapped to) the
        // available buses.
        for c in design.graph().channel_ids() {
            let bus = r.partition.channel_bus(c).unwrap();
            assert!(bus.index() < design.bus_count());
        }
    }

    #[test]
    fn move_targets_respect_behavior_rules() {
        let (design, _) = setup(9);
        let behavior = design.graph().behavior_ids().next().unwrap();
        for pm in move_targets(&design, behavior) {
            assert!(matches!(pm, PmRef::Processor(_)));
        }
        let variable = design.graph().variable_ids().next().unwrap();
        assert!(!move_targets(&design, variable).is_empty());
    }

    #[test]
    fn supervised_run_matches_the_classic_entry_point() {
        let (design, part) = setup(10);
        let classic = random_search(&design, part.clone(), &Objectives::new(), 150, 5).unwrap();
        let mut sup = Supervisor::unlimited();
        let supervised = explore(
            &design,
            part,
            &Objectives::new(),
            &Algorithm::RandomSearch {
                iterations: 150,
                seed: 5,
            },
            &mut sup,
        )
        .unwrap();
        assert_eq!(supervised.stop, StopReason::Completed);
        assert_eq!(supervised.result, classic);
        assert_eq!(supervised.checkpoints_written, 0);
    }

    #[test]
    fn budget_stops_early_with_best_so_far() {
        let (design, part) = setup(11);
        let mut sup = Supervisor::unlimited().with_budget(20);
        let r = explore(
            &design,
            part,
            &Objectives::new(),
            &Algorithm::SimulatedAnnealing {
                config: AnnealingConfig::default(),
                seed: 3,
            },
            &mut sup,
        )
        .unwrap();
        assert_eq!(r.stop, StopReason::BudgetExhausted);
        assert!(r.result.evaluations >= 20);
        r.result.partition.validate(&design).unwrap();
    }

    #[test]
    fn cancellation_stops_every_algorithm() {
        let (design, part) = setup(12);
        let algorithms = [
            Algorithm::RandomSearch {
                iterations: 1_000_000,
                seed: 1,
            },
            Algorithm::GreedyImprove { max_passes: 1000 },
            Algorithm::SimulatedAnnealing {
                config: AnnealingConfig::default(),
                seed: 1,
            },
            Algorithm::GroupMigration { max_passes: 1000 },
        ];
        for alg in algorithms {
            let token = CancelToken::new();
            token.cancel();
            let mut sup = Supervisor::unlimited().with_cancel_token(token);
            let r = explore(&design, part.clone(), &Objectives::new(), &alg, &mut sup).unwrap();
            assert_eq!(r.stop, StopReason::Cancelled, "{alg:?}");
            r.result.partition.validate(&design).unwrap();
        }
    }

    #[test]
    fn deadline_stops_a_long_run() {
        let (design, part) = setup(13);
        let mut sup = Supervisor::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = explore(
            &design,
            part,
            &Objectives::new(),
            &Algorithm::GroupMigration { max_passes: 1000 },
            &mut sup,
        )
        .unwrap();
        assert_eq!(r.stop, StopReason::DeadlineExpired);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_for_random_search() {
        let (design, part) = setup(14);
        let objectives = Objectives::new();
        let alg = Algorithm::RandomSearch {
            iterations: 120,
            seed: 9,
        };
        let full = explore(
            &design,
            part.clone(),
            &objectives,
            &alg,
            &mut Supervisor::unlimited(),
        )
        .unwrap();

        let path = std::env::temp_dir().join("slif-algorithms-resume-random.ckpt");
        let mut sup = Supervisor::unlimited()
            .with_budget(40)
            .with_checkpoints(&path, 10);
        let partial = explore(&design, part, &objectives, &alg, &mut sup).unwrap();
        assert_eq!(partial.stop, StopReason::BudgetExhausted);
        assert!(partial.checkpoints_written > 0);

        let ckpt = ExplorationCheckpoint::load(&path, &design).unwrap();
        let resumed = resume(&design, &objectives, ckpt, &mut Supervisor::unlimited()).unwrap();
        assert_eq!(resumed.stop, StopReason::Completed);
        assert_eq!(resumed.result.partition, full.result.partition);
        assert_eq!(resumed.result.cost.to_bits(), full.result.cost.to_bits());
        assert_eq!(resumed.result.evaluations, full.result.evaluations);
        std::fs::remove_file(&path).unwrap();
    }
}
