//! Partitioning algorithms.
//!
//! SpecSyn "permits rapid exploration of partitions of functionality
//! among processors, ASICs, memories and bus components" and the paper's
//! speed argument exists so that "algorithms that explore thousands of
//! possible designs" stay practical (Section 5). This module provides the
//! classic system-partitioning quartet over SLIF + incremental
//! estimation:
//!
//! * [`random_search`] — uniform random moves, keep the best,
//! * [`greedy_improve`] — steepest-descent single-object moves,
//! * [`simulated_annealing`] — Metropolis acceptance with geometric
//!   cooling,
//! * [`group_migration`] — Kernighan–Lin-style passes with node locking
//!   and best-prefix rollback.

use crate::cost::{cost, Objectives};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slif_core::{CoreError, Design, NodeId, Partition, PmRef};
use slif_estimate::IncrementalEstimator;

/// The outcome of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationResult {
    /// The best partition found.
    pub partition: Partition,
    /// Its cost.
    pub cost: f64,
    /// How many candidate partitions were evaluated.
    pub evaluations: u64,
}

/// All components a node could legally move to.
fn move_targets(design: &Design, n: NodeId) -> Vec<PmRef> {
    let node = design.graph().node(n);
    let mut targets: Vec<PmRef> = Vec::new();
    for pm in design.pm_refs() {
        if node.kind().is_behavior() && matches!(pm, PmRef::Memory(_)) {
            continue;
        }
        let class = design.component_class(pm);
        if node.size().supports(class) && (!node.kind().is_behavior() || node.ict().supports(class))
        {
            targets.push(pm);
        }
    }
    targets
}

/// Random search: `iterations` random single-node moves, always applied,
/// remembering the best partition seen.
///
/// # Errors
///
/// Propagates estimation errors; the starting partition must be complete.
pub fn random_search(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    iterations: u64,
    seed: u64,
) -> Result<ExplorationResult, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut est = IncrementalEstimator::new(design, start)?;
    let mut best_cost = cost(design, &mut est, objectives)?;
    let mut best = est.partition().clone();
    let mut evaluations = 1;
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();
    for _ in 0..iterations {
        let n = nodes[rng.gen_range(0..nodes.len())];
        let targets = move_targets(design, n);
        if targets.is_empty() {
            continue;
        }
        let target = targets[rng.gen_range(0..targets.len())];
        est.move_node(n, target)?;
        let c = cost(design, &mut est, objectives)?;
        evaluations += 1;
        if c < best_cost {
            best_cost = c;
            best = est.partition().clone();
        }
    }
    Ok(ExplorationResult {
        partition: best,
        cost: best_cost,
        evaluations,
    })
}

/// Greedy improvement: repeatedly apply the best single-node move until a
/// full pass yields no improvement (or `max_passes` is hit).
///
/// # Errors
///
/// Propagates estimation errors.
pub fn greedy_improve(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    max_passes: u32,
) -> Result<ExplorationResult, CoreError> {
    let mut est = IncrementalEstimator::new(design, start)?;
    let mut current = cost(design, &mut est, objectives)?;
    let mut evaluations = 1;
    for _ in 0..max_passes {
        let mut best_move: Option<(NodeId, PmRef, f64)> = None;
        for n in design.graph().node_ids() {
            let home = est.partition().node_component(n).expect("complete");
            for target in move_targets(design, n) {
                if target == home {
                    continue;
                }
                est.move_node(n, target)?;
                let c = cost(design, &mut est, objectives)?;
                evaluations += 1;
                est.move_node(n, home)?;
                if c < current && best_move.is_none_or(|(_, _, bc)| c < bc) {
                    best_move = Some((n, target, c));
                }
            }
        }
        match best_move {
            Some((n, target, c)) => {
                est.move_node(n, target)?;
                current = c;
            }
            None => break,
        }
    }
    Ok(ExplorationResult {
        partition: est.into_partition(),
        cost: current,
        evaluations,
    })
}

/// Simulated-annealing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Starting temperature.
    pub t0: f64,
    /// Geometric cooling factor per temperature step.
    pub alpha: f64,
    /// Moves attempted per temperature step.
    pub moves_per_temp: u32,
    /// Stop when the temperature falls below this.
    pub t_min: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            t0: 50.0,
            alpha: 0.9,
            moves_per_temp: 64,
            t_min: 0.05,
        }
    }
}

/// Simulated annealing with Metropolis acceptance.
///
/// The neighborhood covers both mapping dimensions: node-to-component
/// moves always, and channel-to-bus moves (a quarter of proposals) when
/// the design has more than one bus.
///
/// # Errors
///
/// Propagates estimation errors.
pub fn simulated_annealing(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    config: AnnealingConfig,
    seed: u64,
) -> Result<ExplorationResult, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut est = IncrementalEstimator::new(design, start)?;
    let mut current = cost(design, &mut est, objectives)?;
    let mut best_cost = current;
    let mut best = est.partition().clone();
    let mut evaluations = 1;
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();

    let channels: Vec<slif_core::ChannelId> = design.graph().channel_ids().collect();
    let buses: Vec<slif_core::BusId> = design.bus_ids().collect();
    let mut temp = config.t0;
    while temp > config.t_min {
        for _ in 0..config.moves_per_temp {
            // A quarter of the proposals re-home a channel when the
            // design has several buses to choose from.
            let channel_move = buses.len() > 1 && !channels.is_empty() && rng.gen_bool(0.25);
            enum Undo {
                Node(NodeId, PmRef),
                Channel(slif_core::ChannelId, slif_core::BusId),
            }
            let undo = if channel_move {
                let ch = channels[rng.gen_range(0..channels.len())];
                let target = buses[rng.gen_range(0..buses.len())];
                let home = est.partition().channel_bus(ch).expect("complete");
                if target == home {
                    continue;
                }
                est.move_channel(ch, target)?;
                Undo::Channel(ch, home)
            } else {
                let n = nodes[rng.gen_range(0..nodes.len())];
                let targets = move_targets(design, n);
                if targets.is_empty() {
                    continue;
                }
                let target = targets[rng.gen_range(0..targets.len())];
                let home = est.partition().node_component(n).expect("complete");
                if target == home {
                    continue;
                }
                est.move_node(n, target)?;
                Undo::Node(n, home)
            };
            let c = cost(design, &mut est, objectives)?;
            evaluations += 1;
            let accept = c <= current || rng.gen::<f64>() < ((current - c) / temp).exp();
            if accept {
                current = c;
                if c < best_cost {
                    best_cost = c;
                    best = est.partition().clone();
                }
            } else {
                match undo {
                    Undo::Node(n, home) => {
                        est.move_node(n, home)?;
                    }
                    Undo::Channel(ch, home) => {
                        est.move_channel(ch, home)?;
                    }
                }
            }
        }
        temp *= config.alpha;
    }
    Ok(ExplorationResult {
        partition: best,
        cost: best_cost,
        evaluations,
    })
}

/// Kernighan–Lin-style group migration: in each pass every node is moved
/// once (to its best target) and locked; the pass is then rolled back to
/// its best prefix. Stops when a pass yields no net gain.
///
/// # Errors
///
/// Propagates estimation errors.
pub fn group_migration(
    design: &Design,
    start: Partition,
    objectives: &Objectives,
    max_passes: u32,
) -> Result<ExplorationResult, CoreError> {
    let mut est = IncrementalEstimator::new(design, start)?;
    let mut pass_start_cost = cost(design, &mut est, objectives)?;
    let mut evaluations = 1;
    let nodes: Vec<NodeId> = design.graph().node_ids().collect();

    for _ in 0..max_passes {
        let mut locked = vec![false; design.graph().node_count()];
        // The sequence of applied moves: (node, from, cost-after).
        let mut trail: Vec<(NodeId, PmRef, f64)> = Vec::new();
        let mut current = pass_start_cost;

        for _ in 0..nodes.len() {
            // Best (possibly worsening) move among unlocked nodes.
            let mut best: Option<(NodeId, PmRef, PmRef, f64)> = None;
            for &n in &nodes {
                if locked[n.index()] {
                    continue;
                }
                let home = est.partition().node_component(n).expect("complete");
                for target in move_targets(design, n) {
                    if target == home {
                        continue;
                    }
                    est.move_node(n, target)?;
                    let c = cost(design, &mut est, objectives)?;
                    evaluations += 1;
                    est.move_node(n, home)?;
                    if best.is_none_or(|(_, _, _, bc)| c < bc) {
                        best = Some((n, home, target, c));
                    }
                }
            }
            let Some((n, home, target, c)) = best else {
                break;
            };
            est.move_node(n, target)?;
            locked[n.index()] = true;
            trail.push((n, home, c));
            current = c;
        }
        let _ = current;

        // Roll back to the best prefix of the pass.
        let best_idx = trail
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
            .map(|(i, _)| i);
        let best_prefix_cost = best_idx.map(|i| trail[i].2).unwrap_or(pass_start_cost);
        if best_prefix_cost >= pass_start_cost {
            // No gain: undo the whole pass and stop.
            for &(n, home, _) in trail.iter().rev() {
                est.move_node(n, home)?;
            }
            break;
        }
        let keep = best_idx.expect("gain implies a move") + 1;
        for &(n, home, _) in trail[keep..].iter().rev() {
            est.move_node(n, home)?;
        }
        pass_start_cost = best_prefix_cost;
    }
    Ok(ExplorationResult {
        partition: est.into_partition(),
        cost: pass_start_cost,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    fn setup(seed: u64) -> (Design, Partition) {
        DesignGenerator::new(seed)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .buses(1)
            .build()
    }

    fn start_cost(design: &Design, part: &Partition) -> f64 {
        let mut est = IncrementalEstimator::new(design, part.clone()).unwrap();
        cost(design, &mut est, &Objectives::new()).unwrap()
    }

    #[test]
    fn random_search_never_worsens() {
        let (design, part) = setup(3);
        let c0 = start_cost(&design, &part);
        let r = random_search(&design, part, &Objectives::new(), 200, 7).unwrap();
        assert!(r.cost <= c0);
        assert!(r.evaluations > 1);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn greedy_never_worsens_and_reaches_local_optimum() {
        let (design, part) = setup(4);
        let c0 = start_cost(&design, &part);
        let r = greedy_improve(&design, part, &Objectives::new(), 20).unwrap();
        assert!(r.cost <= c0);
        r.partition.validate(&design).unwrap();
        // Re-running greedy from the result must find nothing better.
        let r2 = greedy_improve(&design, r.partition.clone(), &Objectives::new(), 20).unwrap();
        assert!(r2.cost >= r.cost - 1e-9);
    }

    #[test]
    fn annealing_never_returns_worse_than_start() {
        let (design, part) = setup(5);
        let c0 = start_cost(&design, &part);
        let r = simulated_annealing(
            &design,
            part,
            &Objectives::new(),
            AnnealingConfig {
                t0: 10.0,
                alpha: 0.8,
                moves_per_temp: 32,
                t_min: 0.1,
            },
            11,
        )
        .unwrap();
        assert!(r.cost <= c0);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn group_migration_never_worsens() {
        let (design, part) = setup(6);
        let c0 = start_cost(&design, &part);
        let r = group_migration(&design, part, &Objectives::new(), 4).unwrap();
        assert!(r.cost <= c0, "{} vs {c0}", r.cost);
        r.partition.validate(&design).unwrap();
    }

    #[test]
    fn algorithms_are_deterministic_per_seed() {
        let (design, part) = setup(7);
        let a = random_search(&design, part.clone(), &Objectives::new(), 100, 1).unwrap();
        let b = random_search(&design, part, &Objectives::new(), 100, 1).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn greedy_beats_or_ties_random_with_same_budget() {
        let (design, part) = setup(8);
        let greedy = greedy_improve(&design, part.clone(), &Objectives::new(), 10).unwrap();
        let random =
            random_search(&design, part, &Objectives::new(), greedy.evaluations, 2).unwrap();
        assert!(greedy.cost <= random.cost * 1.05 + 1e-9);
    }

    #[test]
    fn annealing_explores_bus_assignments_on_multibus_designs() {
        let (design, part) = DesignGenerator::new(12)
            .behaviors(8)
            .variables(6)
            .processors(2)
            .buses(3)
            .build();
        let r = simulated_annealing(
            &design,
            part,
            &Objectives::new(),
            AnnealingConfig {
                t0: 10.0,
                alpha: 0.8,
                moves_per_temp: 64,
                t_min: 0.2,
            },
            21,
        )
        .unwrap();
        r.partition.validate(&design).unwrap();
        // Channels are spread across (or at least legally mapped to) the
        // available buses.
        for c in design.graph().channel_ids() {
            let bus = r.partition.channel_bus(c).unwrap();
            assert!(bus.index() < design.bus_count());
        }
    }

    #[test]
    fn move_targets_respect_behavior_rules() {
        let (design, _) = setup(9);
        let behavior = design.graph().behavior_ids().next().unwrap();
        for pm in move_targets(&design, behavior) {
            assert!(matches!(pm, PmRef::Processor(_)));
        }
        let variable = design.graph().variable_ids().next().unwrap();
        assert!(!move_targets(&design, variable).is_empty());
    }
}
