//! The partition cost function.
//!
//! The goal of allocation/partitioning/transformation is "a design that
//! satisfies constraints on design metrics" (Section 1). The cost function
//! scores a candidate partition as a weighted sum of normalized constraint
//! violations — execution time against per-process deadlines, component
//! sizes and pins against their declared constraints — plus a small
//! pressure term on total execution time so that search keeps improving
//! performance once feasible.

use slif_core::{CoreError, NodeId};
use slif_estimate::Evaluator;

/// Objectives and weights for partition scoring.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_explore::Objectives;
///
/// let (design, _) = DesignGenerator::new(0).build();
/// let main = design.graph().behavior_ids().next().unwrap();
/// let obj = Objectives::new().with_deadline(main, 1_000_000.0);
/// assert_eq!(obj.deadlines().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Objectives {
    deadlines: Vec<(NodeId, f64)>,
    /// Weight of deadline violations.
    pub wt_time: f64,
    /// Weight of size-constraint violations.
    pub wt_size: f64,
    /// Weight of pin-constraint violations.
    pub wt_pins: f64,
    /// Weight of the total-execution-time pressure term.
    pub wt_perf: f64,
    /// Divisor applied to the summed process execution times when **no
    /// deadlines** are set, bringing the pressure term into the same
    /// order of magnitude as a normalized deadline ratio. With deadlines,
    /// the sum is normalized by the deadline budget instead and this
    /// field is unused. Raise it to make exploration care less about raw
    /// performance on undeadlined designs; lower it to care more.
    pub perf_scale: f64,
}

impl Objectives {
    /// Default [`perf_scale`](Self::perf_scale): execution times are in
    /// technology-library time units (the corpus uses nanosecond-scale
    /// units), so a billion units — one second of work — contributes a
    /// pressure of `wt_perf × 1.0`, comparable to a 100% deadline
    /// overshoot contribution under default weights.
    pub const DEFAULT_PERF_SCALE: f64 = 1.0e9;

    /// Creates objectives with default weights (violations dominate the
    /// performance pressure term by orders of magnitude).
    pub fn new() -> Self {
        Self {
            deadlines: Vec::new(),
            wt_time: 100.0,
            wt_size: 100.0,
            wt_pins: 100.0,
            wt_perf: 1.0,
            perf_scale: Self::DEFAULT_PERF_SCALE,
        }
    }

    /// Adds an execution-time constraint for a process.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] (carrying the rejected value, the
    /// objectives unchanged) unless `deadline` is positive and finite.
    pub fn try_with_deadline(
        mut self,
        process: NodeId,
        deadline: f64,
    ) -> Result<Self, CoreError> {
        if !(deadline.is_finite() && deadline > 0.0) {
            return Err(CoreError::InvalidInput {
                message: format!("deadline {deadline} for {process} must be positive and finite"),
            });
        }
        self.deadlines.push((process, deadline));
        Ok(self)
    }

    /// [`try_with_deadline`](Self::try_with_deadline), panicking on a bad
    /// value — the convenient form for statically known deadlines.
    ///
    /// # Panics
    ///
    /// Panics unless `deadline` is positive and finite.
    pub fn with_deadline(self, process: NodeId, deadline: f64) -> Self {
        match self.try_with_deadline(process, deadline) {
            Ok(obj) => obj,
            Err(e) => panic!("{e}"),
        }
    }

    /// The per-process deadlines.
    pub fn deadlines(&self) -> &[(NodeId, f64)] {
        &self.deadlines
    }
}

impl Default for Objectives {
    fn default() -> Self {
        Self::new()
    }
}

/// Evaluates the cost of the evaluator's current partition. Lower is
/// better; a cost below `objectives.wt_time.min(wt_size).min(wt_pins)`
/// generally means no constraint is violated.
///
/// Works over any [`Evaluator`] — the cached
/// [`IncrementalEstimator`](slif_estimate::IncrementalEstimator) in
/// exploration loops, or the from-scratch
/// [`FullEstimator`](slif_estimate::FullEstimator) when an uncached
/// oracle is wanted. Everything it needs beyond the metrics (process
/// list, constraints) comes off the evaluator's compiled view.
///
/// # Errors
///
/// Propagates estimation errors (unmapped objects, missing weights,
/// recursion).
pub fn cost<E: Evaluator>(est: &mut E, objectives: &Objectives) -> Result<f64, CoreError> {
    let mut total = 0.0;

    // Deadline violations, normalized by the deadline.
    let mut perf_sum = 0.0;
    let mut perf_norm = 0.0;
    for &(process, deadline) in &objectives.deadlines {
        let t = est.exec_time(process)?;
        if t > deadline {
            total += objectives.wt_time * (t - deadline) / deadline;
        }
        perf_sum += t;
        perf_norm += deadline;
    }
    // Performance pressure: total process time relative to the deadline
    // budget (or raw, scaled down, when no deadlines are set).
    if perf_norm > 0.0 {
        total += objectives.wt_perf * perf_sum / perf_norm;
    } else {
        let mut sum = 0.0;
        for i in 0..est.compiled().process_nodes().len() {
            let n = est.compiled().process_nodes()[i];
            sum += est.exec_time(n)?;
        }
        total += objectives.wt_perf * sum / objectives.perf_scale;
    }

    // Size violations, normalized by the constraint.
    for i in 0..est.compiled().pm_count() {
        let pm = est.compiled().pm_of_index(i);
        if let Some(max) = est.compiled().size_constraint(pm) {
            let used = est.size(pm)?;
            if used > max {
                total += objectives.wt_size * (used - max) as f64 / max.max(1) as f64;
            }
        }
    }

    // Pin violations, normalized by the constraint.
    for p in est.compiled().processor_ids() {
        if let Some(max) = est.compiled().pin_constraint(p) {
            let pins = est.pins(p)?;
            if pins > max {
                total += objectives.wt_pins * f64::from(pins - max) / f64::from(max.max(1));
            }
        }
    }

    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;
    use slif_core::{Bus, ClassKind, Design, NodeKind, Partition, Processor};
    use slif_estimate::IncrementalEstimator;

    #[test]
    fn feasible_partition_costs_little() {
        let (design, part) = DesignGenerator::new(1).build();
        let mut est = IncrementalEstimator::new(&design, part).unwrap();
        let c = cost(&mut est, &Objectives::new()).unwrap();
        // No constraints in the generated design: only the pressure term.
        assert!(c >= 0.0);
        assert!(c.is_finite());
        assert!(c < 100.0, "cost {c}");
    }

    #[test]
    fn deadline_violation_raises_cost() {
        let (design, part) = DesignGenerator::new(2).build();
        let process = design
            .graph()
            .node_ids()
            .find(|&n| design.graph().node(n).kind().is_process())
            .unwrap();
        let mut est = IncrementalEstimator::new(&design, part).unwrap();
        let t = est.exec_time(process).unwrap();
        let loose = Objectives::new().try_with_deadline(process, t * 2.0).unwrap();
        let tight = Objectives::new().try_with_deadline(process, t / 2.0).unwrap();
        let c_loose = cost(&mut est, &loose).unwrap();
        let c_tight = cost(&mut est, &tight).unwrap();
        assert!(c_tight > c_loose + 50.0, "{c_tight} vs {c_loose}");
    }

    #[test]
    fn size_violation_raises_cost() {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        d.graph_mut().node_mut(a).ict_mut().set(pc, 10);
        d.graph_mut().node_mut(a).size_mut().set(pc, 1000);
        let tight = d.add_processor_instance(Processor::new("tight", pc).with_size_constraint(100));
        d.add_bus(Bus::new("b", 8, 1, 2));
        let mut part = Partition::new(&d);
        part.assign_node(a, tight.into());
        let mut est = IncrementalEstimator::new(&d, part).unwrap();
        let c = cost(&mut est, &Objectives::new()).unwrap();
        // 900/100 * 100 = 900 from the size violation.
        assert!(c >= 900.0, "cost {c}");
    }

    #[test]
    fn bad_deadline_rejected_with_value() {
        for bad in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let err = Objectives::new()
                .try_with_deadline(NodeId::from_raw(0), bad)
                .unwrap_err();
            assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
            assert!(err.to_string().contains("deadline"), "{err}");
        }
        assert_eq!(
            Objectives::new()
                .try_with_deadline(NodeId::from_raw(0), 5.0)
                .unwrap()
                .deadlines()
                .len(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn panicking_builder_still_guards() {
        let _ = Objectives::new().with_deadline(NodeId::from_raw(0), 0.0);
    }
}
