//! # slif-frontend — building SLIF from specifications
//!
//! The front end of the flow: a behavioural specification (parsed and
//! resolved by `slif-speclang`) plus a technology library
//! (`slif-techlib`) become a fully annotated SLIF design (`slif-core`),
//! ready for allocation, partitioning, and estimation. This is the step
//! the paper's Figure 4 times as "T-slif" — run once at tool start-up.
//!
//! * [`build_design`] / [`build_from_source`] — construct the access
//!   graph, profile access frequencies (inline `prob`/`iters` or an
//!   external [`Profile`]), compute per-access bits, pre-compile and
//!   pre-synthesize every behavior for every component class, and tag
//!   fork-concurrent channels,
//! * [`build_design_at`] — the paper's granularity knob: the same flow
//!   with every basic block as its own node,
//! * [`allocate_proc_asic`] / [`all_software_partition`] — the paper's
//!   running processor–ASIC target architecture and its natural starting
//!   partition.
//!
//! # Examples
//!
//! ```
//! use slif_frontend::{allocate_proc_asic, all_software_partition, build_design};
//! use slif_techlib::TechnologyLibrary;
//!
//! let entry = slif_speclang::corpus::by_name("fuzzy").unwrap();
//! let rs = entry.load()?;
//! let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
//! let arch = allocate_proc_asic(&mut design);
//! let partition = all_software_partition(&design, arch);
//! partition.validate(&design)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
mod build;
mod cache;
mod granularity;
mod profile;

pub use bits::{call_bits, expr_bits, object_access_bits, try_object_access_bits, UnknownObjectError};
pub use build::{
    all_software_partition, allocate_proc_asic, build_design, build_design_with,
    build_from_source, try_allocate_proc_asic, BuildOptions, MissingClassError,
    ProcAsicArchitecture,
};
pub use cache::{build_design_cached, try_patch_design, BuildCache};
pub use granularity::{block_node_name, build_design_at, Granularity};
pub use profile::{ParseProfileError, Profile, ProfileValueError};
