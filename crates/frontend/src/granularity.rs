//! Basic-block granularity SLIF construction.
//!
//! "A behavior is a process or procedure in the specification; finer
//! granularity can be obtained by treating basic blocks as procedures"
//! (Section 2.2). This module implements that knob: every CDFG basic
//! block becomes its own SLIF behavior node, pre-compiled and
//! pre-synthesized individually, so partitioners can split a single
//! procedure's hot loop away from its cold paths.
//!
//! Structure: each behavior's entry block keeps the behavior's name (and
//! its process flag); the other blocks become procedures named
//! `{behavior}.bb{k}`. Control structure is modelled by the
//! immediate-dominator tree — block `L` is "called" by `idom(L)` with
//! frequency `count(L) / count(idom(L))` — which is acyclic by
//! construction and telescopes to the same total internal computation
//! time the behavior-level node carries.

use crate::bits::object_access_bits;
use slif_cdfg::{immediate_dominators, lower_spec, BlockId, Cdfg, ExecCount, OpKind};
use slif_core::{
    AccessFreq, AccessKind, AccessTarget, ClassId, ClassKind, Design, NodeId, NodeKind,
    PortDirection, WeightEntry,
};
use slif_speclang::ast::{BehaviorKind, Direction};
use slif_speclang::ResolvedSpec;
use slif_techlib::{compile_behavior, synthesize_behavior, TechnologyLibrary};

/// How coarse the access-graph nodes are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One node per process/procedure (the paper's default).
    #[default]
    Behavior,
    /// One node per basic block ("treating basic blocks as procedures").
    BasicBlock,
}

/// Builds a design at the requested granularity.
///
/// At [`Granularity::Behavior`] this is exactly
/// [`build_design`](crate::build_design).
pub fn build_design_at(
    rs: &ResolvedSpec,
    lib: &TechnologyLibrary,
    granularity: Granularity,
) -> Design {
    match granularity {
        Granularity::Behavior => crate::build_design(rs, lib),
        Granularity::BasicBlock => build_block_design(rs, lib),
    }
}

fn build_block_design(rs: &ResolvedSpec, lib: &TechnologyLibrary) -> Design {
    let spec = rs.spec();
    let mut d = Design::new(format!("{}@bb", spec.name));

    let proc_classes: Vec<ClassId> = lib
        .processors
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::StdProcessor))
        .collect();
    let asic_classes: Vec<ClassId> = lib
        .asics
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::CustomHw))
        .collect();
    let mem_classes: Vec<ClassId> = lib
        .memories
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::Memory))
        .collect();

    for p in &spec.ports {
        let dir = match p.direction {
            Direction::In => PortDirection::In,
            Direction::Out => PortDirection::Out,
            Direction::Inout => PortDirection::InOut,
        };
        d.graph_mut().add_port(&p.name, dir, p.ty.access_bits());
    }

    let cdfgs = lower_spec(rs);

    // Nodes: one per block of every behavior; weights from a single-block
    // sub-CDFG through the same pseudo-compiler/synthesizer.
    let mut block_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(cdfgs.len());
    for (bi, g) in cdfgs.iter().enumerate() {
        let is_process = spec.behaviors[bi].kind == BehaviorKind::Process;
        let mut nodes = Vec::with_capacity(g.block_count());
        for block in g.block_ids() {
            let name = block_node_name(g.name(), block);
            let kind = if block == g.entry() && is_process {
                NodeKind::process()
            } else {
                NodeKind::procedure()
            };
            let node = d.graph_mut().add_node(name, kind);
            let sub = single_block_cdfg(g, block);
            for (model, &class) in lib.processors.iter().zip(&proc_classes) {
                let w = compile_behavior(&sub, model);
                d.graph_mut().node_mut(node).ict_mut().set(class, w.ict);
                d.graph_mut().node_mut(node).size_mut().set(class, w.size);
            }
            for (model, &class) in lib.asics.iter().zip(&asic_classes) {
                let r = synthesize_behavior(&sub, model);
                d.graph_mut()
                    .node_mut(node)
                    .ict_mut()
                    .set(class, r.weights.ict);
                let entry = match r.weights.datapath {
                    Some(dp) => WeightEntry::with_datapath(class, r.weights.size, dp),
                    None => WeightEntry::new(class, r.weights.size),
                };
                d.graph_mut().node_mut(node).size_mut().insert(entry);
            }
            nodes.push(node);
        }
        block_nodes.push(nodes);
    }

    // Variables, with weights for every class.
    for v in &spec.vars {
        let (words, word_bits) = v.ty.storage();
        let node = d
            .graph_mut()
            .add_node(&v.name, NodeKind::array(words, word_bits));
        for (model, &class) in lib.processors.iter().zip(&proc_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
        for (model, &class) in lib.asics.iter().zip(&asic_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
        for (model, &class) in lib.memories.iter().zip(&mem_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
    }

    // Channels.
    for (bi, g) in cdfgs.iter().enumerate() {
        let idom = immediate_dominators(g);
        // Dominator-tree control edges.
        for block in g.block_ids() {
            if block == g.entry() {
                continue;
            }
            let parent = idom[block.index()];
            let src = block_nodes[bi][parent.index()];
            let dst = block_nodes[bi][block.index()];
            let c = d
                .graph_mut()
                .add_or_merge_channel(src, dst.into(), AccessKind::Call)
                .expect("block nodes are behaviors");
            let freq = control_freq(g.block(parent).count, g.block(block).count);
            let ch = d.graph_mut().channel_mut(c);
            *ch.freq_mut() = freq;
            ch.set_bits(1);
        }
        // Per-block system accesses (each op runs once per block run).
        for block in g.block_ids() {
            let src = block_nodes[bi][block.index()];
            for &op in &g.block(block).ops {
                let kind = &g.op(op).kind;
                let (target, akind): (String, AccessKind) = match kind {
                    OpKind::ReadGlobal(n) | OpKind::ReadGlobalArray(n) => {
                        (n.clone(), AccessKind::Read)
                    }
                    OpKind::WriteGlobal(n) | OpKind::WriteGlobalArray(n) => {
                        (n.clone(), AccessKind::Write)
                    }
                    OpKind::ReadPort(n) => (n.clone(), AccessKind::Read),
                    OpKind::WritePort(n) => (n.clone(), AccessKind::Write),
                    OpKind::Call(n) => (n.clone(), AccessKind::Call),
                    OpKind::SendMsg(n) => (n.clone(), AccessKind::Message),
                    _ => continue,
                };
                let dst: AccessTarget = if let Some(n) = d.graph().node_by_name(&target) {
                    n.into()
                } else if let Some(p) = d.graph().port_by_name(&target) {
                    p.into()
                } else {
                    // Unresolvable name (possible on a partially recovered
                    // spec): skip this access rather than abort the build.
                    continue;
                };
                let bits = match kind {
                    OpKind::SendMsg(_) => crate::build::message_bits(rs, bi, &target),
                    _ => object_access_bits(rs, &target).unwrap_or(1),
                };
                let Ok(c) = d.graph_mut().add_or_merge_channel(src, dst, akind) else {
                    continue;
                };
                let ch = d.graph_mut().channel_mut(c);
                // First touch: replace the defaults; later: accumulate.
                if ch.freq() == AccessFreq::default() && ch.bits() == 1 {
                    *ch.freq_mut() = AccessFreq::exact(1);
                    ch.set_bits(bits);
                } else {
                    let f = ch.freq();
                    *ch.freq_mut() = AccessFreq::new(f.avg + 1.0, f.min + 1, f.max + 1);
                    ch.set_bits(ch.bits().max(bits));
                }
            }
        }
    }
    d
}

/// Extracts one block of `g` as a standalone single-block CDFG whose
/// entry runs exactly once — the unit the pseudo-compiler and
/// pseudo-synthesizer cost to get per-execution block weights.
fn single_block_cdfg(g: &Cdfg, block: BlockId) -> Cdfg {
    let mut sub = Cdfg::new(block_node_name(g.name(), block));
    let entry = sub.entry();
    let ops = &g.block(block).ops;
    // Old op id → new op id, for intra-block dataflow.
    let mut map = std::collections::HashMap::with_capacity(ops.len());
    for &op in ops {
        let node = g.op(op);
        let inputs = node
            .inputs
            .iter()
            .filter_map(|i| map.get(i).copied())
            .collect();
        let new = sub.add_op(entry, node.kind.clone(), inputs);
        map.insert(op, new);
    }
    sub
}

/// Name of a block's node: the behavior's own name for the entry block,
/// `{behavior}.bb{k}` otherwise.
pub fn block_node_name(behavior: &str, block: BlockId) -> String {
    if block.index() == 0 {
        behavior.to_owned()
    } else {
        format!("{behavior}.bb{}", block.index())
    }
}

/// Frequency of the dominator-tree edge `parent → child`:
/// `count(child) / count(parent)` on average, with a conservative
/// `[0, count(child).max]` envelope.
fn control_freq(parent: ExecCount, child: ExecCount) -> AccessFreq {
    let avg = if parent.avg > 0.0 {
        child.avg / parent.avg
    } else {
        0.0
    };
    // The ratio can exceed the child's own max when the parent executes
    // fractionally (nested improbable branches); widen the envelope so
    // the annotation stays consistent.
    let max = child.max.max(1).max(avg.ceil() as u64);
    AccessFreq::new(avg, 0, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_software_partition, allocate_proc_asic};
    use slif_estimate::ExecTimeEstimator;
    use slif_speclang::{corpus, parse_and_resolve};

    #[test]
    fn block_granularity_multiplies_node_count() {
        let rs = corpus::by_name("fuzzy").unwrap().load().unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let coarse = build_design_at(&rs, &lib, Granularity::Behavior);
        let fine = build_design_at(&rs, &lib, Granularity::BasicBlock);
        assert!(
            fine.graph().node_count() > 2 * coarse.graph().node_count(),
            "{} vs {}",
            fine.graph().node_count(),
            coarse.graph().node_count()
        );
        // Entry blocks keep the behavior names; the process flag survives.
        let main = fine.graph().node_by_name("FuzzyMain").unwrap();
        assert!(fine.graph().node(main).kind().is_process());
        assert!(fine.graph().node_by_name("EvaluateRule.bb1").is_some());
    }

    #[test]
    fn block_design_is_acyclic_and_estimable() {
        let rs = corpus::by_name("fuzzy").unwrap().load().unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let mut fine = build_design_at(&rs, &lib, Granularity::BasicBlock);
        assert_eq!(fine.graph().find_recursion(), None);
        let arch = allocate_proc_asic(&mut fine);
        let part = all_software_partition(&fine, arch);
        part.validate(&fine).unwrap();
        let main = fine.graph().node_by_name("FuzzyMain").unwrap();
        let t = ExecTimeEstimator::new(&fine, &part)
            .exec_time(main)
            .unwrap();
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn block_and_behavior_estimates_agree_in_shape() {
        // The dominator-tree decomposition telescopes block ict back to
        // the behavior total; transfer overhead on control edges adds a
        // bounded premium.
        let rs = parse_and_resolve(
            "system T;\nport o : out int<16>;\nvar a : int<8>[64];\nvar s : int<16>;\n\
             process Main {\n\
               for i in 0 .. 63 { a[i] = i * 3; }\n\
               s = 0;\n\
               for i in 0 .. 63 { if s < 100 prob 0.5 { s = s + a[i]; } }\n\
               o = s;\n\
             }",
        )
        .unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let time_at = |granularity| {
            let mut d = build_design_at(&rs, &lib, granularity);
            let arch = allocate_proc_asic(&mut d);
            let part = all_software_partition(&d, arch);
            ExecTimeEstimator::new(&d, &part)
                .exec_time(d.graph().node_by_name("Main").unwrap())
                .unwrap()
        };
        let coarse = time_at(Granularity::Behavior);
        let fine = time_at(Granularity::BasicBlock);
        assert!(
            fine >= coarse * 0.75 && fine <= coarse * 1.5,
            "coarse {coarse} vs fine {fine}"
        );
    }

    #[test]
    fn splitting_a_hot_block_to_hardware_pays_off() {
        // The point of the knob: at block granularity a partitioner can
        // move just the hot loop of a behavior to the ASIC.
        let rs = parse_and_resolve(
            "system T;\nport o : out int<16>;\nvar a : int<8>[128];\nvar s : int<16>;\n\
             process Main {\n\
               s = s + 1;\n\
               for i in 0 .. 127 { a[i] = a[i] * 3 + i; }\n\
               o = s;\n\
             }",
        )
        .unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let mut d = build_design_at(&rs, &lib, Granularity::BasicBlock);
        let arch = allocate_proc_asic(&mut d);
        let sw = all_software_partition(&d, arch);
        let main = d.graph().node_by_name("Main").unwrap();
        let t_sw = ExecTimeEstimator::new(&d, &sw).exec_time(main).unwrap();
        // Move the loop body block (and the array it hammers) to hardware.
        let hot = d.graph().node_by_name("Main.bb1").unwrap();
        let arr = d.graph().node_by_name("a").unwrap();
        let mut hw = sw.clone();
        hw.assign_node(hot, slif_core::PmRef::Processor(arch.asic));
        hw.assign_node(arr, slif_core::PmRef::Processor(arch.asic));
        let t_hw = ExecTimeEstimator::new(&d, &hw).exec_time(main).unwrap();
        assert!(t_hw < t_sw, "hot-block offload: {t_hw} vs {t_sw}");
    }

    #[test]
    fn block_granularity_annotations_are_consistent() {
        let lib = TechnologyLibrary::proc_asic();
        for entry in corpus::all() {
            let rs = entry.load().unwrap();
            let d = build_design_at(&rs, &lib, Granularity::BasicBlock);
            for c in d.graph().channel_ids() {
                let ch = d.graph().channel(c);
                assert!(
                    ch.freq().is_consistent(),
                    "{}: {}",
                    entry.name,
                    ch
                );
                assert!(ch.bits() > 0);
            }
        }
    }

    #[test]
    fn every_corpus_system_builds_at_block_granularity() {
        let lib = TechnologyLibrary::proc_asic();
        for entry in corpus::all() {
            let rs = entry.load().unwrap();
            let mut d = build_design_at(&rs, &lib, Granularity::BasicBlock);
            assert_eq!(d.graph().find_recursion(), None, "{}", entry.name);
            let arch = allocate_proc_asic(&mut d);
            let part = all_software_partition(&d, arch);
            part.validate(&d)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let report = slif_estimate::DesignReport::compute(&d, &part)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(!report.processes.is_empty());
        }
    }
}
