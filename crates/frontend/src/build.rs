//! SLIF construction: resolved specification → annotated design.
//!
//! This is the paper's "T-slif" step (Figure 4): performed once when the
//! system-design tool starts, it creates the access graph, computes every
//! channel's access frequency and bit count, and pre-compiles /
//! pre-synthesizes every behavior against every component class in the
//! technology library so that all later estimation is lookup-and-sum.

use crate::bits::{expr_bits, object_access_bits};
use slif_cdfg::{access_frequencies, lower_spec, Access, Cdfg, OpKind};
use slif_core::{
    AccessFreq, AccessKind, AccessTarget, Bus, BusId, ClassId, ClassKind, ConcurrencyTag, Design,
    MemoryId, NodeKind, Partition, PmRef, PortDirection, ProcessorId, WeightEntry,
};
use slif_speclang::ast::{BehaviorKind, Direction, Stmt};
use slif_speclang::{ResolvedSpec, SpecError};
use slif_techlib::{compile_behavior, synthesize_behavior, TechnologyLibrary};

/// Builds a fully annotated SLIF design from a resolved specification and
/// a technology library.
///
/// Each library model becomes a component class; every behavior node gets
/// an `ict`/`size` weight per processor and custom-hardware class, every
/// variable node per class including memories. Channels carry profiled
/// `accfreq` (average/min/max), bits per access, and fork-derived
/// concurrency tags.
///
/// # Examples
///
/// ```
/// use slif_frontend::build_design;
/// use slif_techlib::TechnologyLibrary;
///
/// let rs = slif_speclang::parse_and_resolve(
///     "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }",
/// )?;
/// let design = build_design(&rs, &TechnologyLibrary::proc_asic());
/// assert_eq!(design.graph().node_count(), 2);
/// assert_eq!(design.graph().channel_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_design(rs: &ResolvedSpec, lib: &TechnologyLibrary) -> Design {
    build_design_with(rs, lib, &BuildOptions::default())
}

/// Options for SLIF construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BuildOptions {
    /// Derive concurrency tags from the ASIC schedule as well as from
    /// `fork` blocks: "such information can be estimated by scheduling the
    /// contents of the behavior ... we therefore create the channel tags
    /// from that schedule" (Section 2.4.1). Accesses to distinct objects
    /// that the list scheduler starts in the same cycle get a shared tag.
    pub schedule_tags: bool,
}

/// Builds a design with explicit [`BuildOptions`].
pub fn build_design_with(rs: &ResolvedSpec, lib: &TechnologyLibrary, options: &BuildOptions) -> Design {
    // Per-behavior CDFGs drive both profiling and weight preprocessing.
    let cdfgs = lower_spec(rs);
    let artifacts: Vec<BehaviorArtifacts> = cdfgs
        .iter()
        .map(|g| compute_artifacts(g, lib))
        .collect();
    build_design_core(rs, lib, options, &artifacts, Some(&cdfgs))
}

/// Everything SLIF construction derives from one behavior's CDFG: the
/// pre-compiled / pre-synthesized weights per library model, and the
/// profiled access summary. This is the expensive per-behavior slice of
/// the build — [`BuildCache`](crate::BuildCache) keeps it warm across
/// incremental rebuilds so an edit to one behavior recomputes one entry.
///
/// Weights are positional: `proc_weights[i]` pairs with
/// `lib.processors[i]`, `asic_weights[i]` with `lib.asics[i]`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BehaviorArtifacts {
    /// `(ict, size)` per processor model.
    pub proc_weights: Vec<(u64, u64)>,
    /// `(ict, size, datapath)` per ASIC model.
    pub asic_weights: Vec<(u64, u64, Option<u64>)>,
    /// Profiled system accesses, in [`access_frequencies`] order.
    pub accesses: Vec<slif_cdfg::AccessSummary>,
}

/// Runs the paper's per-behavior preprocessing: compile against every
/// processor model, synthesize against every ASIC model, profile access
/// frequencies.
pub(crate) fn compute_artifacts(g: &Cdfg, lib: &TechnologyLibrary) -> BehaviorArtifacts {
    BehaviorArtifacts {
        proc_weights: lib
            .processors
            .iter()
            .map(|m| {
                let w = compile_behavior(g, m);
                (w.ict, w.size)
            })
            .collect(),
        asic_weights: lib
            .asics
            .iter()
            .map(|m| {
                let r = synthesize_behavior(g, m);
                (r.weights.ict, r.weights.size, r.weights.datapath)
            })
            .collect(),
        accesses: access_frequencies(g),
    }
}

/// The shared tail of [`build_design_with`] and the cached rebuild path:
/// everything downstream of the per-behavior artifacts. `artifacts` is
/// positional with `rs.spec().behaviors`; `cdfgs` is only consulted when
/// `options.schedule_tags` asks for schedule-derived concurrency tags.
pub(crate) fn build_design_core(
    rs: &ResolvedSpec,
    lib: &TechnologyLibrary,
    options: &BuildOptions,
    artifacts: &[BehaviorArtifacts],
    cdfgs: Option<&[Cdfg]>,
) -> Design {
    let spec = rs.spec();
    let mut d = Design::new(spec.name.clone());

    // Component classes, processors → ASICs → memories.
    let proc_classes: Vec<ClassId> = lib
        .processors
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::StdProcessor))
        .collect();
    let asic_classes: Vec<ClassId> = lib
        .asics
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::CustomHw))
        .collect();
    let mem_classes: Vec<ClassId> = lib
        .memories
        .iter()
        .map(|m| d.add_class(&m.name, ClassKind::Memory))
        .collect();

    // Functional objects. Resolution guarantees unique names on
    // well-formed specs; after parser error recovery a duplicate can
    // survive, in which case the first object wins and the rest are
    // skipped — the same degrade-don't-abort policy build_channels
    // applies to unresolvable access targets.
    for p in &spec.ports {
        let dir = match p.direction {
            Direction::In => PortDirection::In,
            Direction::Out => PortDirection::Out,
            Direction::Inout => PortDirection::InOut,
        };
        let _ = d.graph_mut().try_add_port(&p.name, dir, p.ty.access_bits());
    }
    for b in &spec.behaviors {
        let kind = if b.kind == BehaviorKind::Process {
            NodeKind::process()
        } else {
            NodeKind::procedure()
        };
        let _ = d.graph_mut().try_add_node(&b.name, kind);
    }
    for v in &spec.vars {
        let (words, word_bits) = v.ty.storage();
        let _ = d
            .graph_mut()
            .try_add_node(&v.name, NodeKind::array(words, word_bits));
    }

    annotate_behavior_weights(&mut d, rs, artifacts, &proc_classes, &asic_classes);
    annotate_variable_weights(&mut d, rs, lib, &proc_classes, &asic_classes, &mem_classes);
    build_channels(&mut d, rs, artifacts);
    tag_fork_concurrency(&mut d, rs);
    if options.schedule_tags {
        if let Some(model) = lib.asics.first() {
            if let Some(cdfgs) = cdfgs {
                tag_schedule_concurrency(&mut d, cdfgs, model);
            }
        }
    }

    d
}

/// Tags channels whose accesses the ASIC list scheduler starts in the
/// same cycle: they "could be accessed concurrently". A channel keeps its
/// first tag (fork tags, assigned earlier, take precedence).
fn tag_schedule_concurrency(
    d: &mut Design,
    cdfgs: &[Cdfg],
    model: &slif_techlib::AsicModel,
) {
    // Continue numbering after the fork tags.
    let mut next_tag = d
        .graph()
        .channel_ids()
        .filter_map(|c| d.graph().channel(c).tag().id())
        .max()
        .map_or(0, |t| t + 1);
    for g in cdfgs {
        let Some(src) = d.graph().node_by_name(g.name()) else {
            continue;
        };
        let result = slif_techlib::synthesize_behavior(g, model);
        for (block, sched) in g.block_ids().zip(&result.schedules) {
            let _ = block;
            for group in sched.concurrent_groups() {
                // Distinct system-access targets started together.
                let mut targets: Vec<&str> = group
                    .iter()
                    .filter_map(|&op| match &g.op(op).kind {
                        OpKind::ReadGlobal(n)
                        | OpKind::WriteGlobal(n)
                        | OpKind::ReadGlobalArray(n)
                        | OpKind::WriteGlobalArray(n)
                        | OpKind::ReadPort(n)
                        | OpKind::WritePort(n)
                        | OpKind::Call(n)
                        | OpKind::SendMsg(n) => Some(n.as_str()),
                        _ => None,
                    })
                    .collect();
                targets.sort_unstable();
                targets.dedup();
                if targets.len() < 2 {
                    continue;
                }
                let tag = ConcurrencyTag::group(next_tag);
                next_tag += 1;
                for target in targets {
                    let dst: Option<AccessTarget> =
                        if let Some(n) = d.graph().node_by_name(target) {
                            Some(n.into())
                        } else {
                            d.graph().port_by_name(target).map(Into::into)
                        };
                    let Some(dst) = dst else { continue };
                    for kind in [
                        AccessKind::Read,
                        AccessKind::Write,
                        AccessKind::Call,
                        AccessKind::Message,
                    ] {
                        if let Some(c) = d.graph().find_channel(src, dst, kind) {
                            if !d.graph().channel(c).tag().is_concurrent() {
                                d.graph_mut().channel_mut(c).set_tag(tag);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Parses, resolves, and builds in one step.
///
/// # Errors
///
/// A [`SpecError`] with parse or resolution diagnostics.
pub fn build_from_source(source: &str, lib: &TechnologyLibrary) -> Result<Design, SpecError> {
    let rs = slif_speclang::parse_and_resolve(source)?;
    Ok(build_design(&rs, lib))
}

fn annotate_behavior_weights(
    d: &mut Design,
    rs: &ResolvedSpec,
    artifacts: &[BehaviorArtifacts],
    proc_classes: &[ClassId],
    asic_classes: &[ClassId],
) {
    for (b, art) in rs.spec().behaviors.iter().zip(artifacts) {
        // A behavior skipped as a duplicate (or shadowed by a port of the
        // same name) has no node of its own: skip its weights too.
        let Some(node) = d.graph().node_by_name(&b.name) else {
            continue;
        };
        for (&(ict, size), &class) in art.proc_weights.iter().zip(proc_classes) {
            d.graph_mut().node_mut(node).ict_mut().set(class, ict);
            d.graph_mut().node_mut(node).size_mut().set(class, size);
        }
        for (&(ict, size, datapath), &class) in art.asic_weights.iter().zip(asic_classes) {
            d.graph_mut().node_mut(node).ict_mut().set(class, ict);
            let entry = match datapath {
                Some(dp) => WeightEntry::with_datapath(class, size, dp),
                None => WeightEntry::new(class, size),
            };
            d.graph_mut().node_mut(node).size_mut().insert(entry);
        }
    }
}

fn annotate_variable_weights(
    d: &mut Design,
    rs: &ResolvedSpec,
    lib: &TechnologyLibrary,
    proc_classes: &[ClassId],
    asic_classes: &[ClassId],
    mem_classes: &[ClassId],
) {
    for v in &rs.spec().vars {
        let Some(node) = d.graph().node_by_name(&v.name) else {
            continue;
        };
        let (words, word_bits) = v.ty.storage();
        for (model, &class) in lib.processors.iter().zip(proc_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
        for (model, &class) in lib.asics.iter().zip(asic_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
        for (model, &class) in lib.memories.iter().zip(mem_classes) {
            let w = model.variable(words, word_bits);
            d.graph_mut()
                .node_mut(node)
                .ict_mut()
                .set(class, w.access_time);
            d.graph_mut().node_mut(node).size_mut().set(class, w.size);
        }
    }
}

fn build_channels(d: &mut Design, rs: &ResolvedSpec, artifacts: &[BehaviorArtifacts]) {
    for (bi, (b, art)) in rs.spec().behaviors.iter().zip(artifacts).enumerate() {
        let Some(src) = d.graph().node_by_name(&b.name) else {
            continue;
        };
        for summary in &art.accesses {
            let dst: AccessTarget = if let Some(n) = d.graph().node_by_name(&summary.target) {
                n.into()
            } else if let Some(p) = d.graph().port_by_name(&summary.target) {
                p.into()
            } else {
                // Resolution binds every accessed name on a well-formed
                // spec; a partial spec (error recovery) can leave gaps.
                // Skip the access rather than abort the whole build.
                continue;
            };
            let kind = match summary.access {
                Access::Read => AccessKind::Read,
                Access::Write => AccessKind::Write,
                Access::Call => AccessKind::Call,
                Access::Message => AccessKind::Message,
            };
            let bits = match summary.access {
                Access::Message => message_bits(rs, bi, &summary.target),
                _ => object_access_bits(rs, &summary.target).unwrap_or(1),
            };
            let Ok(c) = d.graph_mut().add_channel(src, dst, kind) else {
                // Kind/target mismatch on a degenerate spec: drop the access.
                continue;
            };
            let ch = d.graph_mut().channel_mut(c);
            *ch.freq_mut() = AccessFreq::new(summary.avg, summary.min, summary.max);
            ch.set_bits(bits);
        }
    }
}

/// The encoding width of messages `behavior` sends to `target`: the widest
/// payload expression among its `send target …;` statements.
pub(crate) fn message_bits(rs: &ResolvedSpec, behavior: usize, target: &str) -> u32 {
    fn walk(rs: &ResolvedSpec, behavior: usize, target: &str, stmts: &[Stmt], best: &mut u32) {
        for stmt in stmts {
            match stmt {
                Stmt::Send {
                    target: t, value, ..
                } if t == target => {
                    *best = (*best).max(expr_bits(rs, behavior, value));
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(rs, behavior, target, then_body, best);
                    walk(rs, behavior, target, else_body, best);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::Fork { body, .. } => {
                    walk(rs, behavior, target, body, best);
                }
                _ => {}
            }
        }
    }
    let mut best = 1;
    walk(
        rs,
        behavior,
        target,
        &rs.spec().behaviors[behavior].body,
        &mut best,
    );
    best
}

/// Tags channels created by `fork` blocks: calls forked together share a
/// concurrency tag (Section 2.3).
fn tag_fork_concurrency(d: &mut Design, rs: &ResolvedSpec) {
    let mut next_tag = 0u32;
    for b in &rs.spec().behaviors {
        let Some(src) = d.graph().node_by_name(&b.name) else {
            continue;
        };
        let mut stack: Vec<&Stmt> = b.body.iter().collect();
        while let Some(stmt) = stack.pop() {
            match stmt {
                Stmt::Fork { body, .. } => {
                    let tag = ConcurrencyTag::group(next_tag);
                    next_tag += 1;
                    for s in body {
                        if let Stmt::Call { callee, .. } = s {
                            if let Some(dst) = d.graph().node_by_name(callee) {
                                if let Some(c) =
                                    d.graph().find_channel(src, dst.into(), AccessKind::Call)
                                {
                                    d.graph_mut().channel_mut(c).set_tag(tag);
                                }
                            }
                        }
                    }
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    stack.extend(then_body.iter());
                    stack.extend(else_body.iter());
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    stack.extend(body.iter());
                }
                _ => {}
            }
        }
    }
    let _ = rs;
}

/// The paper's running target architecture: one standard processor, one
/// ASIC, one memory, one system bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcAsicArchitecture {
    /// The standard processor.
    pub cpu: ProcessorId,
    /// The custom-hardware part.
    pub asic: ProcessorId,
    /// The memory.
    pub mem: MemoryId,
    /// The system bus.
    pub bus: BusId,
}

/// The technology library behind a design has no class of the needed kind,
/// so the processor–ASIC architecture cannot be allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingClassError {
    /// The component-class kind no class provides.
    pub kind: ClassKind,
}

impl std::fmt::Display for MissingClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "technology library provides no {} class", self.kind)
    }
}

impl std::error::Error for MissingClassError {}

/// Allocates the processor–ASIC architecture onto a design built by
/// [`build_design`]: the first std-processor class, the first custom-hw
/// class, the first memory class, and a 16-bit system bus (20 ns
/// same-component transfers, 100 ns cross-component).
///
/// # Errors
///
/// [`MissingClassError`] (naming the kind) if the design lacks a
/// std-processor, custom-hw, or memory class. The design is not modified
/// on failure.
pub fn try_allocate_proc_asic(d: &mut Design) -> Result<ProcAsicArchitecture, MissingClassError> {
    let first = |kind: ClassKind, d: &Design| {
        d.class_ids()
            .find(|&k| d.class(k).kind() == kind)
            .ok_or(MissingClassError { kind })
    };
    let pc = first(ClassKind::StdProcessor, d)?;
    let ac = first(ClassKind::CustomHw, d)?;
    let mc = first(ClassKind::Memory, d)?;
    Ok(ProcAsicArchitecture {
        cpu: d.add_processor("cpu0", pc),
        asic: d.add_processor("asic0", ac),
        mem: d.add_memory("mem0", mc),
        bus: d.add_bus(Bus::new("sysbus", 16, 20, 100)),
    })
}

/// [`try_allocate_proc_asic`], panicking on an incomplete library.
///
/// # Panics
///
/// Panics if the design lacks a std-processor, custom-hw, or memory class;
/// use [`try_allocate_proc_asic`] to handle that case gracefully.
pub fn allocate_proc_asic(d: &mut Design) -> ProcAsicArchitecture {
    match try_allocate_proc_asic(d) {
        Ok(arch) => arch,
        Err(e) => panic!("{e}"),
    }
}

/// The all-software starting partition: every node on the processor,
/// every channel on the system bus.
pub fn all_software_partition(d: &Design, arch: ProcAsicArchitecture) -> Partition {
    let mut part = Partition::new(d);
    for n in d.graph().node_ids() {
        part.assign_node(n, PmRef::Processor(arch.cpu));
    }
    for c in d.graph().channel_ids() {
        part.assign_channel(c, arch.bus);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_estimate::DesignReport;
    use slif_speclang::parse_and_resolve;

    const FIG1: &str = "system Fuzzy;\n\
        port in1 : in int<8>;\n\
        port in2 : in int<8>;\n\
        port out1 : out int<8>;\n\
        var in1val : int<8>;\n\
        var in2val : int<8>;\n\
        var mr1 : int<8>[128];\n\
        var tmr1 : int<8>[128];\n\
        proc EvaluateRule(num : int<8>) {\n\
          var trunc : int<8>;\n\
          if num == 1 prob 0.5 {\n\
            trunc = min(mr1[in1val], mr1[64 + in1val]);\n\
          }\n\
          for i in 0 .. 127 {\n\
            if num == 1 prob 0.5 { tmr1[i] = min(trunc, mr1[i]); }\n\
          }\n\
        }\n\
        process FuzzyMain {\n\
          in1val = in1;\n\
          in2val = in2;\n\
          call EvaluateRule(1);\n\
          call EvaluateRule(2);\n\
          out1 = tmr1[0];\n\
          wait 50;\n\
        }\n";

    fn build(src: &str) -> Design {
        let rs = parse_and_resolve(src).unwrap();
        build_design(&rs, &TechnologyLibrary::proc_asic())
    }

    #[test]
    fn figure2_access_graph_shape() {
        let d = build(FIG1);
        let g = d.graph();
        // 2 behaviors + 4 variables.
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.port_count(), 3);
        let main = g.node_by_name("FuzzyMain").unwrap();
        let eval = g.node_by_name("EvaluateRule").unwrap();
        assert!(g.node(main).kind().is_process());
        assert!(!g.node(eval).kind().is_process());
        // The two calls of EvaluateRule merge to a single edge.
        let call = g.find_channel(main, eval.into(), AccessKind::Call).unwrap();
        assert_eq!(g.channel(call).freq().avg, 2.0);
    }

    #[test]
    fn figure3_annotations() {
        let d = build(FIG1);
        let g = d.graph();
        let eval = g.node_by_name("EvaluateRule").unwrap();
        let mr1 = g.node_by_name("mr1").unwrap();
        let c = g.find_channel(eval, mr1.into(), AccessKind::Read).unwrap();
        // 2 * 0.5 + 128 * 0.5 = 65 accesses; 7 address + 8 data = 15 bits.
        assert!((g.channel(c).freq().avg - 65.0).abs() < 1e-9);
        assert_eq!(g.channel(c).bits(), 15);
        // in1val: 2 * 0.5 = 1 access of 8 bits.
        let in1val = g.node_by_name("in1val").unwrap();
        let c2 = g
            .find_channel(eval, in1val.into(), AccessKind::Read)
            .unwrap();
        assert!((g.channel(c2).freq().avg - 1.0).abs() < 1e-9);
        assert_eq!(g.channel(c2).bits(), 8);
    }

    #[test]
    fn behaviors_have_weights_for_every_behavior_class() {
        let d = build(FIG1);
        let g = d.graph();
        let eval = g.node_by_name("EvaluateRule").unwrap();
        for class in d.class_ids() {
            if d.class(class).kind().holds_behaviors() {
                assert!(g.node(eval).ict().supports(class));
                assert!(g.node(eval).size().supports(class));
            } else {
                assert!(!g.node(eval).ict().supports(class));
            }
        }
        // The ASIC weight carries a datapath split for sharing-aware size.
        let asic_class = d.class_by_name("asic_ga").unwrap();
        assert!(g
            .node(eval)
            .size()
            .entry(asic_class)
            .unwrap()
            .datapath
            .is_some());
    }

    #[test]
    fn variables_have_weights_for_all_classes() {
        let d = build(FIG1);
        let g = d.graph();
        let mr1 = g.node_by_name("mr1").unwrap();
        for class in d.class_ids() {
            assert!(
                g.node(mr1).ict().supports(class),
                "{}",
                d.class(class).name()
            );
            assert!(g.node(mr1).size().supports(class));
        }
        let sram = d.class_by_name("sram").unwrap();
        assert_eq!(g.node(mr1).size().get(sram), Some(128));
    }

    #[test]
    fn proc_asic_allocation_estimates_end_to_end() {
        let mut d = build(FIG1);
        let arch = allocate_proc_asic(&mut d);
        let part = all_software_partition(&d, arch);
        part.validate(&d).unwrap();
        let report = DesignReport::compute(&d, &part).unwrap();
        assert_eq!(report.processes.len(), 1);
        assert!(report.processes[0].exec_time > 0.0);
        // Everything on the cpu: the asic is empty, no pins.
        let asic_report = report
            .components
            .iter()
            .find(|c| c.name == "asic0")
            .unwrap();
        assert_eq!(asic_report.size, 0);
        assert_eq!(asic_report.pins, Some(0));
    }

    #[test]
    fn moving_convolve_style_work_to_asic_speeds_it_up() {
        let mut d = build(FIG1);
        let arch = allocate_proc_asic(&mut d);
        let sw = all_software_partition(&d, arch);
        let main = d.graph().node_by_name("FuzzyMain").unwrap();
        let t_sw = slif_estimate::ExecTimeEstimator::new(&d, &sw)
            .exec_time(main)
            .unwrap();
        // Move the loop-heavy procedure (and the arrays it hammers) to
        // the ASIC.
        let mut hw = sw.clone();
        for name in ["EvaluateRule", "mr1", "tmr1", "in1val", "in2val"] {
            let n = d.graph().node_by_name(name).unwrap();
            hw.assign_node(n, PmRef::Processor(arch.asic));
        }
        let t_hw = slif_estimate::ExecTimeEstimator::new(&d, &hw)
            .exec_time(main)
            .unwrap();
        assert!(t_hw < t_sw, "hardware mapping should win: {t_hw} vs {t_sw}");
    }

    #[test]
    fn fork_calls_share_a_tag() {
        let d = build(
            "system T;\nproc A() { }\nproc B() { }\nproc C() { }\n\
             process M { fork { call A(); call B(); } call C(); }",
        );
        let g = d.graph();
        let m = g.node_by_name("M").unwrap();
        let tag_of = |name: &str| {
            let n = g.node_by_name(name).unwrap();
            let c = g.find_channel(m, n.into(), AccessKind::Call).unwrap();
            g.channel(c).tag()
        };
        assert!(tag_of("A").is_concurrent());
        assert_eq!(tag_of("A"), tag_of("B"));
        assert_eq!(tag_of("C"), ConcurrencyTag::SEQUENTIAL);
    }

    #[test]
    fn message_channels_use_payload_width() {
        let d = build(
            "system T;\nvar wide : int<24>;\n\
             process A { send B wide; }\nprocess B { receive wide; }",
        );
        let g = d.graph();
        let a = g.node_by_name("A").unwrap();
        let b = g.node_by_name("B").unwrap();
        let c = g.find_channel(a, b.into(), AccessKind::Message).unwrap();
        assert_eq!(g.channel(c).bits(), 24);
    }

    #[test]
    fn build_from_source_reports_spec_errors() {
        assert!(build_from_source("system T; nonsense", &TechnologyLibrary::proc_asic()).is_err());
        assert!(build_from_source(
            "system T; proc P() { y = 1; }",
            &TechnologyLibrary::proc_asic()
        )
        .is_err());
    }

    #[test]
    fn try_allocate_reports_missing_classes_without_modifying_the_design() {
        let mut d = Design::new("bare");
        let e = try_allocate_proc_asic(&mut d).unwrap_err();
        assert_eq!(e.kind, ClassKind::StdProcessor);
        assert!(e.to_string().contains("std-processor"), "{e}");
        assert_eq!(d.processor_count() + d.memory_count() + d.bus_count(), 0);
        // With a processor class only, the next gap is named.
        d.add_class("proc", ClassKind::StdProcessor);
        let e = try_allocate_proc_asic(&mut d).unwrap_err();
        assert_eq!(e.kind, ClassKind::CustomHw);
        assert_eq!(d.processor_count() + d.memory_count() + d.bus_count(), 0);
    }
}

#[cfg(test)]
mod schedule_tag_tests {
    use super::*;
    use slif_estimate::{EstimatorConfig, ExecTimeEstimator};
    use slif_speclang::parse_and_resolve;

    /// Two independent array reads feed one max: the ASIC schedule starts
    /// them together, so their channels share a tag.
    const PARALLEL_READS: &str = "system T;\n\
        var a : int<8>[16];\nvar b : int<8>[16];\nvar x : int<8>;\n\
        proc P(i : int<8>) { x = max(a[i], b[i]); }\n\
        process Main { call P(1); }";

    #[test]
    fn schedule_derived_tags_mark_parallel_accesses() {
        let rs = parse_and_resolve(PARALLEL_READS).unwrap();
        let plain = build_design(&rs, &TechnologyLibrary::proc_asic());
        let tagged = build_design_with(
            &rs,
            &TechnologyLibrary::proc_asic(),
            &BuildOptions {
                schedule_tags: true,
            },
        );
        let find_tag = |d: &Design, target: &str| {
            let p = d.graph().node_by_name("P").unwrap();
            let t = d.graph().node_by_name(target).unwrap();
            let c = d
                .graph()
                .find_channel(p, t.into(), AccessKind::Read)
                .unwrap();
            d.graph().channel(c).tag()
        };
        assert!(!find_tag(&plain, "a").is_concurrent());
        // Note: the asic_ga model has one memory port, so the *resource-
        // constrained* schedule may serialize the reads; the scheduler
        // speaks, not the syntax. Whatever it decides must be symmetric.
        assert_eq!(
            find_tag(&tagged, "a").is_concurrent(),
            find_tag(&tagged, "b").is_concurrent()
        );
        if find_tag(&tagged, "a").is_concurrent() {
            assert_eq!(find_tag(&tagged, "a"), find_tag(&tagged, "b"));
        }
    }

    #[test]
    fn schedule_tags_never_raise_concurrency_aware_estimates() {
        // Tags only allow overlap: with the concurrency-aware estimator,
        // the tagged design is never slower than the untagged one.
        for name in ["fuzzy", "vol"] {
            let rs = slif_speclang::corpus::by_name(name).unwrap().load().unwrap();
            let lib = TechnologyLibrary::proc_asic();
            let mut plain = build_design(&rs, &lib);
            let arch = crate::allocate_proc_asic(&mut plain);
            let part = crate::all_software_partition(&plain, arch);

            let mut tagged = build_design_with(
                &rs,
                &lib,
                &BuildOptions {
                    schedule_tags: true,
                },
            );
            let arch2 = crate::allocate_proc_asic(&mut tagged);
            let part2 = crate::all_software_partition(&tagged, arch2);

            let cfg = EstimatorConfig::default().with_concurrency_aware(true);
            for n in plain.graph().node_ids() {
                if !plain.graph().node(n).kind().is_process() {
                    continue;
                }
                let t_plain = ExecTimeEstimator::with_config(&plain, &part, cfg)
                    .exec_time(n)
                    .unwrap();
                let node_name = plain.graph().node(n).name();
                let n2 = tagged.graph().node_by_name(node_name).unwrap();
                let t_tagged = ExecTimeEstimator::with_config(&tagged, &part2, cfg)
                    .exec_time(n2)
                    .unwrap();
                assert!(
                    t_tagged <= t_plain + 1e-6,
                    "{name}/{node_name}: {t_tagged} > {t_plain}"
                );
            }
        }
    }

    #[test]
    fn fork_tags_take_precedence_over_schedule_tags() {
        let rs = parse_and_resolve(
            "system T;\nproc A() { }\nproc B() { }\n\
             process M { fork { call A(); call B(); } }",
        )
        .unwrap();
        let d = build_design_with(
            &rs,
            &TechnologyLibrary::proc_asic(),
            &BuildOptions {
                schedule_tags: true,
            },
        );
        let m = d.graph().node_by_name("M").unwrap();
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        let ta = d
            .graph()
            .channel(d.graph().find_channel(m, a.into(), AccessKind::Call).unwrap())
            .tag();
        let tb = d
            .graph()
            .channel(d.graph().find_channel(m, b.into(), AccessKind::Call).unwrap())
            .tag();
        assert!(ta.is_concurrent());
        assert_eq!(ta, tb, "the fork pair stays in one group");
    }
}
