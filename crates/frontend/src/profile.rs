//! External branch-probability files.
//!
//! The paper's access frequencies are "determined from a branch
//! probability file", which "may be obtained manually or through
//! profiling". Inline `prob`/`iters` annotations in the specification are
//! the manual path; a [`Profile`] is the file path: it overrides the
//! annotations of named behaviors without editing the spec.
//!
//! File format (line oriented, `#` comments):
//!
//! ```text
//! branch EvaluateRule 0 0.5     # 0-based index of the if within the behavior
//! loop   AnsMain      0 300     # average iterations of the n-th while
//! ```

use slif_speclang::ast::{BehaviorDecl, Spec, Stmt};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error parsing a profile file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProfileError {}

/// An out-of-range override value passed to a [`Profile`] setter, carrying
/// the offending value so callers can report it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileValueError {
    /// What was being set: `"branch probability"` or `"loop iterations"`.
    pub what: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for ProfileValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let range = if self.what == "branch probability" {
            "[0, 1]"
        } else {
            "[0, +inf)"
        };
        write!(f, "{} {} is outside {range}", self.what, self.value)
    }
}

impl Error for ProfileValueError {}

/// A set of branch-probability and loop-iteration overrides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// (behavior, n-th `if`) → probability.
    branches: HashMap<(String, usize), f64>,
    /// (behavior, n-th `while`) → average iterations.
    loops: HashMap<(String, usize), f64>,
}

impl Profile {
    /// Creates an empty profile (all inline annotations kept).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a branch-probability override.
    ///
    /// # Errors
    ///
    /// [`ProfileValueError`] (carrying the rejected value, the profile
    /// unchanged) unless `0.0 <= prob <= 1.0`.
    pub fn set_branch(
        &mut self,
        behavior: impl Into<String>,
        index: usize,
        prob: f64,
    ) -> Result<(), ProfileValueError> {
        if !(0.0..=1.0).contains(&prob) {
            return Err(ProfileValueError {
                what: "branch probability",
                value: prob,
            });
        }
        self.branches.insert((behavior.into(), index), prob);
        Ok(())
    }

    /// Adds a loop-iteration override.
    ///
    /// # Errors
    ///
    /// [`ProfileValueError`] (carrying the rejected value, the profile
    /// unchanged) unless `iters` is finite and non-negative.
    pub fn set_loop(
        &mut self,
        behavior: impl Into<String>,
        index: usize,
        iters: f64,
    ) -> Result<(), ProfileValueError> {
        if !(iters.is_finite() && iters >= 0.0) {
            return Err(ProfileValueError {
                what: "loop iterations",
                value: iters,
            });
        }
        self.loops.insert((behavior.into(), index), iters);
        Ok(())
    }

    /// Parses the textual profile format.
    ///
    /// # Errors
    ///
    /// A [`ParseProfileError`] with a line number for malformed input.
    pub fn parse(input: &str) -> Result<Self, ParseProfileError> {
        let mut profile = Profile::new();
        for (i, raw) in input.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let err = |message: &str| ParseProfileError {
                line: lineno,
                message: message.to_owned(),
            };
            if toks.len() != 4 {
                return Err(err("expected `branch|loop <behavior> <index> <value>`"));
            }
            let index: usize = toks[2].parse().map_err(|_| err("bad index"))?;
            let value: f64 = toks[3].parse().map_err(|_| err("bad value"))?;
            match toks[0] {
                "branch" => {
                    if !(0.0..=1.0).contains(&value) {
                        return Err(err("probability must be within 0..=1"));
                    }
                    profile.branches.insert((toks[1].to_owned(), index), value);
                }
                "loop" => {
                    if !value.is_finite() || value < 0.0 {
                        return Err(err("iterations must be non-negative"));
                    }
                    profile.loops.insert((toks[1].to_owned(), index), value);
                }
                _ => return Err(err("expected `branch` or `loop`")),
            }
        }
        Ok(profile)
    }

    /// Returns `true` when no overrides are recorded.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty() && self.loops.is_empty()
    }

    /// Applies the overrides to a spec (in place), rewriting `prob` /
    /// `iters` annotations of the indexed statements.
    pub fn apply(&self, spec: &mut Spec) {
        if self.is_empty() {
            return;
        }
        for behavior in &mut spec.behaviors {
            let mut counters = Counters::default();
            let name = behavior.name.clone();
            apply_to_behavior(self, &name, behavior, &mut counters);
        }
    }
}

#[derive(Default)]
struct Counters {
    ifs: usize,
    whiles: usize,
}

fn apply_to_behavior(
    profile: &Profile,
    name: &str,
    behavior: &mut BehaviorDecl,
    counters: &mut Counters,
) {
    apply_to_stmts(profile, name, &mut behavior.body, counters);
}

fn apply_to_stmts(profile: &Profile, name: &str, stmts: &mut [Stmt], counters: &mut Counters) {
    for stmt in stmts {
        match stmt {
            Stmt::If {
                prob,
                then_body,
                else_body,
                ..
            } => {
                let idx = counters.ifs;
                counters.ifs += 1;
                if let Some(p) = profile.branches.get(&(name.to_owned(), idx)) {
                    *prob = Some(*p);
                }
                apply_to_stmts(profile, name, then_body, counters);
                apply_to_stmts(profile, name, else_body, counters);
            }
            Stmt::While { iters, body, .. } => {
                let idx = counters.whiles;
                counters.whiles += 1;
                if let Some(n) = profile.loops.get(&(name.to_owned(), idx)) {
                    *iters = Some(*n);
                }
                apply_to_stmts(profile, name, body, counters);
            }
            Stmt::For { body, .. } | Stmt::Fork { body, .. } => {
                apply_to_stmts(profile, name, body, counters);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::parse;

    const SRC: &str = "system T;\nvar x : int<8>;\n\
        proc P() {\n\
          if x > 0 prob 0.5 { x = 1; }\n\
          while x > 0 iters 10 { if x > 5 { x = x - 1; } }\n\
        }";

    #[test]
    fn parse_profile_format() {
        let p = Profile::parse("# comment\nbranch P 0 0.9\nloop P 0 42\n").unwrap();
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_errors_report_lines() {
        let e = Profile::parse("branch P x 0.9").unwrap_err();
        assert!(e.to_string().contains("line 1"));
        assert!(Profile::parse("branch P 0 1.5").is_err());
        assert!(Profile::parse("loop P 0 -3").is_err());
        assert!(Profile::parse("frob P 0 1").is_err());
        assert!(Profile::parse("branch P 0").is_err());
    }

    #[test]
    fn apply_overrides_indexed_statements() {
        let mut spec = parse(SRC).unwrap();
        let p = Profile::parse("branch P 0 0.9\nbranch P 1 0.25\nloop P 0 100\n").unwrap();
        p.apply(&mut spec);
        let body = &spec.behaviors[0].body;
        let Stmt::If { prob, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*prob, Some(0.9));
        let Stmt::While { iters, body, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(*iters, Some(100.0));
        let Stmt::If { prob, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*prob, Some(0.25), "nested if is index 1");
    }

    #[test]
    fn unmatched_overrides_are_ignored() {
        let mut spec = parse(SRC).unwrap();
        let before = spec.clone();
        let p = Profile::parse("branch Q 0 0.9\nbranch P 7 0.9\n").unwrap();
        p.apply(&mut spec);
        assert_eq!(spec, before);
    }

    #[test]
    fn empty_profile_is_identity() {
        let mut spec = parse(SRC).unwrap();
        let before = spec.clone();
        Profile::new().apply(&mut spec);
        assert_eq!(spec, before);
    }

    #[test]
    fn setters_reject_out_of_range_values_with_the_value() {
        let mut p = Profile::new();
        let e = p.set_branch("P", 0, 2.0).unwrap_err();
        assert_eq!((e.what, e.value), ("branch probability", 2.0));
        assert!(e.to_string().contains('2'), "{e}");
        let e = p.set_loop("P", 0, -3.0).unwrap_err();
        assert_eq!((e.what, e.value), ("loop iterations", -3.0));
        assert!(p.set_loop("P", 0, f64::NAN).is_err());
        // Rejections leave the profile untouched; accepted values land.
        assert!(p.is_empty());
        p.set_branch("P", 0, 0.5).unwrap();
        p.set_loop("P", 0, 12.0).unwrap();
        assert!(!p.is_empty());
    }
}
