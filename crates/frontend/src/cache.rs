//! Warm-cache SLIF construction for incremental rebuilds.
//!
//! `build_design` re-runs the paper's T-slif preprocessing — compile and
//! synthesize every behavior against every library model — from scratch.
//! An edit session rebuilding after a one-behavior edit should pay for
//! one behavior, not all of them: [`BuildCache`] keeps each behavior's
//! preprocessing results ([`BehaviorArtifacts`]) keyed by the behavior's
//! AST (modulo source spans), and [`build_design_cached`] reuses every
//! entry whose declaration is unchanged.
//!
//! Soundness over cleverness: a behavior's lowering can read declaration
//! context outside its own body (constant values, variable and port
//! types, other behaviors' signatures), so the cache also fingerprints
//! that environment and drops *everything* when it shifts. Only
//! body-level edits — the overwhelmingly common case in an interactive
//! session — hit the warm path.

use crate::bits::object_access_bits;
use crate::build::{
    build_design_core, compute_artifacts, message_bits, BehaviorArtifacts, BuildOptions,
};
use slif_cdfg::{lower_behavior, lower_spec, Access};
use slif_core::{AccessFreq, AccessKind, AccessTarget, ClassId, Design, NodeId, WeightEntry};
use slif_speclang::ast::{BehaviorDecl, Spec, Stmt};
use slif_speclang::{ForEachSpan, ResolvedSpec};
use slif_techlib::TechnologyLibrary;
use std::collections::HashMap;

/// A per-behavior preprocessing cache for repeated builds of an evolving
/// specification.
///
/// The contract is exact equality: for any resolved spec,
/// [`build_design_cached`] returns the same design `build_design_with`
/// would, whatever the cache held before. The cache only decides how
/// much work that takes.
///
/// # Examples
///
/// ```
/// use slif_frontend::{build_design, build_design_cached, BuildCache, BuildOptions};
/// use slif_techlib::TechnologyLibrary;
///
/// let lib = TechnologyLibrary::proc_asic();
/// let rs = slif_speclang::parse_and_resolve(
///     "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }",
/// )?;
/// let mut cache = BuildCache::new();
/// let warm = build_design_cached(&rs, &lib, &BuildOptions::default(), &mut cache);
/// assert_eq!(warm, build_design(&rs, &lib));
/// assert_eq!(cache.misses(), 1);
/// // Same spec again: every behavior comes from the cache.
/// let again = build_design_cached(&rs, &lib, &BuildOptions::default(), &mut cache);
/// assert_eq!(again, warm);
/// assert_eq!(cache.hits(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct BuildCache {
    /// The library the cached weights were computed against.
    lib: Option<TechnologyLibrary>,
    /// Declaration context the behaviors were lowered in: the whole spec
    /// modulo spans with behavior bodies and locals emptied (so body
    /// edits leave it untouched).
    env: Option<Spec>,
    entries: HashMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    /// The full declaration (modulo spans) the artifacts were computed
    /// from.
    decl: slif_speclang::ast::BehaviorDecl,
    artifacts: BehaviorArtifacts,
}

impl BuildCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached entry (counters survive).
    pub fn clear(&mut self) {
        self.lib = None;
        self.env = None;
        self.entries.clear();
    }

    /// Cached behavior entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Behaviors served from the cache across all builds.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Behaviors that had to be recomputed across all builds.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The declaration environment a behavior is lowered in: everything in
/// the spec except behavior bodies and locals, modulo spans.
fn env_fingerprint(spec: &Spec) -> Spec {
    let mut env = spec.clone();
    for b in &mut env.behaviors {
        b.body.clear();
        b.locals.clear();
    }
    env.strip_spans();
    env
}

/// [`build_design_with`](crate::build_design_with) through a
/// [`BuildCache`]: behaviors whose declarations are unchanged since the
/// cache's last build reuse their compiled/synthesized weights and
/// access profile; everything else — and the always-cheap variable
/// weights, channel bits, and fork tags — is recomputed against the
/// current spec.
///
/// With `options.schedule_tags` set, every behavior is re-lowered and
/// re-synthesized for the schedule-derived tags, so the cache only
/// shortens the weight phase; interactive sessions use the default
/// options, where unchanged behaviors cost one AST comparison.
pub fn build_design_cached(
    rs: &ResolvedSpec,
    lib: &TechnologyLibrary,
    options: &BuildOptions,
    cache: &mut BuildCache,
) -> Design {
    let spec = rs.spec();
    let env = env_fingerprint(spec);
    if cache.lib.as_ref() != Some(lib) || cache.env.as_ref() != Some(&env) {
        cache.entries.clear();
        cache.lib = Some(lib.clone());
        cache.env = Some(env);
    }

    let mut artifacts = Vec::with_capacity(spec.behaviors.len());
    for (i, b) in spec.behaviors.iter().enumerate() {
        let mut key = b.clone();
        key.strip_spans();
        match cache.entries.get(&b.name) {
            Some(entry) if entry.decl == key => {
                cache.hits += 1;
                artifacts.push(entry.artifacts.clone());
            }
            _ => {
                cache.misses += 1;
                let art = compute_artifacts(&lower_behavior(rs, i), lib);
                cache.entries.insert(
                    b.name.clone(),
                    CacheEntry {
                        decl: key,
                        artifacts: art.clone(),
                    },
                );
                artifacts.push(art);
            }
        }
    }
    // Entries for deleted behaviors would otherwise accumulate forever.
    cache
        .entries
        .retain(|name, _| spec.behaviors.iter().any(|b| &b.name == name));

    let cdfgs = options.schedule_tags.then(|| lower_spec(rs));
    build_design_core(rs, lib, options, &artifacts, cdfgs.as_deref())
}

/// Whether any statement in `stmts` (recursively) is a `fork` block.
/// Fork-derived concurrency tags are numbered globally across behaviors,
/// so an edit that adds, removes, or moves a fork can renumber tags far
/// from the edit — such edits take the full-rebuild path.
fn contains_fork(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Fork { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => contains_fork(then_body) || contains_fork(else_body),
        Stmt::For { body, .. } | Stmt::While { body, .. } => contains_fork(body),
        _ => false,
    })
}

/// How one access summary maps into the design graph.
fn access_kind(access: Access) -> AccessKind {
    match access {
        Access::Read => AccessKind::Read,
        Access::Write => AccessKind::Write,
        Access::Call => AccessKind::Call,
        Access::Message => AccessKind::Message,
    }
}

fn access_target(design: &Design, name: &str) -> Option<AccessTarget> {
    if let Some(n) = design.graph().node_by_name(name) {
        Some(n.into())
    } else {
        design.graph().port_by_name(name).map(Into::into)
    }
}

/// A validated per-behavior patch, computed before any design mutation.
struct BehaviorPatch {
    behavior: usize,
    node: NodeId,
    key: BehaviorDecl,
    art: BehaviorArtifacts,
}

/// Patches `design` — a design previously produced against `cache`'s
/// current entries — *in place* for an edit that changed only the bodies
/// of `candidates` (behavior indices into `rs.spec().behaviors`), and
/// returns how many behaviors were actually recomputed. `None` means the
/// edit is not patchable; the design is untouched and the caller must
/// fall back to [`build_design_cached`].
///
/// The caller guarantees (typically from a dirty-region reparse) that
/// every declaration *not* named by `candidates` — every port, constant,
/// variable, and non-candidate behavior — is unchanged modulo source
/// spans since the cache's last build. Under that guarantee, a
/// successful patch leaves `design` exactly equal to a cold
/// [`build_design_with`](crate::build_design_with) of `rs` — including
/// processors, memories, and buses allocated onto it after the original
/// build, which a rebuild would lose and this patch preserves.
///
/// The patch declines (returning `None`, design untouched) whenever
/// equality cannot be guaranteed cheaply:
///
/// - `options.schedule_tags` is set (tags derive from a whole-design
///   re-synthesis);
/// - the cache is cold, or was built against a different library or
///   declaration environment;
/// - a candidate's signature (name, kind, parameters) changed — that is
///   an environment change in disguise;
/// - a candidate's old or new body contains `fork` (tag numbering is
///   global), or its profiled access sequence changed shape (that is a
///   channel-topology change), or carries duplicate target/kind pairs
///   (channel lookup would be ambiguous).
pub fn try_patch_design(
    rs: &ResolvedSpec,
    lib: &TechnologyLibrary,
    options: &BuildOptions,
    cache: &mut BuildCache,
    design: &mut Design,
    candidates: &[usize],
) -> Option<usize> {
    if options.schedule_tags || cache.lib.as_ref() != Some(lib) {
        return None;
    }
    let env = cache.env.as_ref()?;
    let spec = rs.spec();
    // The cached environment must describe *this* spec shape: same
    // system name and declaration counts. (The per-candidate signature
    // check below covers behavior-level drift; name has no decl span a
    // region check could catch, so it is verified here.)
    if spec.name != env.name
        || spec.ports.len() != env.ports.len()
        || spec.consts.len() != env.consts.len()
        || spec.vars.len() != env.vars.len()
        || spec.behaviors.len() != env.behaviors.len()
    {
        return None;
    }
    let proc_classes: Vec<ClassId> = lib
        .processors
        .iter()
        .map(|m| design.class_by_name(&m.name))
        .collect::<Option<_>>()?;
    let asic_classes: Vec<ClassId> = lib
        .asics
        .iter()
        .map(|m| design.class_by_name(&m.name))
        .collect::<Option<_>>()?;

    // Phase 1: validate every candidate and precompute its artifacts.
    // Nothing is mutated until the whole edit is known to be patchable,
    // so a mid-list bail cannot leave the design half-updated.
    let mut patches = Vec::new();
    for &i in candidates {
        let b = spec.behaviors.get(i)?;
        // The signature must match the cached environment positionally;
        // a signature change invalidates other behaviors' lowerings.
        let mut sig = BehaviorDecl {
            name: b.name.clone(),
            kind: b.kind.clone(),
            params: b.params.clone(),
            locals: Vec::new(),
            body: Vec::new(),
            allows: b.allows.clone(),
            span: b.span,
        };
        sig.strip_spans();
        if sig != env.behaviors[i] {
            return None;
        }
        let entry = cache.entries.get(&b.name)?;
        let mut key = b.clone();
        key.strip_spans();
        if entry.decl == key {
            continue; // span-only change: nothing to recompute
        }
        if contains_fork(&entry.decl.body) || contains_fork(&b.body) {
            return None;
        }
        let node = design.graph().node_by_name(&b.name)?;
        let art = compute_artifacts(&lower_behavior(rs, i), lib);
        if art.accesses.len() != entry.artifacts.accesses.len() {
            return None;
        }
        for (j, (old, new)) in entry.artifacts.accesses.iter().zip(&art.accesses).enumerate() {
            if old.target != new.target || old.access != new.access {
                return None;
            }
            let duplicate = art.accesses[..j]
                .iter()
                .any(|p| p.target == new.target && p.access == new.access);
            if duplicate {
                return None;
            }
            // A resolvable access must already have its channel; a build
            // that dropped it (degenerate add_channel failure) cannot be
            // patched back into agreement.
            if let Some(dst) = access_target(design, &new.target) {
                design
                    .graph()
                    .find_channel(node, dst, access_kind(new.access))?;
            }
        }
        patches.push(BehaviorPatch {
            behavior: i,
            node,
            key,
            art,
        });
    }

    // Phase 2: apply. This mirrors `annotate_behavior_weights` and
    // `build_channels` for exactly the recomputed behaviors; weight
    // `set`/`insert` replace per class, so overwriting the stale values
    // reproduces what a fresh annotation pass would leave.
    let changed = patches.len();
    for p in patches {
        for (&(ict, size), &class) in p.art.proc_weights.iter().zip(&proc_classes) {
            design.graph_mut().node_mut(p.node).ict_mut().set(class, ict);
            design.graph_mut().node_mut(p.node).size_mut().set(class, size);
        }
        for (&(ict, size, datapath), &class) in p.art.asic_weights.iter().zip(&asic_classes) {
            design.graph_mut().node_mut(p.node).ict_mut().set(class, ict);
            let entry = match datapath {
                Some(dp) => WeightEntry::with_datapath(class, size, dp),
                None => WeightEntry::new(class, size),
            };
            design.graph_mut().node_mut(p.node).size_mut().insert(entry);
        }
        for summary in &p.art.accesses {
            let Some(dst) = access_target(design, &summary.target) else {
                continue; // unresolvable in the old build too: no channel
            };
            let bits = match summary.access {
                Access::Message => message_bits(rs, p.behavior, &summary.target),
                _ => object_access_bits(rs, &summary.target).unwrap_or(1),
            };
            let Some(c) = design
                .graph()
                .find_channel(p.node, dst, access_kind(summary.access))
            else {
                continue; // validated above; defensive
            };
            let ch = design.graph_mut().channel_mut(c);
            *ch.freq_mut() = AccessFreq::new(summary.avg, summary.min, summary.max);
            ch.set_bits(bits);
        }
        cache.entries.insert(
            p.key.name.clone(),
            CacheEntry {
                decl: p.key,
                artifacts: p.art,
            },
        );
    }
    cache.misses += changed as u64;
    cache.hits += (spec.behaviors.len() - changed) as u64;
    Some(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_design_with;
    use slif_speclang::parse_and_resolve;

    const BASE: &str = "system T;\n\
        port in1 : in int<8>;\n\
        const K = 3;\n\
        var x : int<8>;\n\
        var buf : int<8>[16];\n\
        proc Work(i : int<8>) { buf[i] = x + K; }\n\
        process Main { x = in1; call Work(1); wait 10; }\n\
        process Side { buf[0] = 0; wait 7; }\n";

    fn check(cache: &mut BuildCache, src: &str) {
        let rs = parse_and_resolve(src).unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let opts = BuildOptions::default();
        let warm = build_design_cached(&rs, &lib, &opts, cache);
        let cold = build_design_with(&rs, &lib, &opts);
        assert_eq!(warm, cold, "cached build diverged from cold build");
    }

    #[test]
    fn cached_build_equals_cold_build_across_edits() {
        let mut cache = BuildCache::new();
        check(&mut cache, BASE);
        assert_eq!((cache.hits(), cache.misses()), (0, 3));

        // Identical rebuild: all behaviors warm.
        check(&mut cache, BASE);
        assert_eq!((cache.hits(), cache.misses()), (3, 3));

        // Body edit to one behavior: the other two stay warm.
        check(&mut cache, &BASE.replace("wait 10;", "wait 20;"));
        assert_eq!((cache.hits(), cache.misses()), (5, 4));

        // Whitespace-only edit shifts every span but no declaration;
        // reverting Main's body costs one recompute, the rest stay warm.
        check(&mut cache, &BASE.replace("system T;\n", "system T;\n\n\n"));
        assert_eq!((cache.hits(), cache.misses()), (7, 5));
    }

    #[test]
    fn environment_edits_invalidate_everything() {
        let mut cache = BuildCache::new();
        check(&mut cache, BASE);
        // A constant's value feeds lowered bodies: all entries drop.
        check(&mut cache, &BASE.replace("const K = 3;", "const K = 9;"));
        assert_eq!((cache.hits(), cache.misses()), (0, 6));
        // A variable's type feeds storage weights and channel bits.
        check(
            &mut cache,
            &BASE
                .replace("const K = 3;", "const K = 9;")
                .replace("var x : int<8>;", "var x : int<16>;"),
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 9));
    }

    #[test]
    fn structural_edits_add_and_drop_entries() {
        let mut cache = BuildCache::new();
        check(&mut cache, BASE);
        // Adding a behavior changes the declaration environment (it is a
        // new resolvable name), so the conservative policy recomputes
        // everything rather than reasoning about who could see it.
        check(
            &mut cache,
            &format!("{BASE}process Extra {{ x = 1; wait 3; }}\n"),
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 7));
        assert_eq!(cache.len(), 4);
        // Deleting it drops its entry (another env change).
        check(&mut cache, BASE);
        assert_eq!((cache.hits(), cache.misses()), (0, 10));
        assert_eq!(cache.len(), 3);
    }

    fn warm_design(cache: &mut BuildCache, src: &str) -> Design {
        let rs = parse_and_resolve(src).unwrap();
        build_design_cached(&rs, &TechnologyLibrary::proc_asic(), &BuildOptions::default(), cache)
    }

    /// Patches `design` (warm against `cache` for the *previous* source)
    /// to `src`, with `candidates` naming the edited behaviors, and
    /// checks the result equals a cold build of `src`.
    fn patch_and_check(
        cache: &mut BuildCache,
        design: &mut Design,
        src: &str,
        candidates: &[usize],
    ) -> Option<usize> {
        let rs = parse_and_resolve(src).unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let opts = BuildOptions::default();
        let changed = try_patch_design(&rs, &lib, &opts, cache, design, candidates)?;
        assert_eq!(
            *design,
            build_design_with(&rs, &lib, &opts),
            "patched design diverged from cold build"
        );
        Some(changed)
    }

    #[test]
    fn body_edit_patches_in_place_and_matches_cold_build() {
        let mut cache = BuildCache::new();
        let mut design = warm_design(&mut cache, BASE);
        // Main is behaviors[1] (Work, Main, Side). Change its wait.
        let edited = BASE.replace("wait 10;", "wait 90;");
        let changed = patch_and_check(&mut cache, &mut design, &edited, &[1]);
        assert_eq!(changed, Some(1));
        // A second patch over the already-patched design also holds.
        let edited2 = edited.replace("buf[i] = x + K;", "buf[i] = x * K;");
        let changed = patch_and_check(&mut cache, &mut design, &edited2, &[0]);
        assert_eq!(changed, Some(1));
        // Span-only candidates (body text unchanged) cost no recompute.
        let changed = patch_and_check(&mut cache, &mut design, &edited2, &[2]);
        assert_eq!(changed, Some(0));
    }

    #[test]
    fn patch_preserves_allocation_on_the_design() {
        let mut cache = BuildCache::new();
        let mut design = warm_design(&mut cache, BASE);
        crate::allocate_proc_asic(&mut design);
        let edited = BASE.replace("wait 7;", "wait 70;");
        let rs = parse_and_resolve(&edited).unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let changed = try_patch_design(
            &rs,
            &lib,
            &BuildOptions::default(),
            &mut cache,
            &mut design,
            &[2],
        );
        assert_eq!(changed, Some(1));
        assert_eq!(design.processor_count(), 2, "allocation survived");
        // The graph-level annotations still match a cold build.
        let cold = build_design_with(&rs, &lib, &BuildOptions::default());
        for n in design.graph().node_ids() {
            let name = design.graph().node(n).name().to_owned();
            let cn = cold.graph().node_by_name(&name).unwrap();
            assert_eq!(
                design.graph().node(n).ict(),
                cold.graph().node(cn).ict(),
                "{name}"
            );
        }
    }

    #[test]
    fn patch_declines_unsafe_edits() {
        let lib = TechnologyLibrary::proc_asic();
        let opts = BuildOptions::default();
        let mut cache = BuildCache::new();
        let mut design = warm_design(&mut cache, BASE);

        // Cold cache: nothing to patch against.
        let rs = parse_and_resolve(BASE).unwrap();
        let mut cold_cache = BuildCache::new();
        let mut d2 = design.clone();
        assert_eq!(
            try_patch_design(&rs, &lib, &opts, &mut cold_cache, &mut d2, &[1]),
            None
        );

        // Schedule tags need whole-design synthesis.
        let tag_opts = BuildOptions {
            schedule_tags: true,
        };
        assert_eq!(
            try_patch_design(&rs, &lib, &tag_opts, &mut cache, &mut design, &[1]),
            None
        );

        // A changed access set is a channel-topology change.
        let topo = BASE.replace("process Side { buf[0] = 0; wait 7; }", "process Side { x = 0; wait 7; }");
        let rs2 = parse_and_resolve(&topo).unwrap();
        let before = design.clone();
        assert_eq!(
            try_patch_design(&rs2, &lib, &opts, &mut cache, &mut design, &[2]),
            None
        );
        assert_eq!(design, before, "design untouched on bail");

        // A signature change is an environment change.
        let sig = BASE.replace("proc Work(i : int<8>)", "proc Work(i : int<16>)");
        let rs3 = parse_and_resolve(&sig).unwrap();
        assert_eq!(
            try_patch_design(&rs3, &lib, &opts, &mut cache, &mut design, &[0]),
            None
        );

        // Fork in the new body: tag numbering is global.
        let forked = BASE.replace(
            "process Main { x = in1; call Work(1); wait 10; }",
            "process Main { fork { call Work(1); } wait 10; }",
        );
        let rs4 = parse_and_resolve(&forked).unwrap();
        assert_eq!(
            try_patch_design(&rs4, &lib, &opts, &mut cache, &mut design, &[1]),
            None
        );
        assert_eq!(design, before, "design untouched across all bails");
    }

    #[test]
    fn library_change_invalidates_everything() {
        let rs = parse_and_resolve(BASE).unwrap();
        let opts = BuildOptions::default();
        let mut cache = BuildCache::new();
        let lib = TechnologyLibrary::proc_asic();
        build_design_cached(&rs, &lib, &opts, &mut cache);
        let mut other = lib.clone();
        other.processors[0].cycle_ns += 1;
        let warm = build_design_cached(&rs, &other, &opts, &mut cache);
        assert_eq!(warm, build_design_with(&rs, &other, &opts));
        assert_eq!((cache.hits(), cache.misses()), (0, 6));
    }

    #[test]
    fn schedule_tags_still_match_cold_build() {
        let rs = parse_and_resolve(BASE).unwrap();
        let lib = TechnologyLibrary::proc_asic();
        let opts = BuildOptions {
            schedule_tags: true,
        };
        let mut cache = BuildCache::new();
        build_design_cached(&rs, &lib, &opts, &mut cache);
        let warm = build_design_cached(&rs, &lib, &opts, &mut cache);
        assert_eq!(warm, build_design_with(&rs, &lib, &opts));
    }
}
