//! Bits-per-access computation (Section 2.4.1's rules).
//!
//! * scalar variable or port: the number of bits of its encoding;
//! * array variable: element bits plus the address bits needed to select
//!   an element;
//! * behavior call: the total bits of all parameters;
//! * message pass: the bits of the message's encoding, estimated from the
//!   payload expression.

use slif_speclang::ast::{BehaviorKind, Expr, Type};
use slif_speclang::{GlobalSymbol, ResolvedSpec};
use std::error::Error;
use std::fmt;

/// A name that does not denote a bit-carrying system object, carrying the
/// offending name so callers can report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownObjectError {
    /// The name that failed to resolve to a variable, port, or behavior.
    pub name: String,
}

impl fmt::Display for UnknownObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` does not name a variable, port, or behavior with an access width",
            self.name
        )
    }
}

impl Error for UnknownObjectError {}

/// Bits transferred by one access to the named system object from within
/// `behavior` (variables and ports use their type's access width).
pub fn object_access_bits(rs: &ResolvedSpec, name: &str) -> Option<u32> {
    match rs.global(name)? {
        GlobalSymbol::Var(i) => Some(rs.spec().vars[i].ty.access_bits()),
        GlobalSymbol::Port(i) => Some(rs.spec().ports[i].ty.access_bits()),
        GlobalSymbol::Behavior(i) => Some(call_bits(rs, i)),
        GlobalSymbol::Const(_) => None,
    }
}

/// [`object_access_bits`] with a typed error naming what failed, for
/// callers that must report the gap instead of assuming a default.
///
/// # Errors
///
/// [`UnknownObjectError`] carrying `name` when it resolves to nothing or
/// to a constant (constants are folded away and transfer no bits).
pub fn try_object_access_bits(rs: &ResolvedSpec, name: &str) -> Result<u32, UnknownObjectError> {
    object_access_bits(rs, name).ok_or_else(|| UnknownObjectError {
        name: name.to_owned(),
    })
}

/// Bits transferred by one call of behavior `i`: the sum of its parameter
/// widths (a parameterless call still transfers a 1-bit "go").
pub fn call_bits(rs: &ResolvedSpec, behavior: usize) -> u32 {
    let decl = &rs.spec().behaviors[behavior];
    let params: u32 = decl.params.iter().map(|p| p.ty.access_bits()).sum();
    let ret = match decl.kind {
        BehaviorKind::Function { ret } => ret.access_bits(),
        _ => 0,
    };
    (params + ret).max(1)
}

/// Estimated encoding width of an expression, used for message-pass bits.
///
/// Widths combine structurally: names and indexed reads use their declared
/// types, arithmetic takes the wider operand, comparisons and logic are
/// one bit, literals take the minimum width that represents them.
pub fn expr_bits(rs: &ResolvedSpec, behavior: usize, expr: &Expr) -> u32 {
    match expr {
        Expr::Int { value, .. } => bits_for(*value),
        Expr::Bool { .. } => 1,
        Expr::Name { name, .. } => rs
            .type_of(behavior, name)
            .map(|t| t.access_bits())
            .unwrap_or(8),
        Expr::Index { name, .. } => match rs.type_of(behavior, name) {
            Some(Type::Array { elem_bits, .. }) => elem_bits,
            _ => 8,
        },
        Expr::Call { callee, args, .. } => {
            if let Some(GlobalSymbol::Behavior(i)) = rs.global(callee) {
                if let BehaviorKind::Function { ret } = rs.spec().behaviors[i].kind {
                    return ret.access_bits();
                }
            }
            args.iter()
                .map(|a| expr_bits(rs, behavior, a))
                .max()
                .unwrap_or(8)
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            if op.is_comparison() || op.is_logical() {
                1
            } else {
                expr_bits(rs, behavior, lhs).max(expr_bits(rs, behavior, rhs))
            }
        }
        Expr::Unary { operand, .. } => expr_bits(rs, behavior, operand),
    }
}

fn bits_for(value: u64) -> u32 {
    (64 - value.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::parse_and_resolve;

    const SRC: &str = "system T;\n\
        port in1 : in int<8>;\n\
        var x : int<12>;\n\
        var mr1 : int<8>[128];\n\
        var big : int<8>[384];\n\
        func F(a : int<8>, b : int<16>) -> int<24> { return a + b; }\n\
        proc P() { }\n\
        process Main { x = in1; call P(); send Main x; }\n";

    fn rs() -> slif_speclang::ResolvedSpec {
        parse_and_resolve(SRC).unwrap()
    }

    #[test]
    fn scalar_bits_are_type_width() {
        let rs = rs();
        assert_eq!(object_access_bits(&rs, "x"), Some(12));
        assert_eq!(object_access_bits(&rs, "in1"), Some(8));
    }

    #[test]
    fn unknown_object_error_carries_the_name() {
        let rs = rs();
        assert_eq!(try_object_access_bits(&rs, "x"), Ok(12));
        let e = try_object_access_bits(&rs, "nosuch").unwrap_err();
        assert_eq!(e.name, "nosuch");
        assert!(e.to_string().contains("`nosuch`"), "{e}");
    }

    #[test]
    fn array_bits_add_address_lines() {
        let rs = rs();
        // 128 entries → 7 address bits + 8 data = 15 (the paper's Figure 3).
        assert_eq!(object_access_bits(&rs, "mr1"), Some(15));
        // 384 entries → 9 address bits + 8 data = 17.
        assert_eq!(object_access_bits(&rs, "big"), Some(17));
    }

    #[test]
    fn call_bits_sum_parameters_and_return() {
        let rs = rs();
        let f = match rs.global("F") {
            Some(GlobalSymbol::Behavior(i)) => i,
            _ => panic!(),
        };
        assert_eq!(call_bits(&rs, f), 8 + 16 + 24);
        // Parameterless procedure: 1 "go" bit.
        let p = match rs.global("P") {
            Some(GlobalSymbol::Behavior(i)) => i,
            _ => panic!(),
        };
        assert_eq!(call_bits(&rs, p), 1);
        assert_eq!(object_access_bits(&rs, "P"), Some(1));
    }

    #[test]
    fn expr_bits_structure() {
        let rs = rs();
        let main = match rs.global("Main") {
            Some(GlobalSymbol::Behavior(i)) => i,
            _ => panic!(),
        };
        let e = |src: &str| {
            let spec = slif_speclang::parse(&format!("system D;\nconst Z = {src};\n")).unwrap();
            spec.consts[0].value.clone()
        };
        assert_eq!(expr_bits(&rs, main, &e("255")), 8);
        assert_eq!(expr_bits(&rs, main, &e("256")), 9);
        assert_eq!(expr_bits(&rs, main, &e("1")), 1);
        assert_eq!(expr_bits(&rs, main, &e("x + 1")), 12);
        assert_eq!(expr_bits(&rs, main, &e("x > 1")), 1);
        assert_eq!(expr_bits(&rs, main, &e("mr1[3]")), 8);
        assert_eq!(expr_bits(&rs, main, &e("F(1, 2)")), 24);
    }
}
