//! # slif-serve — the wire-facing front door for the SLIF job service
//!
//! [`slif_runtime`] already guarantees that every *admitted* job reaches
//! exactly one terminal state. This crate extends that guarantee across
//! a network boundary where the clients are assumed hostile: a
//! hand-rolled HTTP/1.1 server ([`server::Server`]) over
//! `std::net::TcpListener` with a fixed acceptor + connection-worker
//! pool, fronting a [`JobService`](slif_runtime::JobService).
//!
//! The invariant it serves: **every byte-complete request gets exactly
//! one well-formed response — a result or a typed refusal — and no
//! client behaviour can make the server panic, hang, or drop an
//! in-flight job.**
//!
//! Layers, outermost first:
//!
//! * [`http`] — request framing with read/write deadlines, a head-size
//!   cap, and a declared-body-size guard (slow loris → 408, oversized →
//!   413, truncation → 400, all without unbounded reads).
//! * [`tenant`] — API-key authentication with per-tenant token-bucket
//!   quotas (401 / 429 + `Retry-After`); tenant identity also flows into
//!   the runtime's weighted fair-share queue, so one tenant's flood
//!   cannot starve another's trickle.
//! * [`wire`] — the protocol proper: endpoint → [`Job`](slif_runtime::Job)
//!   construction and deterministic output rendering, shared by the
//!   server, the load generator, and the bit-identity soak test; plus
//!   the single mapping from every [`Rejected`](slif_runtime::Rejected)
//!   variant and [`JobError`](slif_runtime::JobError) to a distinct
//!   status code.
//! * [`durable`] — optional crash-safe persistence: a write-ahead job
//!   journal (accept-before-run, persist-before-acknowledge, replay on
//!   restart) and a content-addressed compiled-design cache, both built
//!   on [`slif_store`]. Enables durable job ids (`x-slif-job-id`) and
//!   `GET /jobs/{id}` result retrieval across restarts.
//! * [`session`] — long-lived incremental edit sessions
//!   (`POST /sessions`, `POST /sessions/{id}/edit`,
//!   `GET /sessions/{id}`): one [`slif_session::EditSession`] per id,
//!   per-tenant caps, lazy idle eviction, tenant-isolated lookups.
//! * [`server`] — the accept/dispatch loop, `/health` and `/metrics`,
//!   and graceful drain (in-flight jobs finish; new work gets 410).
//! * [`loadgen`] — a deterministic, fault-injecting load generator that
//!   doubles as the wire-level soak harness and writes
//!   `BENCH_serve.json`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The front door must refuse, not die: no `expect` on serving paths
// (promoted to an error by the verify gate's `-D warnings`).
#![warn(clippy::expect_used)]

pub mod durable;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod session;
pub mod tenant;
pub mod wire;

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning — same rationale as the
/// runtime's helper: panicking code never runs under these locks, so
/// the guarded data is still the source of truth.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
