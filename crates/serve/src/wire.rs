//! The SLIF wire protocol: endpoints, job construction, output
//! rendering, and the status-code taxonomy.
//!
//! Everything here is **pure** and shared by the server, the load
//! generator, and the soak test — that sharing is what makes the
//! bit-identity guarantee checkable: the test computes the expected body
//! with [`job_for`] + [`Job::run_inline`] + [`render_output`] and
//! compares it byte-for-byte against what came over the socket.
//!
//! ## Endpoints
//!
//! | Method/path        | Job                         |
//! |--------------------|-----------------------------|
//! | `POST /v1/parse`   | [`Job::ParseSpec`]          |
//! | `POST /v1/estimate`| [`Job::Estimate`]           |
//! | `POST /v1/explore` | [`Job::Explore`] (random search, seeded) |
//! | `POST /v1/analyze` | [`Job::Analyze`]            |
//! | `POST /sessions`   | [`Job::EditSession`] → a live edit session |
//! | `POST /sessions/{id}/edit` | inline incremental edit (see [`crate::session`]) |
//! | `GET /sessions/{id}` | session status + current reports |
//! | `POST /designs`    | [`Job::Import`] — `.slif`/`.slifb` interchange bytes in, content hash out |
//! | `GET /designs/{hash}` | export a stored design (`Accept` picks text or binary) |
//! | `GET /health`      | health snapshot             |
//! | `GET /metrics`     | counters + latency percentiles |
//!
//! The body is specification source; `x-slif-seed` and
//! `x-slif-iterations` tune exploration.
//!
//! ## Status taxonomy
//!
//! Every refusal is distinct, so a client (or the soak test) can tell
//! *which* guard fired from the status alone:
//!
//! | Status | Meaning |
//! |--------|---------|
//! | 400    | malformed framing or truncated body |
//! | 401    | missing/unknown API key |
//! | 404    | unknown path |
//! | 405    | wrong method for a known path |
//! | 408    | read deadline expired mid-request (slow loris) |
//! | 409    | tenant at its edit-session cap |
//! | 410    | draining — [`Rejected::ShuttingDown`] |
//! | 413    | oversized (HTTP body guard or [`Rejected::TooLarge`]); a `POST /designs` body past the read budget never enters memory |
//! | 422    | spec/core/explore/format error — the job ran and refused; interchange bytes that are damaged, over a format cap, or fail the content-key check land here |
//! | 429    | tenant quota exhausted (`Retry-After`) |
//! | 500    | job panicked (isolated; the server stays up) |
//! | 503    | [`Rejected::QueueFull`] (`Retry-After`) |
//! | 504    | job deadline expired in the service |
//!
//! 410 (not 503) for drain keeps every [`Rejected`] variant on its own
//! code: `QueueFull` is "retry this same server soon", `ShuttingDown`
//! is "this instance is gone, go elsewhere".

use crate::http::Response;
use slif_analyze::AnalysisConfig;
use slif_core::Design;
use slif_estimate::EstimatorConfig;
use slif_explore::{Algorithm, Objectives};
use slif_frontend::{
    all_software_partition, build_design, try_allocate_proc_asic, ProcAsicArchitecture,
};
use slif_runtime::{Job, JobError, JobOutput, Rejected, RunLimits};
use slif_speclang::{parse_with_limits, resolve};
use slif_store::DesignCache;
use slif_techlib::TechnologyLibrary;

/// Header carrying the API key.
pub const HDR_API_KEY: &str = "x-api-key";
/// Header carrying the exploration RNG seed (u64, default 0).
pub const HDR_SEED: &str = "x-slif-seed";
/// Header carrying the requested exploration iterations (u64).
pub const HDR_ITERATIONS: &str = "x-slif-iterations";
/// Header carrying an edit's start byte offset (`POST /sessions/{id}/edit`).
pub const HDR_EDIT_START: &str = "x-slif-edit-start";
/// Header carrying an edit's end byte offset (exclusive).
pub const HDR_EDIT_END: &str = "x-slif-edit-end";

/// A job-running endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/parse`
    Parse,
    /// `POST /v1/estimate`
    Estimate,
    /// `POST /v1/explore`
    Explore,
    /// `POST /v1/analyze`
    Analyze,
}

impl Endpoint {
    /// Maps a request path to its endpoint.
    pub fn from_path(path: &str) -> Option<Self> {
        match path {
            "/v1/parse" => Some(Self::Parse),
            "/v1/estimate" => Some(Self::Estimate),
            "/v1/explore" => Some(Self::Explore),
            "/v1/analyze" => Some(Self::Analyze),
            _ => None,
        }
    }

    /// The kebab-case kind name, matching [`Job::kind`] for the job this
    /// endpoint submits.
    pub fn kind(self) -> &'static str {
        match self {
            Self::Parse => "parse-spec",
            Self::Estimate => "estimate",
            Self::Explore => "explore",
            Self::Analyze => "analyze",
        }
    }

    /// All endpoints, for iteration in the load generator.
    pub const ALL: [Endpoint; 4] = [
        Endpoint::Parse,
        Endpoint::Estimate,
        Endpoint::Explore,
        Endpoint::Analyze,
    ];

    /// A stable one-byte code for journal payloads.
    pub fn code(self) -> u8 {
        match self {
            Self::Parse => 0,
            Self::Estimate => 1,
            Self::Explore => 2,
            Self::Analyze => 3,
        }
    }

    /// The endpoint for a journal code, `None` for an unknown byte.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Parse),
            1 => Some(Self::Estimate),
            2 => Some(Self::Explore),
            3 => Some(Self::Analyze),
            _ => None,
        }
    }
}

/// Per-request tuning knobs, parsed from headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireParams {
    /// Exploration RNG seed.
    pub seed: u64,
    /// Requested exploration iterations (the server caps this).
    pub iterations: u64,
}

impl Default for WireParams {
    fn default() -> Self {
        Self {
            seed: 0,
            iterations: 64,
        }
    }
}

impl WireParams {
    /// Parses params from header lookups; absent or unparsable headers
    /// keep their defaults (hostile headers must not 500).
    pub fn from_headers<'a>(mut header: impl FnMut(&str) -> Option<&'a str>) -> Self {
        let mut p = Self::default();
        if let Some(v) = header(HDR_SEED).and_then(|v| v.parse().ok()) {
            p.seed = v;
        }
        if let Some(v) = header(HDR_ITERATIONS).and_then(|v| v.parse().ok()) {
            p.iterations = v;
        }
        p
    }
}

/// Builds the job an endpoint runs over specification `source`.
///
/// This is the *entire* request semantics: the server submits exactly
/// this job, and the soak test runs exactly this job inline. Estimate,
/// explore, and analyze all operate on the proc+ASIC design compiled
/// from the source, starting from the all-software partition.
///
/// # Errors
///
/// A rendered diagnostic when the source fails to parse, resolve, or
/// allocate — refused before queueing (wire 422).
pub fn job_for(
    endpoint: Endpoint,
    source: &str,
    params: &WireParams,
    limits: &RunLimits,
    max_iterations: u64,
) -> Result<Job, String> {
    job_for_with_cache(endpoint, source, params, limits, max_iterations, None)
}

/// [`job_for`] with an optional compiled-design cache.
///
/// For the compiling endpoints (estimate/explore/analyze) a verified
/// cache hit skips the parse→resolve→build→allocate pipeline entirely:
/// the cached canonical design already contains the allocated proc+ASIC
/// architecture, which is reconstructed by component-name lookup (the
/// allocator is not idempotent, so it must not run again). Because the
/// canonical codec round-trips designs exactly, a warm job is equal to
/// the cold-compiled one and produces bit-identical output.
///
/// A miss falls back to the cold pipeline and populates the cache;
/// cache write failures are swallowed — caching is an optimization, not
/// a correctness dependency.
///
/// # Errors
///
/// Same as [`job_for`]: a rendered diagnostic for a source that fails
/// the cold pipeline. A damaged cache never produces an error here.
pub fn job_for_with_cache(
    endpoint: Endpoint,
    source: &str,
    params: &WireParams,
    limits: &RunLimits,
    max_iterations: u64,
    cache: Option<&DesignCache>,
) -> Result<Job, String> {
    if endpoint == Endpoint::Parse {
        return Ok(Job::ParseSpec {
            source: source.to_owned(),
        });
    }
    if let Some(cache) = cache {
        if let Some(design) = cache.get(source.as_bytes()) {
            // A cached design that somehow lacks the architecture
            // components is useless; treat it as a miss.
            if let Some(arch) = arch_from_design(&design) {
                return Ok(job_from_parts(
                    endpoint,
                    source,
                    design,
                    arch,
                    params,
                    max_iterations,
                ));
            }
        }
    }
    let (design, arch) = compile_allocated(source, limits)?;
    if let Some(cache) = cache {
        drop(cache.put(source.as_bytes(), &design));
    }
    Ok(job_from_parts(
        endpoint,
        source,
        design,
        arch,
        params,
        max_iterations,
    ))
}

/// The cold pipeline: parse → resolve → build → allocate the proc+ASIC
/// architecture.
fn compile_allocated(
    source: &str,
    limits: &RunLimits,
) -> Result<(Design, ProcAsicArchitecture), String> {
    let spec = parse_with_limits(source, &limits.parse).map_err(|e| e.to_string())?;
    let rs = resolve(spec).map_err(|e| e.to_string())?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = try_allocate_proc_asic(&mut design).map_err(|e| e.to_string())?;
    Ok((design, arch))
}

/// Reconstructs the allocated architecture from the component names
/// [`try_allocate_proc_asic`] assigns. `None` if any component is
/// missing (the design did not come through that allocator).
fn arch_from_design(design: &Design) -> Option<ProcAsicArchitecture> {
    Some(ProcAsicArchitecture {
        cpu: design.processor_by_name("cpu0")?,
        asic: design.processor_by_name("asic0")?,
        mem: design.memory_by_name("mem0")?,
        bus: design.bus_by_name("sysbus")?,
    })
}

fn job_from_parts(
    endpoint: Endpoint,
    source: &str,
    design: Design,
    arch: ProcAsicArchitecture,
    params: &WireParams,
    max_iterations: u64,
) -> Job {
    let partition = all_software_partition(&design, arch);
    match endpoint {
        Endpoint::Parse => unreachable!("parse never compiles a design"),
        Endpoint::Estimate => Job::Estimate {
            design,
            partition,
            config: EstimatorConfig::new(),
        },
        Endpoint::Explore => Job::Explore {
            design,
            start: partition,
            objectives: Objectives::new(),
            algorithm: Algorithm::RandomSearch {
                iterations: params.iterations.min(max_iterations),
                seed: params.seed,
            },
        },
        Endpoint::Analyze => Job::Analyze {
            design,
            partition: Some(partition),
            config: AnalysisConfig::new(),
            // Carrying the source enables the flow-sensitive passes
            // (A006–A009) and in-spec `@allow` suppressions server-side.
            source: Some(source.to_owned()),
        },
    }
}

/// Renders a successful job output as the deterministic response body.
///
/// Determinism is load-bearing: the soak test compares these bytes
/// across the wire against an inline run. Never panics — an
/// unrecognized (future) output variant renders as a placeholder.
pub fn render_output(output: &JobOutput) -> String {
    match output {
        JobOutput::Parsed {
            canonical,
            behaviors,
        } => format!("parsed: {behaviors} behaviors\n\n{canonical}"),
        JobOutput::Compiled {
            nodes,
            ports,
            channels,
            classes,
        } => format!(
            "compiled: {nodes} nodes, {ports} ports, {channels} channels, {classes} classes\n"
        ),
        JobOutput::Estimated(report) => format!("{report}"),
        JobOutput::Explored(sr) => format!(
            "explored: stop {}, cost {}, evaluations {}, checkpoints {}\n",
            sr.stop, sr.result.cost, sr.result.evaluations, sr.checkpoints_written
        ),
        JobOutput::Analyzed(report) => format!("{report}"),
        JobOutput::Imported {
            encoding,
            design,
            partition,
            warnings,
            verified,
        } => format!(
            "imported: {encoding} design \"{}\" ({} nodes, {} channels{}), {warnings} warnings, {}\n",
            design.name(),
            design.graph().node_count(),
            design.graph().channel_count(),
            if partition.is_some() {
                ", with partition"
            } else {
                ""
            },
            if *verified { "verified" } else { "unverified" },
        ),
        JobOutput::Exported { encoding, bytes } => {
            format!("exported: {} bytes of {encoding}\n", bytes.len())
        }
        _ => "ok (unrenderable output kind)\n".to_owned(),
    }
}

/// Maps a runtime admission refusal to its (distinct) wire response.
pub fn response_for_rejection(rejection: &Rejected) -> Response {
    match rejection {
        Rejected::QueueFull { capacity } => Response::new(
            503,
            "Service Unavailable",
            format!("queue full (capacity {capacity}); retry later\n"),
        )
        .with_retry_after(1),
        Rejected::TooLarge {
            what,
            limit,
            actual,
        } => Response::new(
            413,
            "Payload Too Large",
            format!("too large: {what} {actual} exceeds limit {limit}\n"),
        ),
        Rejected::ShuttingDown => Response::new(
            410,
            "Gone",
            "server is draining; resubmit elsewhere\n",
        ),
        // `Rejected` is non_exhaustive upstream-compatible: refuse
        // conservatively rather than panic on a future variant.
        #[allow(unreachable_patterns)]
        _ => Response::new(503, "Service Unavailable", "rejected\n"),
    }
}

/// Maps a typed job failure to its wire response: the job *ran* and
/// refused (422), or it panicked and was isolated (500).
pub fn response_for_error(error: &JobError) -> Response {
    match error {
        JobError::Spec(_) | JobError::Core(_) | JobError::Explore(_) | JobError::Format(_) => {
            Response::new(422, "Unprocessable Entity", format!("{error}\n"))
        }
        JobError::Panicked { .. } => Response::new(
            500,
            "Internal Server Error",
            format!("{error}\n"),
        ),
        #[allow(unreachable_patterns)]
        _ => Response::new(500, "Internal Server Error", format!("{error}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

    #[test]
    fn endpoints_round_trip_paths() {
        for ep in Endpoint::ALL {
            let path = match ep {
                Endpoint::Parse => "/v1/parse",
                Endpoint::Estimate => "/v1/estimate",
                Endpoint::Explore => "/v1/explore",
                Endpoint::Analyze => "/v1/analyze",
            };
            assert_eq!(Endpoint::from_path(path), Some(ep));
        }
        assert_eq!(Endpoint::from_path("/v1/nope"), None);
    }

    #[test]
    fn params_parse_from_headers_with_hostile_fallbacks() {
        let headers = [(HDR_SEED, "17"), (HDR_ITERATIONS, "not-a-number")];
        let p = WireParams::from_headers(|name| {
            headers.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
        });
        assert_eq!(p.seed, 17);
        assert_eq!(p.iterations, WireParams::default().iterations);
    }

    #[test]
    fn every_endpoint_builds_a_runnable_job() {
        let limits = RunLimits::default();
        for ep in Endpoint::ALL {
            let job = job_for(ep, GOOD_SPEC, &WireParams::default(), &limits, 16)
                .unwrap_or_else(|e| panic!("{}: {e}", ep.kind()));
            assert_eq!(job.kind(), ep.kind());
            let out = job
                .run_inline(&limits)
                .unwrap_or_else(|e| panic!("{}: {e}", ep.kind()));
            let body = render_output(&out);
            assert!(!body.is_empty());
            // Rendering is deterministic for identical jobs.
            let out2 = job_for(ep, GOOD_SPEC, &WireParams::default(), &limits, 16)
                .and_then(|j| j.run_inline(&limits).map_err(|e| e.to_string()))
                .unwrap_or_else(|e| panic!("{}: {e}", ep.kind()));
            assert_eq!(body, render_output(&out2), "{}", ep.kind());
        }
    }

    #[test]
    fn endpoint_codes_round_trip() {
        for ep in Endpoint::ALL {
            assert_eq!(Endpoint::from_code(ep.code()), Some(ep));
        }
        assert_eq!(Endpoint::from_code(200), None);
    }

    /// The tentpole guarantee at the wire layer: a job built from a
    /// verified cache hit is *equal* to the cold-compiled job, so warm
    /// responses are bit-identical to cold ones.
    #[test]
    fn cache_hit_builds_a_job_identical_to_cold_compile() {
        let dir = std::env::temp_dir().join(format!("slif-wire-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DesignCache::open(&dir).unwrap();
        let limits = RunLimits::default();
        for ep in [Endpoint::Estimate, Endpoint::Explore, Endpoint::Analyze] {
            let cold = job_for(ep, GOOD_SPEC, &WireParams::default(), &limits, 16).unwrap();
            // First cached call: a miss that populates.
            let populate = job_for_with_cache(
                ep,
                GOOD_SPEC,
                &WireParams::default(),
                &limits,
                16,
                Some(&cache),
            )
            .unwrap();
            // Second: a verified hit that skips the pipeline.
            let warm = job_for_with_cache(
                ep,
                GOOD_SPEC,
                &WireParams::default(),
                &limits,
                16,
                Some(&cache),
            )
            .unwrap();
            let design_of = |job: &Job| -> Design {
                match job {
                    Job::Estimate { design, .. }
                    | Job::Explore { design, .. }
                    | Job::Analyze { design, .. } => design.clone(),
                    other => panic!("job without a design: {other:?}"),
                }
            };
            assert_eq!(design_of(&cold), design_of(&populate), "{}", ep.kind());
            assert_eq!(design_of(&cold), design_of(&warm), "{}", ep.kind());
            assert_eq!(
                slif_store::encode_design(&design_of(&cold)),
                slif_store::encode_design(&design_of(&warm)),
                "{}: warm design not canonically identical",
                ep.kind()
            );
            let cold_body = render_output(&cold.run_inline(&limits).unwrap());
            let warm_body = render_output(&warm.run_inline(&limits).unwrap());
            assert_eq!(cold_body, warm_body, "{}: warm output diverged", ep.kind());
        }
        assert!(cache.stats().hits >= 2, "{:?}", cache.stats());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn explore_iterations_are_capped() {
        let limits = RunLimits::default();
        let params = WireParams {
            seed: 1,
            iterations: 1_000_000,
        };
        match job_for(Endpoint::Explore, GOOD_SPEC, &params, &limits, 8) {
            Ok(Job::Explore {
                algorithm: Algorithm::RandomSearch { iterations, seed },
                ..
            }) => {
                assert_eq!(iterations, 8);
                assert_eq!(seed, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_spec_is_refused_before_queueing() {
        let err = job_for(
            Endpoint::Estimate,
            "system ; process {",
            &WireParams::default(),
            &RunLimits::default(),
            16,
        )
        .unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn rejections_map_to_distinct_statuses() {
        let full = response_for_rejection(&Rejected::QueueFull { capacity: 4 });
        let large = response_for_rejection(&Rejected::TooLarge {
            what: "spec bytes",
            limit: 10,
            actual: 99,
        });
        let drain = response_for_rejection(&Rejected::ShuttingDown);
        assert_eq!(full.status, 503);
        assert_eq!(full.retry_after, Some(1));
        assert_eq!(large.status, 413);
        assert_eq!(drain.status, 410);
        let statuses = [full.status, large.status, drain.status];
        let mut unique = statuses.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), statuses.len(), "statuses must be distinct");
    }

    #[test]
    fn errors_map_panics_to_500_and_refusals_to_422() {
        assert_eq!(
            response_for_error(&JobError::Spec("bad".into())).status,
            422
        );
        assert_eq!(
            response_for_error(&JobError::Panicked {
                message: "boom".into()
            })
            .status,
            500
        );
    }
}
