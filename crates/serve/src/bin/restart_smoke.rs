//! The `restart_smoke` binary: a cross-process crash-restart check for
//! the durable store, used by `verify.sh`.
//!
//! ```text
//! restart_smoke [--store-dir PATH]
//! ```
//!
//! It spawns a real `slif-serve` process (found next to this binary)
//! with a durable store, submits a job over the wire and records the
//! acknowledged body plus its `x-slif-job-id`, then SIGKILLs the server
//! — no drain, no flush, the hard way down. A second server process
//! over the same store directory must serve `GET /jobs/{id}` with the
//! byte-identical body, and a repeat of the same spec must hit the
//! compiled-design cache. Exits nonzero on any violation.

use slif_serve::http::read_response;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

/// A spawned slif-serve with its stdin held open (EOF would drain it).
struct ServeProc {
    child: Child,
    stdin: std::process::ChildStdin,
    addr: String,
}

fn spawn_serve(store_dir: &str) -> Result<ServeProc, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let serve = exe
        .parent()
        .ok_or("current_exe has no parent directory")?
        .join("slif-serve");
    let mut child = Command::new(&serve)
        .args(["--addr", "127.0.0.1:0", "--store-dir", store_dir])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", serve.display()))?;
    let stdin = child.stdin.take().ok_or("child stdin not piped")?;
    let stdout = child.stdout.take().ok_or("child stdout not piped")?;
    let mut lines = BufReader::new(stdout).lines();
    // The first line announces the bound (ephemeral) address.
    for line in &mut lines {
        let line = line.map_err(|e| format!("reading child stdout: {e}"))?;
        if let Some(addr) = line.strip_prefix("slif-serve listening on ") {
            // Drain the rest of the banner in the background so the
            // child never blocks on a full stdout pipe.
            let addr = addr.trim().to_owned();
            std::thread::spawn(move || for _ in lines {});
            return Ok(ServeProc { child, stdin, addr });
        }
    }
    Err("server exited before announcing its address".to_owned())
}

/// Status, headers, body — what `read_response` yields.
type WireReply = (u16, Vec<(String, String)>, Vec<u8>);

fn request(addr: &str, raw: &[u8]) -> Result<WireReply, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    // The acceptor may not be up the instant the banner prints; retry
    // connection refusals briefly.
    loop {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                s.write_all(raw).map_err(|e| format!("write: {e}"))?;
                return read_response(&mut s).map_err(|e| format!("read_response: {e:?}"));
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\n\r\n").into_bytes()
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn run(store_dir: &str) -> Result<(), String> {
    // Phase 1: submit a job, record the acknowledged result.
    let mut server = spawn_serve(store_dir)?;
    let (status, headers, body) = request(&server.addr, &post("/v1/estimate", SPEC))?;
    if status != 200 {
        return Err(format!(
            "submit returned {status}: {}",
            String::from_utf8_lossy(&body)
        ));
    }
    let id: u64 = header(&headers, "x-slif-job-id")
        .ok_or("response lacks x-slif-job-id")?
        .parse()
        .map_err(|_| "unparsable x-slif-job-id")?;
    println!("restart_smoke: job {id} acknowledged ({} bytes)", body.len());

    // Phase 2: SIGKILL — the server gets no chance to flush anything it
    // did not already fsync before acknowledging.
    server.child.kill().map_err(|e| format!("kill: {e}"))?;
    drop(server.child.wait());
    drop(server.stdin);
    println!("restart_smoke: server killed without drain");

    // Phase 3: a fresh process over the same store must replay the
    // acknowledged result byte for byte.
    let mut server = spawn_serve(store_dir)?;
    let (status, _, replayed) = request(&server.addr, &get(&format!("/jobs/{id}")))?;
    if status != 200 {
        return Err(format!(
            "GET /jobs/{id} after restart returned {status}: {}",
            String::from_utf8_lossy(&replayed)
        ));
    }
    if replayed != body {
        return Err(format!(
            "replayed body diverged from the acknowledged one:\n-- acknowledged --\n{}\n-- replayed --\n{}",
            String::from_utf8_lossy(&body),
            String::from_utf8_lossy(&replayed)
        ));
    }
    println!("restart_smoke: journalled result survived the restart bit for bit");

    // Phase 4: the same spec again — served warm from the design cache,
    // still byte-identical.
    let (status, _, warm) = request(&server.addr, &post("/v1/estimate", SPEC))?;
    if status != 200 || warm != body {
        return Err(format!(
            "warm resubmit returned {status}, identical: {}",
            warm == body
        ));
    }
    let (_, _, metrics) = request(&server.addr, &get("/metrics"))?;
    let text = String::from_utf8_lossy(&metrics);
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("slif_store_cache_hits_total "))
        .and_then(|v| v.parse().ok())
        .ok_or("metrics lack slif_store_cache_hits_total")?;
    if hits == 0 {
        return Err("cache reported no hits for a repeated spec".to_owned());
    }
    println!("restart_smoke: warm cache hit ({hits}) matched cold body");
    drop(server.stdin); // EOF: graceful drain
    drop(server.child.wait());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store-dir" => store_dir = it.next().cloned(),
            other => {
                eprintln!("restart_smoke: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let fallback = std::env::temp_dir()
        .join(format!("slif-restart-smoke-{}", std::process::id()))
        .display()
        .to_string();
    let store_dir = store_dir.unwrap_or(fallback);
    let _ = std::fs::remove_dir_all(&store_dir);
    match run(&store_dir) {
        Ok(()) => {
            let _ = std::fs::remove_dir_all(&store_dir);
            println!("restart_smoke: OK");
        }
        Err(msg) => {
            eprintln!("restart_smoke: FAILED: {msg}");
            std::process::exit(1);
        }
    }
}
