//! The `loadgen` binary: hammer a `slif-serve` instance with a mixed,
//! fault-injected request stream and write `BENCH_serve.json`.
//!
//! ```text
//! loadgen --self-serve [--requests N] [--clients N] [--fault-rate F]
//!         [--seed N] [--out PATH]
//! loadgen --addr HOST:PORT [...]
//! ```
//!
//! `--self-serve` binds a server in-process on an ephemeral port with
//! three tenants (two healthy, one quota-capped flood target) and tears
//! it down after the run — the mode `verify.sh` uses, so no port
//! coordination is needed. Exits nonzero when any response violated the
//! wire contract (wrong status, or a clean body that was not
//! byte-identical to the inline run) or the server caught panics.

use slif_runtime::{RunLimits, ServiceConfig};
use slif_serve::loadgen::{run, LoadgenConfig};
use slif_serve::server::{Server, ServerConfig};
use slif_serve::tenant::TenantSpec;
use std::time::Duration;

struct Args {
    self_serve: bool,
    addr: Option<String>,
    requests: usize,
    clients: usize,
    fault_rate: f64,
    seed: u64,
    out: Option<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        self_serve: false,
        addr: None,
        requests: 2000,
        clients: 8,
        fault_rate: 0.35,
        seed: 42,
        out: None,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--self-serve" => args.self_serve = true,
            "--addr" => args.addr = Some(value("--addr")?.clone()),
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "bad --requests value".to_owned())?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "bad --clients value".to_owned())?;
            }
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|_| "bad --fault-rate value".to_owned())?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_owned())?;
            }
            "--out" => args.out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.self_serve == args.addr.is_some() {
        return Err("pass exactly one of --self-serve or --addr".to_owned());
    }
    Ok(args)
}

/// The tenant roster the self-serve mode configures: two healthy keys
/// for clean traffic plus one quota-capped key the flood faults hammer.
fn self_serve_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("alpha", "key-alpha").with_weight(3),
        TenantSpec::new("beta", "key-beta").with_weight(1),
        TenantSpec::new("flood", "key-flood")
            .with_weight(1)
            .with_quota(2.0, 4.0),
    ]
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            std::process::exit(2);
        }
    };
    let read_timeout = Duration::from_millis(500);
    let limits = RunLimits::default();
    let explore_cap = 64;

    // Self-serve mode: an in-process server on an ephemeral port.
    let server = if args.self_serve {
        let config = ServerConfig::new()
            .with_conn_workers(6)
            .with_io_timeouts(read_timeout, Duration::from_secs(2))
            .with_max_explore_iterations(explore_cap)
            .with_runtime(
                ServiceConfig::new()
                    .with_workers(4)
                    .with_queue_capacity(256)
                    .with_limits(limits),
            );
        let config = self_serve_tenants()
            .into_iter()
            .fold(config, ServerConfig::with_tenant);
        match Server::bind(config) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("loadgen: self-serve bind failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let addr = match (&server, &args.addr) {
        (Some(s), _) => s.addr(),
        (None, Some(a)) => match a.parse() {
            Ok(addr) => addr,
            Err(_) => {
                eprintln!("loadgen: unparsable --addr {a:?}");
                std::process::exit(2);
            }
        },
        (None, None) => unreachable!("parse_args enforces one mode"),
    };

    let mut config = LoadgenConfig::new(addr);
    config.requests = args.requests;
    config.clients = args.clients.max(1);
    config.fault_rate = args.fault_rate;
    config.seed = args.seed;
    config.limits = limits;
    config.explore_cap = explore_cap;
    config.server_read_timeout = read_timeout;
    if args.self_serve {
        config.keys = vec!["key-alpha".to_owned(), "key-beta".to_owned()];
        config.flood_key = Some("key-flood".to_owned());
    }

    eprintln!(
        "loadgen: {} requests, {} clients, fault rate {:.0}%, seed {} → {}",
        config.requests,
        config.clients,
        config.fault_rate * 100.0,
        config.seed,
        addr
    );
    let report = run(&config);
    eprintln!(
        "loadgen: {} requests in {:.2} s ({:.0} rps), {} aborts, {} violations",
        report.total,
        report.wall.as_secs_f64(),
        report.throughput_rps(),
        report.client_aborts,
        report.violations.len()
    );
    for v in report.violations.iter().take(10) {
        eprintln!("loadgen: VIOLATION: {v}");
    }

    let mut failed = !report.violations.is_empty();
    if let Some(server) = server {
        let health = server.health();
        if health.worker_panics > 0 {
            // Clean traffic only — any caught panic means a fault leaked
            // past the wire layer into a job.
            eprintln!(
                "loadgen: server caught {} worker panic(s) from wire traffic",
                health.worker_panics
            );
            failed = true;
        }
        eprintln!("loadgen: server health: {health}");
        server.shutdown();
    }

    let json = report.to_json();
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: cannot write {path}: {e}");
            failed = true;
        } else {
            eprintln!("loadgen: wrote {path}");
        }
    } else {
        println!("{json}");
    }
    std::process::exit(i32::from(failed));
}
