//! The `slif-serve` binary: bind the wire-facing SLIF server and run
//! until stdin closes (or reads `quit`), then drain gracefully.
//!
//! ```text
//! slif-serve [--addr HOST:PORT] [--workers N] [--conn-workers N]
//!            [--read-timeout-ms N] [--max-body BYTES] [--store-dir PATH]
//!            [--tenant NAME:KEY:WEIGHT:RATE:BURST]...
//! ```
//!
//! With no `--tenant` flags the server runs open (no API keys). Each
//! `--tenant` adds a key with a fair-share weight and a token-bucket
//! quota (requests/second steady state, burst ceiling). `--store-dir`
//! enables crash-safe persistence: every job is journalled before it
//! runs and its result fsynced before the acknowledgement, so
//! `GET /jobs/{id}` (the id is in every `x-slif-job-id` response
//! header) survives even a SIGKILL restart; repeat specs are served
//! from a content-addressed compiled-design cache.

use slif_runtime::ServiceConfig;
use slif_serve::server::{Server, ServerConfig};
use slif_serve::tenant::TenantSpec;
use std::time::Duration;

fn parse_tenant(arg: &str) -> Result<TenantSpec, String> {
    let parts: Vec<&str> = arg.split(':').collect();
    if parts.len() != 5 {
        return Err(format!(
            "--tenant wants NAME:KEY:WEIGHT:RATE:BURST, got {arg:?}"
        ));
    }
    let weight: u32 = parts[2]
        .parse()
        .map_err(|_| format!("bad tenant weight {:?}", parts[2]))?;
    let rate: f64 = parts[3]
        .parse()
        .map_err(|_| format!("bad tenant rate {:?}", parts[3]))?;
    let burst: f64 = parts[4]
        .parse()
        .map_err(|_| format!("bad tenant burst {:?}", parts[4]))?;
    Ok(TenantSpec::new(parts[0], parts[1])
        .with_weight(weight)
        .with_quota(rate, burst))
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::new();
    let mut runtime = ServiceConfig::new().with_workers(4);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--workers" => {
                runtime = runtime.with_workers(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "bad --workers value".to_owned())?,
                );
            }
            "--conn-workers" => {
                config = config.with_conn_workers(
                    value("--conn-workers")?
                        .parse()
                        .map_err(|_| "bad --conn-workers value".to_owned())?,
                );
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --read-timeout-ms value".to_owned())?;
                let write = config.write_timeout;
                config = config.with_io_timeouts(Duration::from_millis(ms.max(1)), write);
            }
            "--max-body" => {
                config = config.with_max_request_bytes(
                    value("--max-body")?
                        .parse()
                        .map_err(|_| "bad --max-body value".to_owned())?,
                );
            }
            "--store-dir" => config = config.with_store_dir(value("--store-dir")?.clone()),
            "--tenant" => config = config.with_tenant(parse_tenant(value("--tenant")?)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config.with_runtime(runtime))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("slif-serve: {msg}");
            std::process::exit(2);
        }
    };
    let tenants = config.tenants.len();
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("slif-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("slif-serve listening on {}", server.addr());
    if tenants == 0 {
        println!("open server (no API keys); POST specs to /v1/parse|estimate|explore|analyze");
    } else {
        println!("{tenants} tenant(s) configured; requests need x-api-key");
    }
    println!("GET /health and /metrics for observability; EOF or 'quit' on stdin drains");
    // Block on stdin: EOF or a `quit` line triggers the graceful drain.
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("slif-serve draining…");
    server.shutdown();
    println!("slif-serve stopped cleanly");
}
