//! API-key tenancy: authentication, token-bucket quotas, fair-share
//! weights.
//!
//! A [`TenantRegistry`] maps `x-api-key` values to tenants. Each tenant
//! carries a fair-share **weight** (forwarded into the runtime queue's
//! weighted dequeue) and a **token bucket** (`rate_per_sec` steady-state,
//! `burst` ceiling) enforced *before* a job is built, so a quota-flooding
//! tenant costs the server one bucket check per request, not a parse.
//!
//! An **empty registry is an open server**: every request is admitted as
//! the anonymous tenant 0 with weight 1 and no quota. This keeps local
//! use frictionless; any configured tenant makes keys mandatory.

use std::time::Instant;

/// One tenant's static configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// A human-readable name, for `/metrics` and logs.
    pub name: String,
    /// The API key presented in `x-api-key`.
    pub key: String,
    /// Fair-share weight in the runtime queue (floor 1).
    pub weight: u32,
    /// Steady-state admitted requests per second.
    pub rate_per_sec: f64,
    /// Bucket ceiling: how many requests may land at once after idling.
    pub burst: f64,
}

impl TenantSpec {
    /// A tenant with weight 1 and an effectively unlimited quota.
    pub fn new(name: impl Into<String>, key: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            key: key.into(),
            weight: 1,
            rate_per_sec: 1e9,
            burst: 1e9,
        }
    }

    /// Sets the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the token-bucket quota.
    #[must_use]
    pub fn with_quota(mut self, rate_per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = rate_per_sec.max(f64::MIN_POSITIVE);
        self.burst = burst.max(1.0);
        self
    }
}

/// A successful admission: which tenant, at what queue weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The tenant id to bill the job to (index into the registry, or 0
    /// for the anonymous tenant of an open server).
    pub tenant: u32,
    /// The fair-share weight to submit with.
    pub weight: u32,
}

/// Why a request was refused at the tenancy gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// No key, or a key matching no tenant (wire 401).
    UnknownKey,
    /// The tenant's token bucket is empty (wire 429 + `Retry-After`).
    QuotaExhausted {
        /// Whole seconds until one token will have refilled.
        retry_after_secs: u64,
    },
}

/// Constant-time byte equality: for equal-length inputs the cost and
/// memory-access pattern are independent of *where* the inputs differ,
/// so response timing cannot be used to guess an API key byte by byte.
/// (The length itself is not secret — it is visible on the wire.)
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    bucket: std::sync::Mutex<Bucket>,
}

/// The set of configured tenants and their live quota state.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<TenantState>,
}

impl TenantRegistry {
    /// Builds a registry; an empty `specs` list means an open server.
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        let now = Instant::now();
        Self {
            tenants: specs
                .into_iter()
                .map(|spec| TenantState {
                    bucket: std::sync::Mutex::new(Bucket {
                        tokens: spec.burst,
                        last: now,
                    }),
                    spec,
                })
                .collect(),
        }
    }

    /// Whether the server runs open (no tenants configured, no keys
    /// required).
    pub fn is_open(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The configured tenant names, in id order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.spec.name.as_str()).collect()
    }

    /// Admits or refuses one request presenting `key`.
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownKey`] for a missing or unknown key (open
    /// servers never return this), [`AdmitError::QuotaExhausted`] when
    /// the tenant's bucket is empty.
    pub fn admit(&self, key: Option<&str>) -> Result<Admission, AdmitError> {
        if self.is_open() {
            return Ok(Admission { tenant: 0, weight: 1 });
        }
        let key = key.ok_or(AdmitError::UnknownKey)?;
        // Compare against every tenant, constant-time per candidate and
        // without early exit, so timing reveals neither a matching
        // key's registry position nor how much of a guess matched.
        let mut found: Option<usize> = None;
        for (i, t) in self.tenants.iter().enumerate() {
            if ct_eq(t.spec.key.as_bytes(), key.as_bytes()) && found.is_none() {
                found = Some(i);
            }
        }
        let idx = found.ok_or(AdmitError::UnknownKey)?;
        let state = &self.tenants[idx];
        let mut bucket = crate::lock(&state.bucket);
        let now = Instant::now();
        let dt = now.duration_since(bucket.last).as_secs_f64();
        bucket.last = now;
        bucket.tokens = (bucket.tokens + dt * state.spec.rate_per_sec).min(state.spec.burst);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            #[allow(clippy::cast_possible_truncation)]
            Ok(Admission {
                tenant: idx as u32,
                weight: state.spec.weight,
            })
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / state.spec.rate_per_sec).ceil().max(1.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Err(AdmitError::QuotaExhausted {
                retry_after_secs: secs.min(3600.0) as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_registry_admits_everyone_as_anonymous() {
        let reg = TenantRegistry::new(Vec::new());
        assert!(reg.is_open());
        assert_eq!(
            reg.admit(None),
            Ok(Admission { tenant: 0, weight: 1 })
        );
        assert_eq!(
            reg.admit(Some("anything")),
            Ok(Admission { tenant: 0, weight: 1 })
        );
    }

    #[test]
    fn configured_registry_requires_a_known_key() {
        let reg = TenantRegistry::new(vec![
            TenantSpec::new("alpha", "ka").with_weight(3),
            TenantSpec::new("beta", "kb"),
        ]);
        assert_eq!(reg.admit(None), Err(AdmitError::UnknownKey));
        assert_eq!(reg.admit(Some("nope")), Err(AdmitError::UnknownKey));
        assert_eq!(
            reg.admit(Some("ka")),
            Ok(Admission { tenant: 0, weight: 3 })
        );
        assert_eq!(
            reg.admit(Some("kb")),
            Ok(Admission { tenant: 1, weight: 1 })
        );
    }

    #[test]
    fn ct_eq_matches_exact_keys_only() {
        assert!(ct_eq(b"secret-key", b"secret-key"));
        assert!(!ct_eq(b"secret-key", b"secret-kez"));
        assert!(!ct_eq(b"Xecret-key", b"secret-key"));
        assert!(!ct_eq(b"secret-ke", b"secret-key"));
        assert!(!ct_eq(b"", b"x"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn quota_exhausts_and_reports_retry_after() {
        let reg = TenantRegistry::new(vec![
            TenantSpec::new("limited", "kl").with_quota(0.5, 2.0)
        ]);
        assert!(reg.admit(Some("kl")).is_ok());
        assert!(reg.admit(Some("kl")).is_ok());
        match reg.admit(Some("kl")) {
            Err(AdmitError::QuotaExhausted { retry_after_secs }) => {
                // Rate 0.5/s means a full token takes 2 s to refill.
                assert!(
                    (1..=2).contains(&retry_after_secs),
                    "retry_after {retry_after_secs}"
                );
            }
            other => panic!("expected quota exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn bucket_refills_over_time() {
        let reg =
            TenantRegistry::new(vec![TenantSpec::new("fast", "kf").with_quota(1000.0, 1.0)]);
        assert!(reg.admit(Some("kf")).is_ok());
        assert!(matches!(
            reg.admit(Some("kf")),
            Err(AdmitError::QuotaExhausted { .. })
        ));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(reg.admit(Some("kf")).is_ok(), "bucket should have refilled");
    }
}
