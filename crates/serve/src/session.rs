//! Server-side incremental edit sessions.
//!
//! A [`SessionRegistry`] holds live [`slif_session::EditSession`]s keyed
//! by id. Opening a session goes through the job service (so admission,
//! fair-share weighting, and drain apply exactly as for one-shot jobs);
//! subsequent edits are applied *inline* on the connection worker — an
//! incremental edit is the cheap path by construction, and routing it
//! through the queue would cost more than the recompute itself.
//!
//! Resource bounds, hostile-client first:
//!
//! * **Per-tenant cap** — a tenant can hold at most
//!   [`SessionLimits::max_per_tenant`] sessions; the cap is enforced
//!   before the opening job is built, so a session flood costs one map
//!   lookup, not a compile.
//! * **Idle eviction** — a session untouched for
//!   [`SessionLimits::idle_ttl`] is evicted lazily on the next registry
//!   operation. No background thread: an idle *server* holds idle
//!   sessions, but the first request sweeps them.
//! * **Tenant isolation** — a session id belonging to another tenant
//!   answers *not found*, never *forbidden*: ids are not probeable.

use crate::lock;
use slif_session::{EditDelta, EditError, RecomputeTier, SessionHandle, SessionUpdate};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resource bounds for the registry.
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Live sessions one tenant may hold (floor 1, default 8).
    pub max_per_tenant: usize,
    /// Idle time after which a session is evictable (default 5 min).
    pub idle_ttl: Duration,
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self {
            max_per_tenant: 8,
            idle_ttl: Duration::from_secs(300),
        }
    }
}

/// Why a session operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionRefusal {
    /// The tenant is at its session cap (wire 409).
    CapExceeded {
        /// The configured cap.
        cap: usize,
    },
    /// No such session for this tenant (wire 404) — unknown, evicted,
    /// or owned by someone else; the three are indistinguishable on
    /// purpose.
    NotFound,
    /// The edit delta itself was invalid (wire 422); the session is
    /// untouched.
    BadDelta(EditError),
}

#[derive(Debug)]
struct Entry {
    tenant: u32,
    handle: SessionHandle,
    last_used: Instant,
}

/// A point-in-time snapshot of the `session_*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions opened over the server's lifetime.
    pub created: u64,
    /// Edits applied over the server's lifetime.
    pub edits: u64,
    /// Updates (opens or edits) that took the cold-recompile tier.
    pub full_rebuilds: u64,
    /// Sessions evicted for idleness.
    pub evicted: u64,
    /// Sessions currently live.
    pub active: u64,
}

/// The live session table plus its counters.
#[derive(Debug)]
pub struct SessionRegistry {
    limits: SessionLimits,
    entries: Mutex<HashMap<u64, Entry>>,
    next_id: AtomicU64,
    created: AtomicU64,
    edits: AtomicU64,
    full_rebuilds: AtomicU64,
    evicted: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry under `limits`.
    pub fn new(limits: SessionLimits) -> Self {
        Self {
            limits: SessionLimits {
                max_per_tenant: limits.max_per_tenant.max(1),
                idle_ttl: limits.idle_ttl,
            },
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            created: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            full_rebuilds: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Sweeps idle sessions. Called with the map lock held.
    fn sweep(&self, map: &mut HashMap<u64, Entry>) {
        let now = Instant::now();
        let before = map.len();
        map.retain(|_, e| now.duration_since(e.last_used) < self.limits.idle_ttl);
        let swept = (before - map.len()) as u64;
        if swept > 0 {
            self.evicted.fetch_add(swept, Ordering::Relaxed);
        }
    }

    /// The cheap pre-gate for `POST /sessions`: refuses a tenant at its
    /// cap *before* any parsing or compiling happens.
    ///
    /// # Errors
    ///
    /// [`SessionRefusal::CapExceeded`] at the cap.
    pub fn admit_new(&self, tenant: u32) -> Result<(), SessionRefusal> {
        let mut map = lock(&self.entries);
        self.sweep(&mut map);
        let held = map.values().filter(|e| e.tenant == tenant).count();
        if held >= self.limits.max_per_tenant {
            return Err(SessionRefusal::CapExceeded {
                cap: self.limits.max_per_tenant,
            });
        }
        Ok(())
    }

    /// Registers an opened session and returns its id. Re-checks the
    /// cap (the open job ran between [`admit_new`](Self::admit_new) and
    /// now, and other requests may have landed).
    ///
    /// # Errors
    ///
    /// [`SessionRefusal::CapExceeded`] if the tenant filled up in the
    /// meantime.
    pub fn insert(
        &self,
        tenant: u32,
        handle: SessionHandle,
        update: &SessionUpdate,
    ) -> Result<u64, SessionRefusal> {
        let mut map = lock(&self.entries);
        self.sweep(&mut map);
        let held = map.values().filter(|e| e.tenant == tenant).count();
        if held >= self.limits.max_per_tenant {
            return Err(SessionRefusal::CapExceeded {
                cap: self.limits.max_per_tenant,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(
            id,
            Entry {
                tenant,
                handle,
                last_used: Instant::now(),
            },
        );
        self.created.fetch_add(1, Ordering::Relaxed);
        if update.tier == RecomputeTier::Recompiled {
            self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        Ok(id)
    }

    /// Applies one edit to session `id` as `tenant`.
    ///
    /// The registry lock is *not* held while the edit recomputes: the
    /// handle is cloned out, the session locked on its own mutex, and
    /// `last_used` refreshed afterwards — so one tenant's slow edit
    /// never blocks another tenant's session table operations.
    ///
    /// # Errors
    ///
    /// [`SessionRefusal::NotFound`] for an unknown/foreign/evicted id,
    /// [`SessionRefusal::BadDelta`] for an out-of-bounds or
    /// boundary-splitting delta (session untouched).
    pub fn edit(
        &self,
        id: u64,
        tenant: u32,
        delta: &EditDelta,
    ) -> Result<SessionUpdate, SessionRefusal> {
        let handle = {
            let mut map = lock(&self.entries);
            self.sweep(&mut map);
            match map.get(&id) {
                Some(e) if e.tenant == tenant => e.handle.clone(),
                _ => return Err(SessionRefusal::NotFound),
            }
        };
        let update = handle
            .lock()
            .apply_edit(delta)
            .map_err(SessionRefusal::BadDelta)?;
        self.edits.fetch_add(1, Ordering::Relaxed);
        if update.tier == RecomputeTier::Recompiled {
            self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(e) = lock(&self.entries).get_mut(&id) {
            e.last_used = Instant::now();
        }
        Ok(update)
    }

    /// Clones out the handle for a status read (refreshing
    /// `last_used`: polling keeps a session alive).
    ///
    /// # Errors
    ///
    /// [`SessionRefusal::NotFound`] as for [`edit`](Self::edit).
    pub fn get(&self, id: u64, tenant: u32) -> Result<SessionHandle, SessionRefusal> {
        let mut map = lock(&self.entries);
        self.sweep(&mut map);
        match map.get_mut(&id) {
            Some(e) if e.tenant == tenant => {
                e.last_used = Instant::now();
                Ok(e.handle.clone())
            }
            _ => Err(SessionRefusal::NotFound),
        }
    }

    /// The current counter values.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            created: self.created.load(Ordering::Relaxed),
            edits: self.edits.load(Ordering::Relaxed),
            full_rebuilds: self.full_rebuilds.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            active: lock(&self.entries).len() as u64,
        }
    }
}

/// Renders a [`SessionUpdate`] as the deterministic JSON body the
/// session endpoints answer with.
pub fn render_update(id: u64, update: &SessionUpdate) -> String {
    use std::fmt::Write as _;
    let tier = match update.tier {
        RecomputeTier::Deferred => "deferred",
        RecomputeTier::Patched => "patched",
        RecomputeTier::Recompiled => "recompiled",
    };
    let mut out = format!(
        "{{\"session\":{id},\"revision\":{},\"clean\":{},\"tier\":\"{tier}\",\"dirty_nodes\":{},\"diagnostics\":[",
        update.revision, update.clean, update.dirty_nodes
    );
    for (i, d) in update.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(d));
    }
    out.push_str("]}\n");
    out
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_session::{EditSession, SessionConfig};

    const SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

    fn opened() -> (SessionHandle, SessionUpdate) {
        let (session, update) = EditSession::open(SPEC, SessionConfig::default());
        (SessionHandle::new(session), update)
    }

    #[test]
    fn caps_are_per_tenant_and_eviction_frees_slots() {
        let reg = SessionRegistry::new(SessionLimits {
            max_per_tenant: 1,
            idle_ttl: Duration::from_millis(20),
        });
        let (h, u) = opened();
        let id = reg.insert(0, h, &u).unwrap();
        assert_eq!(
            reg.admit_new(0),
            Err(SessionRefusal::CapExceeded { cap: 1 })
        );
        // A different tenant has its own budget.
        assert_eq!(reg.admit_new(1), Ok(()));
        // After the TTL the slot frees up and the old id is gone.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(reg.admit_new(0), Ok(()));
        assert_eq!(reg.get(id, 0), Err(SessionRefusal::NotFound));
        let stats = reg.stats();
        assert_eq!(stats.created, 1);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn foreign_sessions_answer_not_found() {
        let reg = SessionRegistry::new(SessionLimits::default());
        let (h, u) = opened();
        let id = reg.insert(3, h, &u).unwrap();
        assert_eq!(reg.get(id, 4), Err(SessionRefusal::NotFound));
        assert!(reg.get(id, 3).is_ok());
        let delta = EditDelta::new(0, 0, "// note\n");
        assert_eq!(reg.edit(id, 4, &delta), Err(SessionRefusal::NotFound));
    }

    #[test]
    fn edits_flow_and_counters_track_tiers() {
        let reg = SessionRegistry::new(SessionLimits::default());
        let (h, u) = opened();
        let id = reg.insert(0, h, &u).unwrap();
        let end = SPEC.len();
        let update = reg.edit(id, 0, &EditDelta::new(end, end, "// note\n")).unwrap();
        assert!(update.clean);
        assert_eq!(update.tier, RecomputeTier::Patched);
        let update = reg
            .edit(
                id,
                0,
                &EditDelta::new(end, end, "process P2 { x = 0; }\n"),
            )
            .unwrap();
        assert_eq!(update.tier, RecomputeTier::Recompiled);
        let bad = reg.edit(id, 0, &EditDelta::new(0, 1_000_000, ""));
        assert!(matches!(bad, Err(SessionRefusal::BadDelta(_))));
        let stats = reg.stats();
        assert_eq!(stats.edits, 2, "refused deltas are not edits");
        // One from the open, one from the structural edit.
        assert_eq!(stats.full_rebuilds, 2);
        assert_eq!(stats.active, 1);
    }

    #[test]
    fn updates_render_as_json_with_escaped_diagnostics() {
        let (session, update) = EditSession::open("system ; broken", SessionConfig::default());
        drop(session);
        let body = render_update(7, &update);
        assert!(body.starts_with("{\"session\":7,"), "{body}");
        assert!(body.contains("\"clean\":false"), "{body}");
        assert!(body.contains("\"tier\":\"deferred\""), "{body}");
        assert!(body.contains("\"diagnostics\":[\""), "{body}");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
