//! A hand-rolled HTTP/1.1 subset hardened for hostile clients.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the shape of request the SLIF wire protocol uses (a request
//! line, headers, an optional `Content-Length` body) and turns every
//! hostile input into a *typed* refusal instead of unbounded work:
//!
//! * **Slow loris** — the socket carries a read deadline; a client that
//!   dribbles bytes slower than the deadline gets [`RecvError::Timeout`]
//!   (wire status 408) and the connection back. A deadline that expires
//!   *before any byte arrives* is an idle keep-alive connection, not an
//!   attack, and closes silently ([`RecvError::Closed`]).
//! * **Oversized requests** — header bytes are capped at
//!   [`MAX_HEAD_BYTES`]; a declared `Content-Length` beyond the
//!   configured body cap is refused ([`RecvError::TooLarge`], wire 413)
//!   *without reading the body at all*.
//! * **Truncated or malformed framing** — anything else
//!   ([`RecvError::Malformed`], wire 400).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all header bytes (8 KiB, nginx's
/// default large-header budget).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are not split off; the
    /// SLIF protocol does not use them).
    pub path: String,
    /// Header name/value pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read off the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed (or went idle past the deadline) before sending
    /// any byte of a request — the clean end of a keep-alive connection.
    Closed,
    /// The read deadline expired mid-request: a slow-loris writer.
    Timeout,
    /// The request head or declared body exceeds a size cap.
    TooLarge {
        /// Which measure tripped (`"head bytes"` or `"body bytes"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The size seen or declared.
        actual: usize,
    },
    /// The bytes do not frame a request this protocol accepts.
    Malformed(&'static str),
    /// Any other socket error; the connection is unusable.
    Io,
}

/// One response, written by [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The reason phrase.
    pub reason: &'static str,
    /// The body (always `text/plain; charset=utf-8`).
    pub body: Vec<u8>,
    /// An optional `Retry-After` header value in seconds (429/503).
    pub retry_after: Option<u64>,
    /// Whether the server will close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A response with the given status line and body, keep-alive.
    pub fn new(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            reason,
            body: body.into(),
            retry_after: None,
            close: false,
        }
    }

    /// Adds a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A small buffered byte reader that never reads past what it needs, so
/// a pipelined next request stays in the kernel buffer for the next
/// [`read_request`] call.
struct HeadReader<'a> {
    stream: &'a mut TcpStream,
    buf: [u8; 1024],
    pos: usize,
    len: usize,
}

impl<'a> HeadReader<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        Self {
            stream,
            buf: [0; 1024],
            pos: 0,
            len: 0,
        }
    }

    /// The next byte, `Ok(None)` on EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, io::Error> {
        if self.pos == self.len {
            self.len = self.stream.read(&mut self.buf)?;
            self.pos = 0;
            if self.len == 0 {
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Bytes buffered but not yet consumed (the head of the body).
    fn leftover(&self) -> &[u8] {
        &self.buf[self.pos..self.len]
    }
}

/// Reads one request, honouring the stream's read deadline and the
/// `max_body` cap.
///
/// # Errors
///
/// A typed [`RecvError`]; see the module docs for the taxonomy.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RecvError> {
    // Read the head byte-wise up to MAX_HEAD_BYTES, splitting CRLF lines.
    let mut reader = HeadReader::new(stream);
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        match reader.next_byte() {
            Ok(Some(b)) => {
                head.push(b);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(RecvError::TooLarge {
                        what: "head bytes",
                        limit: MAX_HEAD_BYTES,
                        actual: head.len(),
                    });
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Ok(None) => {
                return if head.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed mid-head"))
                };
            }
            Err(e) if is_timeout(&e) => {
                return if head.is_empty() {
                    // Idle keep-alive connection, not a slow writer.
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Timeout)
                };
            }
            Err(_) => return Err(RecvError::Io),
        }
    }
    let head_str = std::str::from_utf8(&head).map_err(|_| RecvError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RecvError::Malformed("empty request line"))?;
    let path = parts
        .next()
        .ok_or(RecvError::Malformed("request line lacks a path"))?;
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("request line lacks a version"))?;
    if parts.next().is_some() {
        return Err(RecvError::Malformed("request line has trailing fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("header line lacks a colon"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RecvError::Malformed("unparsable content-length"))?;
        }
        if name == "transfer-encoding" {
            // Chunked bodies are an attack surface this protocol does
            // not need; refuse them outright.
            return Err(RecvError::Malformed("transfer-encoding unsupported"));
        }
        headers.push((name, value));
    }
    if content_length > max_body {
        // Refuse by declaration — the body is never read, so an
        // attacker cannot make the server swallow it before the 413.
        return Err(RecvError::TooLarge {
            what: "body bytes",
            limit: max_body,
            actual: content_length,
        });
    }
    let mut body = Vec::with_capacity(content_length);
    let leftover = reader.leftover();
    let take = leftover.len().min(content_length);
    body.extend_from_slice(&leftover[..take]);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// Writes `response`, honouring the stream's write deadline.
///
/// # Errors
///
/// Any socket error (including a write deadline expiring against a
/// non-reading client); the caller should drop the connection.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: text/plain; charset=utf-8\r\ncontent-length: {}\r\n",
        response.status,
        response.reason,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str(if response.close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A client-side view of one response: status code, headers (names
/// lowercased), body.
pub type ClientResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Reads one response off `stream`. The client half of the protocol,
/// used by the load generator and tests.
///
/// # Errors
///
/// [`RecvError::Closed`] when the peer closed before a status line,
/// otherwise the same taxonomy as [`read_request`].
pub fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, RecvError> {
    let mut reader = HeadReader::new(stream);
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        match reader.next_byte() {
            Ok(Some(b)) => {
                head.push(b);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(RecvError::TooLarge {
                        what: "head bytes",
                        limit: MAX_HEAD_BYTES,
                        actual: head.len(),
                    });
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Ok(None) if head.is_empty() => return Err(RecvError::Closed),
            Ok(None) => return Err(RecvError::Malformed("closed mid-head")),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    let head_str = std::str::from_utf8(&head).map_err(|_| RecvError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_str.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(RecvError::Malformed("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| RecvError::Malformed("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::with_capacity(content_length);
    let leftover = reader.leftover();
    let take = leftover.len().min(content_length);
    body.extend_from_slice(&leftover[..take]);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(RecvError::Malformed("closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn round_trips_a_request() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nX-Api-Key: k1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let req = read_request(&mut server, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/parse");
        assert_eq!(req.header("x-api-key"), Some("k1"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn oversized_declared_body_refused_without_reading() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        let err = read_request(&mut server, 1024).unwrap_err();
        assert_eq!(
            err,
            RecvError::TooLarge {
                what: "body bytes",
                limit: 1024,
                actual: 999999
            }
        );
    }

    #[test]
    fn slow_loris_times_out_mid_head() {
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        client.write_all(b"POST /v1/par").unwrap(); // ...and stall
        let err = read_request(&mut server, 1024).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn idle_keep_alive_deadline_is_a_clean_close() {
        let (_client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(read_request(&mut server, 1024).unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn truncated_body_is_malformed() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nContent-Length: 64\r\n\r\nshort")
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let err = read_request(&mut server, 1024).unwrap_err();
        assert_eq!(err, RecvError::Malformed("connection closed mid-body"));
    }

    #[test]
    fn chunked_encoding_is_refused() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap();
        let err = read_request(&mut server, 1024).unwrap_err();
        assert!(matches!(err, RecvError::Malformed(_)));
    }

    #[test]
    fn response_round_trips() {
        let (mut client, mut server) = pair();
        let resp = Response::new(429, "Too Many Requests", "slow down")
            .with_retry_after(7)
            .closing();
        write_response(&mut server, &resp).unwrap();
        let (status, headers, body) = read_response(&mut client).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"slow down");
        assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "7"));
        assert!(headers.iter().any(|(n, v)| n == "connection" && v == "close"));
    }
}
