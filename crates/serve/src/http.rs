//! A hand-rolled HTTP/1.1 subset hardened for hostile clients.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the shape of request the SLIF wire protocol uses (a request
//! line, headers, an optional `Content-Length` body) and turns every
//! hostile input into a *typed* refusal instead of unbounded work:
//!
//! * **Slow loris** — every request carries an *absolute* read budget:
//!   [`read_request`] records a deadline on entry and shrinks the socket
//!   timeout to the remaining budget before each read, so a client that
//!   dribbles one byte per read cannot extend its welcome — the whole
//!   head-plus-body read is bounded by one budget, after which it gets
//!   [`RecvError::Timeout`] (wire status 408) and the connection back.
//!   A budget that expires *before any byte arrives* is an idle
//!   keep-alive connection, not an attack, and closes silently
//!   ([`RecvError::Closed`]). [`write_response`] bounds the write side
//!   the same way against a non-reading client.
//! * **Oversized requests** — header bytes are capped at
//!   [`MAX_HEAD_BYTES`]; a declared `Content-Length` beyond the
//!   configured body cap is refused ([`RecvError::TooLarge`], wire 413)
//!   *without reading the body at all*.
//! * **Truncated or malformed framing** — anything else
//!   ([`RecvError::Malformed`], wire 400).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line plus all header bytes (8 KiB, nginx's
/// default large-header budget).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are not split off; the
    /// SLIF protocol does not use them).
    pub path: String,
    /// Header name/value pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read off the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed (or went idle past the deadline) before sending
    /// any byte of a request — the clean end of a keep-alive connection.
    Closed,
    /// The read deadline expired mid-request: a slow-loris writer.
    Timeout,
    /// The request head or declared body exceeds a size cap.
    TooLarge {
        /// Which measure tripped (`"head bytes"` or `"body bytes"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The size seen or declared.
        actual: usize,
    },
    /// The bytes do not frame a request this protocol accepts.
    Malformed(&'static str),
    /// Any other socket error; the connection is unusable.
    Io,
}

/// One response, written by [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The reason phrase.
    pub reason: &'static str,
    /// The body (`text/plain; charset=utf-8` unless overridden).
    pub body: Vec<u8>,
    /// The `Content-Type` header; `None` means the text/plain default.
    /// Binary design exports set `application/octet-stream`.
    pub content_type: Option<&'static str>,
    /// An optional `Retry-After` header value in seconds (429/503).
    pub retry_after: Option<u64>,
    /// An optional durable job id, echoed as `x-slif-job-id` so a client
    /// can retrieve the result later via `GET /jobs/{id}` — including
    /// after a server restart.
    pub job_id: Option<u64>,
    /// Whether the server will close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A response with the given status line and body, keep-alive.
    pub fn new(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            reason,
            body: body.into(),
            content_type: None,
            retry_after: None,
            job_id: None,
            close: false,
        }
    }

    /// Overrides the `Content-Type` header.
    #[must_use]
    pub fn with_content_type(mut self, ct: &'static str) -> Self {
        self.content_type = Some(ct);
        self
    }

    /// Adds a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Attaches the durable job id (`x-slif-job-id` header).
    #[must_use]
    pub fn with_job_id(mut self, id: u64) -> Self {
        self.job_id = Some(id);
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads into `buf` with the socket timeout shrunk to whatever remains
/// of the absolute `deadline`. SO_RCVTIMEO alone bounds only a single
/// quiet gap — a client dripping one byte per interval resets it forever
/// — so an exhausted budget is reported as a timeout *without touching
/// the socket*. With no deadline the stream's own timeout (set by the
/// caller) applies per read; the server side always passes a deadline.
fn read_within(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> io::Result<usize> {
    if let Some(deadline) = deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::ErrorKind::TimedOut.into());
        }
        stream.set_read_timeout(Some(remaining))?;
    }
    stream.read(buf)
}

/// A small buffered byte reader for the request head. It may read past
/// the head (up to 1024 bytes per syscall), so whatever it over-read —
/// body bytes and any pipelined next request — is handed back via
/// [`HeadReader::leftover`] for the caller to consume or carry over.
struct HeadReader<'a> {
    stream: &'a mut TcpStream,
    deadline: Option<Instant>,
    buf: Vec<u8>,
    pos: usize,
}

impl<'a> HeadReader<'a> {
    /// `carry` seeds the buffer with bytes a previous request over-read
    /// (the start of a pipelined request); they are consumed before the
    /// socket is touched again.
    fn new(stream: &'a mut TcpStream, deadline: Option<Instant>, carry: Vec<u8>) -> Self {
        Self {
            stream,
            deadline,
            buf: carry,
            pos: 0,
        }
    }

    /// The next byte, `Ok(None)` on EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, io::Error> {
        if self.pos == self.buf.len() {
            let mut chunk = [0u8; 1024];
            let n = read_within(self.stream, &mut chunk, self.deadline)?;
            if n == 0 {
                return Ok(None);
            }
            self.buf.clear();
            self.buf.extend_from_slice(&chunk[..n]);
            self.pos = 0;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Bytes buffered but not yet consumed (the head of the body, and
    /// possibly the start of a pipelined next request).
    fn leftover(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

/// Reads one request within an absolute time `budget`, honouring the
/// `max_body` cap.
///
/// `carry` holds bytes over-read past the previous request on this
/// connection (a pipelined next request). It is consumed first and
/// refilled on success with whatever this request over-read; on error
/// the caller must drop the connection (every error response closes),
/// so a stale carry is never replayed.
///
/// # Errors
///
/// A typed [`RecvError`]; see the module docs for the taxonomy.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    budget: Duration,
    carry: &mut Vec<u8>,
) -> Result<Request, RecvError> {
    let deadline = Some(Instant::now() + budget);
    // Read the head byte-wise up to MAX_HEAD_BYTES, splitting CRLF lines.
    let mut reader = HeadReader::new(stream, deadline, std::mem::take(carry));
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        match reader.next_byte() {
            Ok(Some(b)) => {
                head.push(b);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(RecvError::TooLarge {
                        what: "head bytes",
                        limit: MAX_HEAD_BYTES,
                        actual: head.len(),
                    });
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Ok(None) => {
                return if head.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed mid-head"))
                };
            }
            Err(e) if is_timeout(&e) => {
                return if head.is_empty() {
                    // Idle keep-alive connection, not a slow writer.
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Timeout)
                };
            }
            Err(_) => return Err(RecvError::Io),
        }
    }
    let head_str = std::str::from_utf8(&head).map_err(|_| RecvError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RecvError::Malformed("empty request line"))?;
    let path = parts
        .next()
        .ok_or(RecvError::Malformed("request line lacks a path"))?;
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("request line lacks a version"))?;
    if parts.next().is_some() {
        return Err(RecvError::Malformed("request line has trailing fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("header line lacks a colon"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            // RFC 7230 §3.3.2: conflicting (or repeated) Content-Length
            // values are a request-smuggling vector; refuse outright
            // rather than letting any value win. A comma-joined list
            // ("5, 5") already fails the integer parse below.
            if content_length.is_some() {
                return Err(RecvError::Malformed("duplicate content-length"));
            }
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| RecvError::Malformed("unparsable content-length"))?,
            );
        }
        if name == "transfer-encoding" {
            // Chunked bodies are an attack surface this protocol does
            // not need; refuse them outright.
            return Err(RecvError::Malformed("transfer-encoding unsupported"));
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        // Refuse by declaration — the body is never read, so an
        // attacker cannot make the server swallow it before the 413.
        return Err(RecvError::TooLarge {
            what: "body bytes",
            limit: max_body,
            actual: content_length,
        });
    }
    let mut body = Vec::with_capacity(content_length);
    let leftover = reader.leftover();
    let take = leftover.len().min(content_length);
    body.extend_from_slice(&leftover[..take]);
    // Anything past the body is the start of a pipelined next request;
    // hand it back so the next read_request call consumes it.
    *carry = leftover[take..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match read_within(stream, &mut chunk[..want], deadline) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// Writes `response` within an absolute time `budget`.
///
/// As on the read side, SO_SNDTIMEO alone bounds only a single blocked
/// `write()`; a client draining one byte at a time would reset it
/// indefinitely. The socket timeout is shrunk to the remaining budget
/// before each write, so the whole response is bounded by one budget.
///
/// # Errors
///
/// Any socket error (including the budget expiring against a
/// non-reading client); the caller should drop the connection.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    budget: Duration,
) -> io::Result<()> {
    let deadline = Instant::now() + budget;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        response.reason,
        response
            .content_type
            .unwrap_or("text/plain; charset=utf-8"),
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if let Some(id) = response.job_id {
        head.push_str(&format!("x-slif-job-id: {id}\r\n"));
    }
    head.push_str(if response.close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&response.body);
    let mut written = 0;
    while written < bytes.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::ErrorKind::TimedOut.into());
        }
        stream.set_write_timeout(Some(remaining))?;
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// A client-side view of one response: status code, headers (names
/// lowercased), body.
pub type ClientResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Reads one response off `stream`. The client half of the protocol,
/// used by the load generator and tests. The server is trusted, so the
/// stream's own read timeout applies per read (no absolute budget).
///
/// The head is read one byte per syscall and the body exact-length, so
/// the reader never consumes past this response — a pipelined client
/// that sent several requests back-to-back reads each response cleanly
/// even when the server's responses coalesce into one TCP segment.
/// Throughput is irrelevant here; never losing bytes is not.
///
/// # Errors
///
/// [`RecvError::Closed`] when the peer closed before a status line,
/// otherwise the same taxonomy as [`read_request`].
pub fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, RecvError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => return Err(RecvError::Closed),
            Ok(0) => return Err(RecvError::Malformed("closed mid-head")),
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(RecvError::TooLarge {
                        what: "head bytes",
                        limit: MAX_HEAD_BYTES,
                        actual: head.len(),
                    });
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    let head_str = std::str::from_utf8(&head).map_err(|_| RecvError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_str.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(RecvError::Malformed("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| RecvError::Malformed("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::with_capacity(content_length);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(RecvError::Malformed("closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(_) => return Err(RecvError::Io),
        }
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    const BUDGET: Duration = Duration::from_secs(5);

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn read_one(server: &mut TcpStream, max_body: usize, budget: Duration) -> Result<Request, RecvError> {
        read_request(server, max_body, budget, &mut Vec::new())
    }

    #[test]
    fn round_trips_a_request() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nX-Api-Key: k1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let req = read_one(&mut server, 1024, BUDGET).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/parse");
        assert_eq!(req.header("x-api-key"), Some("k1"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn oversized_declared_body_refused_without_reading() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        let err = read_one(&mut server, 1024, BUDGET).unwrap_err();
        assert_eq!(
            err,
            RecvError::TooLarge {
                what: "body bytes",
                limit: 1024,
                actual: 999999
            }
        );
    }

    #[test]
    fn slow_loris_times_out_mid_head() {
        let (mut client, mut server) = pair();
        client.write_all(b"POST /v1/par").unwrap(); // ...and stall
        let err = read_one(&mut server, 1024, Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    /// The regression for the real slow-loris shape: a client dripping
    /// bytes fast enough that no single read ever times out must still
    /// be cut off by the absolute budget.
    #[test]
    fn dripped_bytes_cannot_extend_the_budget() {
        let (mut client, mut server) = pair();
        let dripper = std::thread::spawn(move || {
            // One byte every 25 ms: each arrives well inside any
            // per-read timeout, but the request never completes.
            for _ in 0..40 {
                if client.write_all(b"A").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let start = Instant::now();
        let err = read_one(&mut server, 1024, Duration::from_millis(150)).unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err, RecvError::Timeout);
        assert!(
            elapsed < Duration::from_millis(600),
            "budget must bound the whole read, took {elapsed:?}"
        );
        drop(server);
        dripper.join().unwrap();
    }

    #[test]
    fn idle_keep_alive_deadline_is_a_clean_close() {
        let (_client, mut server) = pair();
        assert_eq!(
            read_one(&mut server, 1024, Duration::from_millis(30)).unwrap_err(),
            RecvError::Closed
        );
    }

    #[test]
    fn truncated_body_is_malformed() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nContent-Length: 64\r\n\r\nshort")
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let err = read_one(&mut server, 1024, BUDGET).unwrap_err();
        assert_eq!(err, RecvError::Malformed("connection closed mid-body"));
    }

    #[test]
    fn chunked_encoding_is_refused() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap();
        let err = read_one(&mut server, 1024, BUDGET).unwrap_err();
        assert!(matches!(err, RecvError::Malformed(_)));
    }

    #[test]
    fn duplicate_content_length_is_malformed() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /v1/parse HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
        let err = read_one(&mut server, 1024, BUDGET).unwrap_err();
        assert_eq!(err, RecvError::Malformed("duplicate content-length"));
        // A comma-joined value is equally refused (unparsable).
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/parse HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello")
            .unwrap();
        let err = read_one(&mut server, 1024, BUDGET).unwrap_err();
        assert_eq!(err, RecvError::Malformed("unparsable content-length"));
    }

    /// Two requests written in one burst: the bytes the head reader
    /// over-reads past the first body must be carried into the second
    /// [`read_request`] call, not dropped.
    #[test]
    fn pipelined_requests_are_carried_over() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /v1/parse HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirst\
                  POST /v1/estimate HTTP/1.1\r\nContent-Length: 6\r\n\r\nsecond",
            )
            .unwrap();
        // Prove the second request is served from the carry, not the
        // socket: nothing further will ever arrive.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut carry = Vec::new();
        let first = read_request(&mut server, 1024, BUDGET, &mut carry).unwrap();
        assert_eq!(first.path, "/v1/parse");
        assert_eq!(first.body, b"first");
        assert!(!carry.is_empty(), "pipelined bytes must be carried over");
        let second = read_request(&mut server, 1024, BUDGET, &mut carry).unwrap();
        assert_eq!(second.path, "/v1/estimate");
        assert_eq!(second.body, b"second");
        assert_eq!(
            read_request(&mut server, 1024, BUDGET, &mut carry).unwrap_err(),
            RecvError::Closed
        );
    }

    #[test]
    fn response_round_trips() {
        let (mut client, mut server) = pair();
        let resp = Response::new(429, "Too Many Requests", "slow down")
            .with_retry_after(7)
            .with_job_id(42)
            .closing();
        write_response(&mut server, &resp, BUDGET).unwrap();
        let (status, headers, body) = read_response(&mut client).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"slow down");
        assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "7"));
        assert!(headers.iter().any(|(n, v)| n == "x-slif-job-id" && v == "42"));
        assert!(headers.iter().any(|(n, v)| n == "connection" && v == "close"));
    }

    /// A client that never reads cannot pin the writer past the write
    /// budget, no matter how large the response.
    #[test]
    fn write_budget_bounds_a_non_reading_client() {
        let (client, mut server) = pair();
        let resp = Response::new(200, "OK", vec![0u8; 32 * 1024 * 1024]);
        let start = Instant::now();
        let err = write_response(&mut server, &resp, Duration::from_millis(150)).unwrap_err();
        assert!(
            matches!(err.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock),
            "expected a timeout, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "write budget must bound the whole response"
        );
        drop(client);
    }
}
