//! The accept/dispatch loop: a fixed acceptor + connection-worker pool
//! over `std::net::TcpListener`.
//!
//! Topology: one **acceptor** thread polls a non-blocking listener and
//! pushes accepted sockets onto a bounded connection queue; when that
//! queue is full the acceptor *sheds* the connection with a canned 503
//! instead of letting the backlog grow. A fixed pool of **connection
//! workers** pops sockets and runs keep-alive request loops. Each
//! request is read under an *absolute* deadline and each response
//! written under another ([`crate::http`]), so a stalled or hostile
//! connection — including one dripping a byte at a time — can pin a
//! worker for at most one read budget plus one write budget before it
//! is cut off.
//!
//! Shutdown is a graceful drain: [`Server::begin_drain`] flips a flag
//! that turns every job-submitting endpoint into a 410 while `/health`
//! and `/metrics` keep answering (so an orchestrator can watch the
//! drain); [`Server::shutdown`] then stops the acceptor, lets workers
//! finish their current connections, and drains the underlying
//! [`JobService`] — in-flight jobs finish, nothing is dropped.

use crate::durable::{DurableRequest, DurableStore, JobState};
use crate::http::{read_request, write_response, RecvError, Request, Response};
use crate::session::{render_update, SessionLimits, SessionRefusal, SessionRegistry};
use crate::tenant::{AdmitError, TenantRegistry, TenantSpec};
use crate::wire::{
    job_for_with_cache, render_output, response_for_error, response_for_rejection, Endpoint,
    WireParams, HDR_API_KEY, HDR_EDIT_END, HDR_EDIT_START,
};
use slif_runtime::{Job, JobOutcome, JobOutput, JobService, RunLimits, ServiceConfig};
use slif_session::EditDelta;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (default `127.0.0.1:0` — an ephemeral port).
    pub addr: String,
    /// Connection-worker threads (default 4, floor 1).
    pub conn_workers: usize,
    /// Bounded accepted-connection queue; beyond it the acceptor sheds
    /// with a canned 503 (default 64, floor 1).
    pub pending_conns: usize,
    /// Absolute per-request read budget — the slow-loris bound: one
    /// whole request (head + body) must arrive within it (default 2 s).
    pub read_timeout: Duration,
    /// Absolute per-response write budget (default 2 s).
    pub write_timeout: Duration,
    /// Cap on a request's declared body size (default 256 KiB).
    pub max_request_bytes: usize,
    /// Deadline submitted with every job (default 10 s).
    pub request_deadline: Duration,
    /// Cap on requested exploration iterations (default 10 000).
    pub max_explore_iterations: u64,
    /// Tenants; empty = open server (no keys required).
    pub tenants: Vec<TenantSpec>,
    /// Durable-store directory (job journal + compiled-design cache).
    /// `None` (the default) serves statelessly, exactly as before.
    pub store_dir: Option<PathBuf>,
    /// Edit-session bounds: per-tenant cap and idle TTL.
    pub sessions: SessionLimits,
    /// Tuning for the underlying job service.
    pub runtime: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            conn_workers: 4,
            pending_conns: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_request_bytes: 256 * 1024,
            request_deadline: Duration::from_secs(10),
            max_explore_iterations: 10_000,
            tenants: Vec::new(),
            store_dir: None,
            sessions: SessionLimits::default(),
            runtime: ServiceConfig::new(),
        }
    }
}

impl ServerConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bind address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection-worker count (floor 1).
    #[must_use]
    pub fn with_conn_workers(mut self, n: usize) -> Self {
        self.conn_workers = n.max(1);
        self
    }

    /// Sets the read/write deadlines.
    #[must_use]
    pub fn with_io_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Sets the request body cap.
    #[must_use]
    pub fn with_max_request_bytes(mut self, n: usize) -> Self {
        self.max_request_bytes = n;
        self
    }

    /// Sets the per-job deadline.
    #[must_use]
    pub fn with_request_deadline(mut self, d: Duration) -> Self {
        self.request_deadline = d;
        self
    }

    /// Sets the exploration-iteration cap (floor 1).
    #[must_use]
    pub fn with_max_explore_iterations(mut self, n: u64) -> Self {
        self.max_explore_iterations = n.max(1);
        self
    }

    /// Adds a tenant.
    #[must_use]
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Enables crash-safe persistence rooted at `dir`: jobs get durable
    /// ids, results survive restarts (`GET /jobs/{id}`), and repeat
    /// specs hit the compiled-design cache.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Sets the edit-session bounds.
    #[must_use]
    pub fn with_session_limits(mut self, sessions: SessionLimits) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the job-service tuning.
    #[must_use]
    pub fn with_runtime(mut self, runtime: ServiceConfig) -> Self {
        self.runtime = runtime;
        self
    }
}

/// Wire-level counters, additional to the job service's own metrics.
#[derive(Debug, Default)]
pub(crate) struct WireStats {
    requests: AtomicU64,
    shed_conns: AtomicU64,
    statuses: Mutex<BTreeMap<u16, u64>>,
}

impl WireStats {
    fn note(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        *crate::lock(&self.statuses).entry(status).or_insert(0) += 1;
    }
}

/// The accepted-connection queue: bounded, closeable.
#[derive(Debug, Default)]
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    /// Pushes unless full; `Err` returns the stream for shedding.
    fn push(&self, stream: TcpStream, cap: usize) -> Result<(), TcpStream> {
        let mut st = crate::lock(&self.state);
        if st.1 || st.0.len() >= cap {
            return Err(stream);
        }
        st.0.push_back(stream);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops a connection; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = crate::lock(&self.state);
        loop {
            if let Some(s) = st.0.pop_front() {
                return Some(s);
            }
            if st.1 {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        crate::lock(&self.state).1 = true;
        self.ready.notify_all();
    }
}

#[derive(Debug)]
struct Inner {
    service: JobService,
    registry: TenantRegistry,
    conns: ConnQueue,
    stats: WireStats,
    draining: AtomicBool,
    stop_accepting: AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
    max_request_bytes: usize,
    request_deadline: Duration,
    max_explore_iterations: u64,
    limits: RunLimits,
    durable: Option<Arc<DurableStore>>,
    sessions: SessionRegistry,
}

/// A running server. Dropping it without [`shutdown`](Server::shutdown)
/// leaks the threads; call `shutdown` for a clean drain.
#[derive(Debug)]
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, starts the job service, the acceptor, and the worker pool.
    ///
    /// # Errors
    ///
    /// Any socket error from binding or configuring the listener.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let limits = config.runtime.limits;
        // Open (and recover) the durable store before anything can be
        // admitted, so replayed jobs re-enter the queue ahead of new
        // traffic.
        let (durable, recovered) = match &config.store_dir {
            Some(dir) => {
                let (store, recovered) = DurableStore::open(dir)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                (Some(Arc::new(store)), recovered)
            }
            None => (None, Vec::new()),
        };
        let inner = Arc::new(Inner {
            durable: durable.clone(),
            service: JobService::start(config.runtime),
            registry: TenantRegistry::new(config.tenants),
            conns: ConnQueue::default(),
            stats: WireStats::default(),
            draining: AtomicBool::new(false),
            stop_accepting: AtomicBool::new(false),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_request_bytes: config.max_request_bytes,
            request_deadline: config.request_deadline,
            max_explore_iterations: config.max_explore_iterations,
            limits,
            sessions: SessionRegistry::new(config.sessions),
        });
        if let Some(store) = &durable {
            resubmit_recovered(&inner, store, recovered);
        }
        let pending = config.pending_conns.max(1);
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("slif-serve-acceptor".into())
                .spawn(move || acceptor_loop(&inner, &listener, pending))?
        };
        let mut workers = Vec::with_capacity(config.conn_workers.max(1));
        for i in 0..config.conn_workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("slif-serve-conn-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        Ok(Self {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins draining: job endpoints answer 410 from now on, while
    /// `/health` and `/metrics` keep serving. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: drain, stop accepting, finish current
    /// connections, then drain the job service (in-flight jobs finish).
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.inner.stop_accepting.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            drop(a.join());
        }
        self.inner.conns.close();
        for w in self.workers.drain(..) {
            drop(w.join());
        }
        self.inner.service.shutdown();
    }

    /// A point-in-time health snapshot of the underlying job service.
    pub fn health(&self) -> slif_runtime::HealthSnapshot {
        self.inner.service.health()
    }
}

/// Resubmits jobs the journal accepted but never saw finish: each is
/// rebuilt from its journalled request (warm cache hits skip the
/// compile) and re-enters the queue with its original durable id and
/// tenant identity. A request that no longer builds is closed with a
/// journalled 422; one the fresh queue refuses is journalled cancelled —
/// either way `GET /jobs/{id}` has an answer, never a dangling id.
fn resubmit_recovered(
    inner: &Arc<Inner>,
    store: &Arc<DurableStore>,
    recovered: Vec<(u64, DurableRequest)>,
) {
    for (id, request) in recovered {
        let job = match job_for_with_cache(
            request.endpoint,
            &request.source,
            &request.params,
            &inner.limits,
            inner.max_explore_iterations,
            Some(store.cache()),
        ) {
            Ok(job) => job,
            Err(diag) => {
                store.finish(
                    id,
                    422,
                    format!("specification rejected on replay: {diag}\n").into_bytes(),
                );
                continue;
            }
        };
        let hook_store = Arc::clone(store);
        let submitted = inner.service.submit_observed(
            job,
            Some(inner.request_deadline),
            Some((request.tenant, request.weight.max(1))),
            move |outcome| hook_store.record_outcome(id, outcome),
        );
        if submitted.is_err() {
            store.cancel(id);
        }
    }
}

fn acceptor_loop(inner: &Inner, listener: &TcpListener, pending: usize) {
    while !inner.stop_accepting.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(mut refused) = inner.conns.push(stream, pending) {
                    // Shed: a canned close-response, best-effort, under
                    // a tight budget so shedding itself cannot stall
                    // the acceptor.
                    inner.stats.shed_conns.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::new(
                        503,
                        "Service Unavailable",
                        "connection backlog full; retry later\n",
                    )
                    .with_retry_after(1)
                    .closing();
                    drop(write_response(
                        &mut refused,
                        &resp,
                        Duration::from_millis(200),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(stream) = inner.conns.pop() {
        serve_connection(inner, stream);
    }
}

/// Runs one keep-alive connection to completion. Never panics: every
/// refusal is a typed response, every socket error a drop.
fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    // Bytes over-read past one request (a pipelined next request) carry
    // into the next read_request call on this connection.
    let mut carry = Vec::new();
    loop {
        let response = match read_request(
            &mut stream,
            inner.max_request_bytes,
            inner.read_timeout,
            &mut carry,
        ) {
            Ok(request) => {
                let close = request.wants_close();
                let mut resp = handle_request(inner, &request);
                resp.close = resp.close || close;
                resp
            }
            // Clean end of the connection: peer closed or went idle.
            Err(RecvError::Closed) => return,
            // Slow loris: the deadline fired mid-request.
            Err(RecvError::Timeout) => {
                Response::new(408, "Request Timeout", "read deadline expired\n").closing()
            }
            Err(RecvError::TooLarge {
                what,
                limit,
                actual,
            }) => Response::new(
                413,
                "Payload Too Large",
                format!("too large: {what} {actual} exceeds limit {limit}\n"),
            )
            .closing(),
            Err(RecvError::Malformed(why)) => {
                Response::new(400, "Bad Request", format!("malformed request: {why}\n")).closing()
            }
            Err(RecvError::Io) => return,
        };
        inner.stats.note(response.status);
        if write_response(&mut stream, &response, inner.write_timeout).is_err() || response.close {
            return;
        }
    }
}

fn handle_request(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::new(200, "OK", format!("{}\n", inner.service.health())),
        ("GET", "/metrics") => Response::new(200, "OK", render_metrics(inner)),
        (_, "/health" | "/metrics") => method_not_allowed("GET"),
        // Result retrieval is a read — it stays up during drain, like
        // the other observability endpoints.
        ("GET", path) if path.starts_with("/jobs/") => job_status(inner, path),
        (_, path) if path.starts_with("/jobs/") => method_not_allowed("GET"),
        ("POST", "/sessions") => open_session(inner, request),
        (_, "/sessions") => method_not_allowed("POST"),
        ("POST", "/designs") => post_design(inner, request),
        (_, "/designs") => method_not_allowed("POST"),
        ("GET", path) if path.starts_with("/designs/") => get_design(inner, path, request),
        (_, path) if path.starts_with("/designs/") => method_not_allowed("GET"),
        (method, path) if path.starts_with("/sessions/") => {
            session_request(inner, method, path, request)
        }
        (method, path) => match Endpoint::from_path(path) {
            None => Response::new(404, "Not Found", format!("no such endpoint: {path}\n")),
            Some(_) if method != "POST" => method_not_allowed("POST"),
            Some(endpoint) => run_job(inner, endpoint, request),
        },
    }
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::new(
        405,
        "Method Not Allowed",
        format!("method not allowed; use {allowed}\n"),
    )
}

fn run_job(inner: &Inner, endpoint: Endpoint, request: &Request) -> Response {
    // Drain gate first: during drain nothing new is admitted, matching
    // the runtime's own ShuttingDown refusal.
    if inner.draining.load(Ordering::Relaxed) {
        return Response::new(410, "Gone", "server is draining; resubmit elsewhere\n").closing();
    }
    // Tenancy gate before any parsing: a quota flood costs one bucket
    // check, not a parse.
    let admission = match inner.registry.admit(request.header(HDR_API_KEY)) {
        Ok(a) => a,
        Err(AdmitError::UnknownKey) => {
            return Response::new(401, "Unauthorized", "missing or unknown API key\n");
        }
        Err(AdmitError::QuotaExhausted { retry_after_secs }) => {
            return Response::new(429, "Too Many Requests", "tenant quota exhausted\n")
                .with_retry_after(retry_after_secs);
        }
    };
    let Ok(source) = std::str::from_utf8(&request.body) else {
        return Response::new(400, "Bad Request", "body is not UTF-8\n");
    };
    let params = WireParams::from_headers(|name| request.header(name));
    let job = match job_for_with_cache(
        endpoint,
        source,
        &params,
        &inner.limits,
        inner.max_explore_iterations,
        inner.durable.as_deref().map(DurableStore::cache),
    ) {
        Ok(job) => job,
        Err(diag) => {
            return Response::new(
                422,
                "Unprocessable Entity",
                format!("specification rejected: {diag}\n"),
            );
        }
    };
    // Write-ahead: the acceptance is journalled (and fsynced) before the
    // job can enter the queue. If the journal cannot take the record,
    // the request is refused — no unjournalled work runs on a durable
    // server.
    let durable_id = match &inner.durable {
        None => None,
        Some(store) => {
            let journalled = store.accept(&DurableRequest {
                endpoint,
                params,
                tenant: admission.tenant,
                weight: admission.weight,
                source: source.to_owned(),
            });
            match journalled {
                Ok(id) => Some(id),
                Err(_) => {
                    return Response::new(
                        503,
                        "Service Unavailable",
                        "durability journal unavailable; retry later\n",
                    )
                    .with_retry_after(1);
                }
            }
        }
    };
    let submitted = match (&inner.durable, durable_id) {
        (Some(store), Some(id)) => {
            let hook_store = Arc::clone(store);
            inner.service.submit_observed(
                job,
                Some(inner.request_deadline),
                Some((admission.tenant, admission.weight)),
                move |outcome| hook_store.record_outcome(id, outcome),
            )
        }
        _ => inner.service.submit_for_tenant(
            job,
            Some(inner.request_deadline),
            admission.tenant,
            admission.weight,
        ),
    };
    let handle = match submitted {
        Ok(handle) => handle,
        Err(rejection) => {
            // Journalled but never queued: close the id out so a later
            // GET /jobs/{id} reports the cancellation, not a hang.
            if let (Some(store), Some(id)) = (&inner.durable, durable_id) {
                store.cancel(id);
            }
            return tag_job_id(response_for_rejection(&rejection), durable_id);
        }
    };
    // The job carries its own deadline; the extra grace covers queue
    // wait + scheduling so the service's typed TimedOut (not this
    // fallback) is the normal timeout path.
    let grace = inner.request_deadline + Duration::from_secs(5);
    let response = match handle.wait_timeout(grace) {
        Some(JobOutcome::Completed { output, .. }) => {
            Response::new(200, "OK", render_output(&output))
        }
        Some(JobOutcome::Failed { error, .. }) => response_for_error(&error),
        Some(JobOutcome::TimedOut) => Response::new(
            504,
            "Gateway Timeout",
            "job deadline expired before execution finished\n",
        ),
        Some(JobOutcome::Cancelled) => {
            Response::new(410, "Gone", "job cancelled by shutdown\n").closing()
        }
        // The wait itself gave up (or a future outcome variant). On a
        // durable server the job id stays valid: the client can poll
        // GET /jobs/{id} for the terminal state.
        _ => match durable_id {
            Some(id) => Response::new(
                202,
                "Accepted",
                format!("job {id} is still running; GET /jobs/{id} for the result\n"),
            ),
            None => Response::new(
                504,
                "Gateway Timeout",
                "gave up waiting for the job's terminal state\n",
            ),
        },
    };
    tag_job_id(response, durable_id)
}

/// `POST /designs`: imports `.slif` (text) or `.slifb` (binary)
/// interchange bytes — the encoding is sniffed from the body's leading
/// bytes. The body was already streamed in under the connection's read
/// budget and body cap (413 before a byte of an oversized body is
/// read); the strict parse runs as a [`Job::Import`] on the job service,
/// so format refusals are typed 422s and a parser bug cannot take down
/// the connection worker. On a durable server the decoded design (with
/// its compiled view) is filed in the content-addressed cache, and the
/// response carries the content hash for `GET /designs/{hash}`.
fn post_design(inner: &Inner, request: &Request) -> Response {
    if inner.draining.load(Ordering::Relaxed) {
        return Response::new(410, "Gone", "server is draining; resubmit elsewhere\n").closing();
    }
    let admission = match inner.registry.admit(request.header(HDR_API_KEY)) {
        Ok(a) => a,
        Err(e) => return response_for_admit_error(e),
    };
    // The body is raw interchange bytes — no UTF-8 gate here; the
    // binary encoding is legitimately non-textual and the text parser
    // does its own validation.
    let job = Job::Import {
        bytes: request.body.clone(),
    };
    let submitted = inner.service.submit_for_tenant(
        job,
        Some(inner.request_deadline),
        admission.tenant,
        admission.weight,
    );
    let handle = match submitted {
        Ok(handle) => handle,
        Err(rejection) => return response_for_rejection(&rejection),
    };
    let grace = inner.request_deadline + Duration::from_secs(5);
    match handle.wait_timeout(grace) {
        Some(JobOutcome::Completed { output, .. }) => {
            let JobOutput::Imported { design, .. } = &output else {
                return Response::new(500, "Internal Server Error", "unexpected job output\n");
            };
            let key = slif_store::ContentKey::of(&slif_store::encode_design(design));
            let mut body = format!("design {}\n{}", key.to_hex(), render_output(&output));
            let status = match &inner.durable {
                Some(store) => {
                    // Cache design + compiled view so a warm GET (or a
                    // later compile of the same design) skips work.
                    // Cache writes are an optimization: failures are
                    // swallowed, the import already succeeded.
                    match slif_core::CompiledDesign::compile_bounded(design, &inner.limits.graph) {
                        Ok(cd) => drop(store.cache().put_with_compiled(&request.body, design, &cd)),
                        Err(_) => drop(store.cache().put(&request.body, design)),
                    }
                    201
                }
                None => {
                    body.push_str("(stateless server: design not persisted)\n");
                    200
                }
            };
            Response::new(status, if status == 201 { "Created" } else { "OK" }, body)
        }
        Some(JobOutcome::Failed { error, .. }) => response_for_error(&error),
        Some(JobOutcome::TimedOut) => Response::new(
            504,
            "Gateway Timeout",
            "import deadline expired before the parse finished\n",
        ),
        Some(JobOutcome::Cancelled) => {
            Response::new(410, "Gone", "job cancelled by shutdown\n").closing()
        }
        _ => Response::new(
            504,
            "Gateway Timeout",
            "gave up waiting for the import's terminal state\n",
        ),
    }
}

/// `GET /designs/{hash}`: exports a cached design as interchange bytes.
/// The `Accept` header negotiates the encoding: a value mentioning
/// `octet-stream` or `x-slifb` gets the binary framing
/// (`application/octet-stream`), anything else the text form. Like the
/// other content-addressed reads this needs no API key and stays up
/// during drain; a damaged cache object is a quarantined 404, never a
/// wrong answer (the cache re-hashes and strictly decodes on read).
fn get_design(inner: &Inner, path: &str, request: &Request) -> Response {
    let Some(store) = &inner.durable else {
        return Response::new(
            404,
            "Not Found",
            "durable design store not enabled on this server\n",
        );
    };
    let Some(key) = path.strip_prefix("/designs/").and_then(parse_content_key) else {
        return Response::new(
            400,
            "Bad Request",
            "design hash must be 64 hex digits\n",
        );
    };
    let Some(design) = store.cache().get_by_key(&key) else {
        return Response::new(404, "Not Found", format!("no such design: {}\n", key.to_hex()));
    };
    let binary = request
        .header("accept")
        .is_some_and(|v| v.contains("octet-stream") || v.contains("x-slifb"));
    let encoding = if binary {
        slif_formats::Encoding::Binary
    } else {
        slif_formats::Encoding::Text
    };
    match slif_formats::write_bytes(&design, None, encoding) {
        Ok(bytes) => {
            let resp = Response::new(200, "OK", bytes);
            if binary {
                resp.with_content_type("application/octet-stream")
            } else {
                resp
            }
        }
        // A verified cached design always encodes; refuse without dying
        // if a future writer grows a failure mode.
        Err(e) => Response::new(
            500,
            "Internal Server Error",
            format!("export failed: {e}\n"),
        ),
    }
}

/// Parses a 64-hex-digit content key from a path segment.
fn parse_content_key(s: &str) -> Option<slif_store::ContentKey> {
    if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let mut key = [0u8; 32];
    for (i, byte) in key.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(slif_store::ContentKey(key))
}

/// `POST /sessions`: opens an incremental edit session over the body's
/// specification source. The opening compile goes through the job
/// service — admission, fair-share weighting, and the drain gate apply
/// exactly as for one-shot jobs — but the resulting session lives in
/// the server's registry, bounded by the per-tenant cap and idle TTL.
fn open_session(inner: &Inner, request: &Request) -> Response {
    if inner.draining.load(Ordering::Relaxed) {
        return Response::new(410, "Gone", "server is draining; resubmit elsewhere\n").closing();
    }
    let admission = match inner.registry.admit(request.header(HDR_API_KEY)) {
        Ok(a) => a,
        Err(e) => return response_for_admit_error(e),
    };
    // Cap gate before the compile: a session flood costs a map lookup.
    if let Err(SessionRefusal::CapExceeded { cap }) = inner.sessions.admit_new(admission.tenant) {
        return session_cap_response(cap);
    }
    let Ok(source) = std::str::from_utf8(&request.body) else {
        return Response::new(400, "Bad Request", "body is not UTF-8\n");
    };
    let job = Job::EditSession {
        source: source.to_owned(),
    };
    let submitted = inner.service.submit_for_tenant(
        job,
        Some(inner.request_deadline),
        admission.tenant,
        admission.weight,
    );
    let handle = match submitted {
        Ok(handle) => handle,
        Err(rejection) => return response_for_rejection(&rejection),
    };
    let grace = inner.request_deadline + Duration::from_secs(5);
    match handle.wait_timeout(grace) {
        Some(JobOutcome::Completed {
            output: JobOutput::Session { session, update },
            ..
        }) => match inner.sessions.insert(admission.tenant, session, &update) {
            Ok(id) => Response::new(201, "Created", render_update(id, &update)),
            Err(SessionRefusal::CapExceeded { cap }) => session_cap_response(cap),
            // insert only refuses on the cap; refuse conservatively on
            // a future variant rather than panic.
            Err(_) => Response::new(503, "Service Unavailable", "session refused\n"),
        },
        Some(JobOutcome::Failed { error, .. }) => response_for_error(&error),
        Some(JobOutcome::TimedOut) => Response::new(
            504,
            "Gateway Timeout",
            "session open deadline expired\n",
        ),
        Some(JobOutcome::Cancelled) => {
            Response::new(410, "Gone", "job cancelled by shutdown\n").closing()
        }
        _ => Response::new(
            504,
            "Gateway Timeout",
            "gave up waiting for the session to open\n",
        ),
    }
}

/// Routes `/sessions/{id}` (GET status) and `/sessions/{id}/edit`
/// (POST one edit).
fn session_request(inner: &Inner, method: &str, path: &str, request: &Request) -> Response {
    let rest = &path["/sessions/".len()..];
    let (id_part, action) = match rest.split_once('/') {
        None => (rest, None),
        Some((id, action)) => (id, Some(action)),
    };
    let Ok(id) = id_part.parse::<u64>() else {
        return Response::new(400, "Bad Request", "session id must be a decimal integer\n");
    };
    match (method, action) {
        ("GET", None) => session_status(inner, id, request),
        (_, None) => method_not_allowed("GET"),
        ("POST", Some("edit")) => session_edit(inner, id, request),
        (_, Some("edit")) => method_not_allowed("POST"),
        _ => Response::new(404, "Not Found", format!("no such endpoint: {path}\n")),
    }
}

/// `POST /sessions/{id}/edit`: applies one splice — replace bytes
/// `[x-slif-edit-start, x-slif-edit-end)` of the session's source with
/// the request body — and answers with what the recompute did. The edit
/// runs inline on the connection worker: the incremental path is
/// cheaper than a queue round-trip.
fn session_edit(inner: &Inner, id: u64, request: &Request) -> Response {
    if inner.draining.load(Ordering::Relaxed) {
        return Response::new(410, "Gone", "server is draining; resubmit elsewhere\n").closing();
    }
    let admission = match inner.registry.admit(request.header(HDR_API_KEY)) {
        Ok(a) => a,
        Err(e) => return response_for_admit_error(e),
    };
    let (Some(start), Some(end)) = (
        request.header(HDR_EDIT_START).and_then(|v| v.parse::<usize>().ok()),
        request.header(HDR_EDIT_END).and_then(|v| v.parse::<usize>().ok()),
    ) else {
        return Response::new(
            400,
            "Bad Request",
            format!("{HDR_EDIT_START} and {HDR_EDIT_END} must be byte offsets\n"),
        );
    };
    let Ok(replacement) = std::str::from_utf8(&request.body) else {
        return Response::new(400, "Bad Request", "body is not UTF-8\n");
    };
    let delta = EditDelta::new(start, end, replacement);
    match inner.sessions.edit(id, admission.tenant, &delta) {
        Ok(update) => Response::new(200, "OK", render_update(id, &update)),
        Err(refusal) => session_refusal_response(id, &refusal),
    }
}

/// `GET /sessions/{id}`: the session's current state — revision,
/// cleanliness, diagnostics, and the full estimate and lint reports
/// (stale-but-labelled while the text is broken). Polling refreshes the
/// idle clock. Stays up during drain, like the other reads.
fn session_status(inner: &Inner, id: u64, request: &Request) -> Response {
    let admission = match inner.registry.admit(request.header(HDR_API_KEY)) {
        Ok(a) => a,
        Err(e) => return response_for_admit_error(e),
    };
    let handle = match inner.sessions.get(id, admission.tenant) {
        Ok(handle) => handle,
        Err(refusal) => return session_refusal_response(id, &refusal),
    };
    let session = handle.lock();
    let mut body = format!(
        "session {id}: revision {}, {}, {} full rebuilds\n",
        session.revision(),
        if session.is_clean() { "clean" } else { "broken" },
        session.full_rebuilds(),
    );
    for d in session.diagnostics() {
        body.push_str(&format!("diagnostic: {d}\n"));
    }
    if let Some(report) = session.estimate() {
        if !session.is_clean() {
            body.push_str("(reports below are from the last clean revision)\n");
        }
        body.push_str(&format!("\n{report}"));
    }
    if let Some(report) = session.analysis() {
        body.push_str(&format!("\n{report}"));
    }
    Response::new(200, "OK", body)
}

fn response_for_admit_error(e: AdmitError) -> Response {
    match e {
        AdmitError::UnknownKey => {
            Response::new(401, "Unauthorized", "missing or unknown API key\n")
        }
        AdmitError::QuotaExhausted { retry_after_secs } => {
            Response::new(429, "Too Many Requests", "tenant quota exhausted\n")
                .with_retry_after(retry_after_secs)
        }
    }
}

fn session_cap_response(cap: usize) -> Response {
    Response::new(
        409,
        "Conflict",
        format!("session cap reached ({cap} per tenant); close or let idle sessions expire\n"),
    )
}

fn session_refusal_response(id: u64, refusal: &SessionRefusal) -> Response {
    match refusal {
        SessionRefusal::NotFound => {
            Response::new(404, "Not Found", format!("no such session: {id}\n"))
        }
        SessionRefusal::BadDelta(e) => Response::new(
            422,
            "Unprocessable Entity",
            format!("edit rejected: {e}\n"),
        ),
        SessionRefusal::CapExceeded { cap } => session_cap_response(*cap),
    }
}

fn tag_job_id(response: Response, id: Option<u64>) -> Response {
    match id {
        Some(id) => response.with_job_id(id),
        None => response,
    }
}

/// Serves `GET /jobs/{id}` from the durable store: a finished job
/// replays its journalled status and body (bit-identical across
/// restarts), a pending one answers 202, a cancelled one 410.
fn job_status(inner: &Inner, path: &str) -> Response {
    let Some(store) = &inner.durable else {
        return Response::new(
            404,
            "Not Found",
            "durable job store not enabled on this server\n",
        );
    };
    let Some(id) = path.strip_prefix("/jobs/").and_then(|s| s.parse::<u64>().ok()) else {
        return Response::new(400, "Bad Request", "job id must be a decimal integer\n");
    };
    match store.lookup(id) {
        None => Response::new(404, "Not Found", format!("no such job: {id}\n")),
        Some(JobState::Pending) => Response::new(
            202,
            "Accepted",
            format!("job {id} is still running; poll again\n"),
        )
        .with_job_id(id),
        Some(JobState::Cancelled) => {
            Response::new(410, "Gone", format!("job {id} was cancelled\n")).with_job_id(id)
        }
        Some(JobState::Done { status, body }) => {
            Response::new(status, reason_for(status), body).with_job_id(id)
        }
    }
}

/// The reason phrase for a journalled status (the stored record carries
/// only the code).
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        410 => "Gone",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Done",
    }
}

fn render_metrics(inner: &Inner) -> String {
    use std::fmt::Write as _;
    let h = inner.service.health();
    let mut out = String::with_capacity(1024);
    let mut w = |name: &str, v: u64| {
        let _ = writeln!(out, "slif_{name} {v}");
    };
    w("requests_total", inner.stats.requests.load(Ordering::Relaxed));
    w(
        "connections_shed_total",
        inner.stats.shed_conns.load(Ordering::Relaxed),
    );
    w("queue_depth", h.queue_depth as u64);
    w("in_flight", h.in_flight);
    w("workers_alive", h.workers_alive as u64);
    w("jobs_submitted_total", h.submitted);
    w("jobs_completed_total", h.completed);
    w("jobs_failed_total", h.failed);
    w("jobs_shed_total", h.shed);
    w("jobs_retried_total", h.retried);
    w("jobs_timed_out_total", h.timed_out);
    w("jobs_cancelled_total", h.cancelled);
    w("worker_panics_total", h.worker_panics);
    w("degraded_runs_total", h.degraded_runs);
    let s = inner.sessions.stats();
    w("session_created_total", s.created);
    w("session_edits_total", s.edits);
    w("session_full_rebuilds_total", s.full_rebuilds);
    w("session_evicted_total", s.evicted);
    w("session_active", s.active);
    w("latency_p50_us", h.latency.p50_micros().unwrap_or(0));
    w("latency_p90_us", h.latency.p90_micros().unwrap_or(0));
    w("latency_p99_us", h.latency.p99_micros().unwrap_or(0));
    if let Some(store) = &inner.durable {
        let c = store.cache_stats();
        w("store_cache_hits_total", c.hits);
        w("store_cache_misses_total", c.misses);
        w("store_cache_quarantined_total", c.quarantined);
        w("store_cache_puts_total", c.puts);
        let sh = store.health();
        w("store_journal_records_replayed", sh.records_replayed);
        w("store_journal_pending_recovered", sh.pending_recovered);
        w("store_journal_truncated", u64::from(sh.truncated));
        w(
            "store_journal_header_quarantined",
            u64::from(sh.header_quarantined),
        );
        w("store_journal_quarantined_bytes", sh.quarantined_bytes);
        w("store_journal_append_failures_total", sh.append_failures);
    }
    for (status, count) in crate::lock(&inner.stats.statuses).iter() {
        let _ = writeln!(out, "slif_http_responses_total{{code=\"{status}\"}} {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::Write as _;

    fn tiny_server(tenants: Vec<TenantSpec>) -> Server {
        Server::bind(
            ServerConfig::new()
                .with_conn_workers(2)
                .with_io_timeouts(Duration::from_millis(200), Duration::from_millis(500))
                .with_runtime(ServiceConfig::new().with_workers(2))
                .with_tenant_list(tenants),
        )
        .unwrap()
    }

    impl ServerConfig {
        fn with_tenant_list(mut self, tenants: Vec<TenantSpec>) -> Self {
            self.tenants = tenants;
            self
        }
    }

    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(raw).unwrap();
        let (status, _, body) = read_response(&mut s).unwrap();
        (status, body)
    }

    const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

    fn post(path: &str, body: &str) -> Vec<u8> {
        format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn serves_health_metrics_and_a_parse() {
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        let (status, body) = roundtrip(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("workers"));
        let (status, body) = roundtrip(addr, &post("/v1/parse", GOOD_SPEC));
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert!(String::from_utf8_lossy(&body).contains("parsed: 1 behaviors"));
        let (status, body) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body).into_owned();
        assert!(text.contains("slif_requests_total"), "{text}");
        assert!(text.contains("slif_latency_p99_us"), "{text}");
        server.shutdown();
    }

    #[test]
    fn refuses_unknown_paths_and_methods() {
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        assert_eq!(roundtrip(addr, &post("/v1/nope", "x")).0, 404);
        assert_eq!(
            roundtrip(addr, b"GET /v1/parse HTTP/1.1\r\n\r\n").0,
            405
        );
        assert_eq!(
            roundtrip(addr, b"DELETE /health HTTP/1.1\r\n\r\n").0,
            405
        );
        server.shutdown();
    }

    #[test]
    fn drain_gates_jobs_but_not_observability() {
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        server.begin_drain();
        assert_eq!(roundtrip(addr, &post("/v1/parse", GOOD_SPEC)).0, 410);
        assert_eq!(roundtrip(addr, b"GET /health HTTP/1.1\r\n\r\n").0, 200);
        server.shutdown();
    }

    #[test]
    fn tenancy_rejects_bad_keys_and_quota_floods() {
        let server = tiny_server(vec![
            TenantSpec::new("solid", "ks").with_weight(2),
            TenantSpec::new("capped", "kc").with_quota(0.1, 1.0),
        ]);
        let addr = server.addr();
        // No key and wrong key → 401.
        assert_eq!(roundtrip(addr, &post("/v1/parse", GOOD_SPEC)).0, 401);
        let mut with_key = format!(
            "POST /v1/parse HTTP/1.1\r\nx-api-key: bogus\r\ncontent-length: {}\r\n\r\n{GOOD_SPEC}",
            GOOD_SPEC.len()
        )
        .into_bytes();
        assert_eq!(roundtrip(addr, &with_key).0, 401);
        // Good key → 200.
        with_key = format!(
            "POST /v1/parse HTTP/1.1\r\nx-api-key: ks\r\ncontent-length: {}\r\n\r\n{GOOD_SPEC}",
            GOOD_SPEC.len()
        )
        .into_bytes();
        assert_eq!(roundtrip(addr, &with_key).0, 200);
        // Capped tenant: first passes, second 429s with Retry-After.
        let capped = format!(
            "POST /v1/parse HTTP/1.1\r\nx-api-key: kc\r\ncontent-length: {}\r\n\r\n{GOOD_SPEC}",
            GOOD_SPEC.len()
        )
        .into_bytes();
        assert_eq!(roundtrip(addr, &capped).0, 200);
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&capped).unwrap();
        let (status, headers, _) = read_response(&mut s).unwrap();
        assert_eq!(status, 429);
        assert!(
            headers.iter().any(|(n, _)| n == "retry-after"),
            "{headers:?}"
        );
        server.shutdown();
    }

    #[test]
    fn bad_spec_is_422_and_panic_is_isolated() {
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        let (status, body) = roundtrip(addr, &post("/v1/estimate", "system ; process {"));
        assert_eq!(status, 422, "{}", String::from_utf8_lossy(&body));
        // The server survives to serve the next request.
        assert_eq!(roundtrip(addr, &post("/v1/parse", GOOD_SPEC)).0, 200);
        server.shutdown();
    }

    /// Two requests sent back-to-back in one burst (HTTP/1.1
    /// pipelining): the second must not be truncated by bytes the
    /// server over-read while framing the first.
    #[test]
    fn pipelined_requests_both_get_responses() {
        let server = tiny_server(Vec::new());
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut burst = post("/v1/parse", GOOD_SPEC);
        burst.extend_from_slice(&post("/v1/parse", GOOD_SPEC));
        s.write_all(&burst).unwrap();
        for _ in 0..2 {
            let (status, _, body) = read_response(&mut s).unwrap();
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        }
        server.shutdown();
    }

    fn durable_server(dir: &std::path::Path) -> Server {
        Server::bind(
            ServerConfig::new()
                .with_conn_workers(2)
                .with_io_timeouts(Duration::from_millis(200), Duration::from_millis(500))
                .with_runtime(ServiceConfig::new().with_workers(2))
                .with_store_dir(dir),
        )
        .unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        read_response(&mut s).unwrap()
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn durable_jobs_survive_a_restart_with_identical_bodies() {
        let dir = std::env::temp_dir().join(format!("slif-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = durable_server(&dir);
        let addr = server.addr();
        // Submit synchronously; the response carries the durable id.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&post("/v1/estimate", GOOD_SPEC)).unwrap();
        let (status, headers, body) = read_response(&mut s).unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let id: u64 = header(&headers, "x-slif-job-id").unwrap().parse().unwrap();
        // Retrieval before the restart...
        let (status, _, stored) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200);
        assert_eq!(stored, body);
        // ...and after: a brand-new server over the same store replays
        // the journalled result bit for bit.
        server.shutdown();
        let server = durable_server(&dir);
        let (status, headers2, replayed) = get(server.addr(), &format!("/jobs/{id}"));
        assert_eq!(status, 200);
        assert_eq!(replayed, body, "restart changed the stored body");
        assert_eq!(header(&headers2, "x-slif-job-id"), Some(&*id.to_string()));
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn repeat_specs_hit_the_design_cache() {
        let dir = std::env::temp_dir().join(format!("slif-serve-cachehit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = durable_server(&dir);
        let addr = server.addr();
        let (first, first_body) = roundtrip(addr, &post("/v1/analyze", GOOD_SPEC));
        let (second, second_body) = roundtrip(addr, &post("/v1/analyze", GOOD_SPEC));
        assert_eq!((first, second), (200, 200));
        assert_eq!(first_body, second_body, "warm response diverged from cold");
        let (_, _, metrics) = get(addr, "/metrics");
        let text = String::from_utf8_lossy(&metrics).into_owned();
        assert!(text.contains("slif_store_cache_puts_total 1"), "{text}");
        let hits: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("slif_store_cache_hits_total "))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(hits >= 1, "{text}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn jobs_endpoint_refuses_bad_ids_and_unknown_jobs() {
        let dir = std::env::temp_dir().join(format!("slif-serve-jobs404-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = durable_server(&dir);
        let addr = server.addr();
        assert_eq!(get(addr, "/jobs/not-a-number").0, 400);
        assert_eq!(get(addr, "/jobs/999").0, 404);
        let (status, _, _) = {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(b"DELETE /jobs/1 HTTP/1.1\r\n\r\n").unwrap();
            read_response(&mut s).unwrap()
        };
        assert_eq!(status, 405);
        server.shutdown();
        // A stateless server has no /jobs surface at all.
        let server = tiny_server(Vec::new());
        assert_eq!(get(server.addr(), "/jobs/0").0, 404);
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    fn post_edit(id: u64, start: usize, end: usize, body: &str) -> Vec<u8> {
        format!(
            "POST /sessions/{id}/edit HTTP/1.1\r\nx-slif-edit-start: {start}\r\nx-slif-edit-end: {end}\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn edit_sessions_open_edit_and_report_over_the_wire() {
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        // Open: 201 with the session id and a clean recompiled update.
        let (status, body) = roundtrip(addr, &post("/sessions", GOOD_SPEC));
        let text = String::from_utf8_lossy(&body).into_owned();
        assert_eq!(status, 201, "{text}");
        assert!(text.contains("\"session\":1"), "{text}");
        assert!(text.contains("\"clean\":true"), "{text}");
        assert!(text.contains("\"tier\":\"recompiled\""), "{text}");
        // A comment append is the cheap tier.
        let end = GOOD_SPEC.len();
        let (status, body) = roundtrip(addr, &post_edit(1, end, end, "// note\n"));
        let text = String::from_utf8_lossy(&body).into_owned();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"revision\":1"), "{text}");
        assert!(text.contains("\"tier\":\"patched\""), "{text}");
        // A breaking edit defers; the status page labels stale reports.
        let (status, body) = roundtrip(addr, &post_edit(1, 0, 0, "{"));
        let text = String::from_utf8_lossy(&body).into_owned();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"clean\":false"), "{text}");
        assert!(text.contains("\"tier\":\"deferred\""), "{text}");
        let (status, _, body) = get(addr, "/sessions/1");
        let text = String::from_utf8_lossy(&body).into_owned();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("revision 2, broken"), "{text}");
        assert!(text.contains("last clean revision"), "{text}");
        // Fix it back and the status page goes clean again.
        let (status, _) = roundtrip(addr, &post_edit(1, 0, 1, ""));
        assert_eq!(status, 200);
        let (_, _, body) = get(addr, "/sessions/1");
        let text = String::from_utf8_lossy(&body).into_owned();
        assert!(text.contains("revision 3, clean"), "{text}");
        // Metrics carry the session counters.
        let (_, _, metrics) = get(addr, "/metrics");
        let text = String::from_utf8_lossy(&metrics).into_owned();
        assert!(text.contains("slif_session_created_total 1"), "{text}");
        assert!(text.contains("slif_session_edits_total 3"), "{text}");
        assert!(text.contains("slif_session_active 1"), "{text}");
        server.shutdown();
    }

    #[test]
    fn session_refusals_are_distinct_statuses() {
        let server = Server::bind(
            ServerConfig::new()
                .with_conn_workers(2)
                .with_io_timeouts(Duration::from_millis(200), Duration::from_millis(500))
                .with_runtime(ServiceConfig::new().with_workers(2))
                .with_session_limits(SessionLimits {
                    max_per_tenant: 1,
                    idle_ttl: Duration::from_secs(300),
                }),
        )
        .unwrap();
        let addr = server.addr();
        assert_eq!(roundtrip(addr, &post("/sessions", GOOD_SPEC)).0, 201);
        // At the cap: 409, not a compile.
        assert_eq!(roundtrip(addr, &post("/sessions", GOOD_SPEC)).0, 409);
        // Unknown session: 404. Bad id: 400. Bad range header: 400.
        assert_eq!(roundtrip(addr, &post_edit(99, 0, 0, "x")).0, 404);
        assert_eq!(get(addr, "/sessions/not-a-number").0, 400);
        let raw = b"POST /sessions/1/edit HTTP/1.1\r\ncontent-length: 1\r\n\r\nx";
        assert_eq!(roundtrip(addr, raw).0, 400);
        // Out-of-bounds delta: 422, and the session survives it.
        assert_eq!(roundtrip(addr, &post_edit(1, 0, 1_000_000, "")).0, 422);
        assert_eq!(get(addr, "/sessions/1").0, 200);
        // Wrong method on both session paths.
        assert_eq!(
            roundtrip(addr, b"DELETE /sessions/1 HTTP/1.1\r\n\r\n").0,
            405
        );
        assert_eq!(roundtrip(addr, b"GET /sessions HTTP/1.1\r\n\r\n").0, 405);
        server.shutdown();
    }

    #[test]
    fn sessions_respect_tenancy_and_drain() {
        let server = tiny_server(vec![
            TenantSpec::new("alpha", "ka"),
            TenantSpec::new("beta", "kb"),
        ]);
        let addr = server.addr();
        let open_as = |key: &str| {
            format!(
                "POST /sessions HTTP/1.1\r\nx-api-key: {key}\r\ncontent-length: {}\r\n\r\n{GOOD_SPEC}",
                GOOD_SPEC.len()
            )
            .into_bytes()
        };
        assert_eq!(roundtrip(addr, &post("/sessions", GOOD_SPEC)).0, 401);
        assert_eq!(roundtrip(addr, &open_as("ka")).0, 201);
        // Tenant isolation: beta cannot see alpha's session 1.
        let status_as = |key: &str, id: u64| {
            format!("GET /sessions/{id} HTTP/1.1\r\nx-api-key: {key}\r\n\r\n").into_bytes()
        };
        assert_eq!(roundtrip(addr, &status_as("kb", 1)).0, 404);
        assert_eq!(roundtrip(addr, &status_as("ka", 1)).0, 200);
        // Drain: no new sessions, no edits — but status stays readable.
        server.begin_drain();
        assert_eq!(roundtrip(addr, &open_as("ka")).0, 410);
        let edit = b"POST /sessions/1/edit HTTP/1.1\r\nx-api-key: ka\r\nx-slif-edit-start: 0\r\nx-slif-edit-end: 0\r\ncontent-length: 0\r\n\r\n";
        assert_eq!(roundtrip(addr, edit).0, 410);
        assert_eq!(roundtrip(addr, &status_as("ka", 1)).0, 200);
        server.shutdown();
    }

    fn sample_wire_bytes(encoding: slif_formats::Encoding) -> (slif_core::Design, Vec<u8>) {
        use slif_core::{AccessKind, Design, NodeKind};
        let mut d = Design::new("wire-test");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, v.into(), AccessKind::Write)
            .unwrap();
        let bytes = slif_formats::write_bytes(&d, None, encoding).unwrap();
        (d, bytes)
    }

    fn post_raw(path: &str, body: &[u8], extra: &str) -> Vec<u8> {
        let mut raw = format!(
            "POST {path} HTTP/1.1\r\n{extra}content-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(body);
        raw
    }

    #[test]
    fn design_import_export_round_trips_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("slif-serve-designs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = durable_server(&dir);
        let addr = server.addr();
        for encoding in [slif_formats::Encoding::Text, slif_formats::Encoding::Binary] {
            let (design, bytes) = sample_wire_bytes(encoding);
            let (status, body) = roundtrip(addr, &post_raw("/designs", &bytes, ""));
            let text = String::from_utf8_lossy(&body).into_owned();
            assert_eq!(status, 201, "{text}");
            assert!(text.contains("verified"), "{text}");
            let hash = text
                .lines()
                .find_map(|l| l.strip_prefix("design "))
                .unwrap()
                .to_owned();
            assert_eq!(hash.len(), 64, "{text}");
            // Text export (default Accept) round-trips structurally.
            let (status, _, exported) = get(addr, &format!("/designs/{hash}"));
            assert_eq!(status, 200);
            let out = slif_formats::read_bytes(
                &exported,
                slif_formats::Strictness::Strict,
                &slif_formats::FormatLimits::default(),
            )
            .unwrap();
            assert_eq!(out.design, design);
            assert!(out.verified);
            // Binary export via content negotiation.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(
                format!(
                    "GET /designs/{hash} HTTP/1.1\r\naccept: application/octet-stream\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
            let (status, headers, exported) = read_response(&mut s).unwrap();
            assert_eq!(status, 200);
            assert_eq!(
                header(&headers, "content-type"),
                Some("application/octet-stream")
            );
            assert_eq!(
                slif_formats::detect_encoding(&exported),
                Some(slif_formats::Encoding::Binary)
            );
            let out = slif_formats::read_bytes(
                &exported,
                slif_formats::Strictness::Strict,
                &slif_formats::FormatLimits::default(),
            )
            .unwrap();
            assert_eq!(out.design, design);
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn design_routes_refuse_hostile_inputs_with_distinct_statuses() {
        let dir = std::env::temp_dir().join(format!("slif-serve-designs-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = durable_server(&dir);
        let addr = server.addr();
        // Garbage bytes: typed 422, not a panic or a hang.
        let (status, body) = roundtrip(addr, &post_raw("/designs", b"not slif at all", ""));
        assert_eq!(status, 422, "{}", String::from_utf8_lossy(&body));
        // A corrupted text body: strict import refuses.
        let (_, bytes) = sample_wire_bytes(slif_formats::Encoding::Text);
        let mut torn = bytes.clone();
        torn.truncate(bytes.len() / 2);
        let (status, _) = roundtrip(addr, &post_raw("/designs", &torn, ""));
        assert_eq!(status, 422);
        // A bit-flipped binary body: checksum catches it, 422.
        let (_, mut flipped) = sample_wire_bytes(slif_formats::Encoding::Binary);
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let (status, _) = roundtrip(addr, &post_raw("/designs", &flipped, ""));
        assert_eq!(status, 422);
        // Bad hash shapes: 400. Unknown hash: 404. Wrong methods: 405.
        assert_eq!(get(addr, "/designs/xyz").0, 400);
        assert_eq!(get(addr, &format!("/designs/{}", "0".repeat(64))).0, 404);
        assert_eq!(roundtrip(addr, b"DELETE /designs HTTP/1.1\r\n\r\n").0, 405);
        assert_eq!(
            roundtrip(
                addr,
                format!("PUT /designs/{} HTTP/1.1\r\n\r\n", "0".repeat(64)).as_bytes()
            )
            .0,
            405
        );
        // Oversized body: refused by declaration (413), body never read.
        let huge = format!(
            "POST /designs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            1 << 30
        );
        assert_eq!(roundtrip(addr, huge.as_bytes()).0, 413);
        server.shutdown();
        // Stateless server: import still parses (200), export has no store.
        let server = tiny_server(Vec::new());
        let addr = server.addr();
        let (_, bytes) = sample_wire_bytes(slif_formats::Encoding::Text);
        let (status, body) = roundtrip(addr, &post_raw("/designs", &bytes, ""));
        let text = String::from_utf8_lossy(&body).into_owned();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("not persisted"), "{text}");
        assert_eq!(get(addr, &format!("/designs/{}", "0".repeat(64))).0, 404);
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn design_import_respects_drain_and_tenancy() {
        let server = tiny_server(vec![TenantSpec::new("alpha", "ka")]);
        let addr = server.addr();
        let (_, bytes) = sample_wire_bytes(slif_formats::Encoding::Text);
        assert_eq!(roundtrip(addr, &post_raw("/designs", &bytes, "")).0, 401);
        assert_eq!(
            roundtrip(addr, &post_raw("/designs", &bytes, "x-api-key: ka\r\n")).0,
            200
        );
        server.begin_drain();
        assert_eq!(
            roundtrip(addr, &post_raw("/designs", &bytes, "x-api-key: ka\r\n")).0,
            410
        );
        server.shutdown();
    }

    #[test]
    fn keep_alive_carries_multiple_requests() {
        let server = tiny_server(Vec::new());
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for _ in 0..3 {
            s.write_all(&post("/v1/parse", GOOD_SPEC)).unwrap();
            let (status, _, _) = read_response(&mut s).unwrap();
            assert_eq!(status, 200);
        }
        server.shutdown();
    }
}
