//! A deterministic, fault-injecting load generator for `slif-serve`.
//!
//! One seeded plan drives everything: a mixed stream of clean
//! parse/estimate/explore/analyze requests interleaved with **injected
//! client faults** — slow writers, truncated bodies, bad API keys,
//! oversized declarations, and tenant floods against a quota-capped
//! key. The same binary is the benchmark (`BENCH_serve.json`) and the
//! wire-level soak harness: for every clean request it precomputes the
//! expected response with the *same* pure functions the server uses
//! ([`wire::job_for`](crate::wire::job_for) + `Job::run_inline` +
//! [`wire::render_output`](crate::wire::render_output)) and asserts the
//! body that came over the socket is **byte-identical**.
//!
//! A run records, per job kind, a latency histogram (p50/p90/p99) and
//! overall throughput; every response that is neither the expected one
//! nor an acceptable shed (429/503/504) is a recorded **violation** —
//! the soak test requires zero.

use crate::http::{read_response, ClientResponse, RecvError};
use crate::wire::{
    job_for, render_output, response_for_error, Endpoint, WireParams, HDR_API_KEY, HDR_ITERATIONS,
    HDR_SEED,
};
use rand::rngs::StdRng;
use rand::Rng;
use slif_runtime::jitter::seeded_rng;
use slif_runtime::{LatencyHistogram, RunLimits};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tiny always-valid spec (the runtime soak suite's fixture).
pub const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nvar y : int<8>;\nprocess Main { x = x + 1; y = y + x; }\n";
/// A malformed spec, for exercising the 422 path end to end.
pub const MALFORMED_SPEC: &str = "system ;\nprocess { x = ; }\nif not\n";

/// Tuning for one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The server to hit.
    pub addr: SocketAddr,
    /// Total requests to send (clean + faulted).
    pub requests: usize,
    /// Concurrent client threads (default 8, floor 1).
    pub clients: usize,
    /// Fraction of requests that are injected faults (default 0.35).
    pub fault_rate: f64,
    /// Plan seed; equal seeds give identical plans.
    pub seed: u64,
    /// Valid API keys to rotate through for clean traffic (empty for an
    /// open server).
    pub keys: Vec<String>,
    /// A valid key for a *quota-capped* tenant; flood faults hammer it
    /// expecting 429s. `None` disables flood faults.
    pub flood_key: Option<String>,
    /// Must match the server's run limits for bit-identity.
    pub limits: RunLimits,
    /// Must match the server's exploration-iteration cap.
    pub explore_cap: u64,
    /// The server's read deadline; slow-writer faults stall just past it.
    pub server_read_timeout: Duration,
}

impl LoadgenConfig {
    /// A config against `addr` with the defaults above.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            requests: 1000,
            clients: 8,
            fault_rate: 0.35,
            seed: 0,
            keys: Vec::new(),
            flood_key: None,
            limits: RunLimits::default(),
            explore_cap: 64,
            server_read_timeout: Duration::from_millis(500),
        }
    }
}

/// One precomputed clean request and its oracle response.
#[derive(Debug)]
struct Combo {
    endpoint: Endpoint,
    source: &'static str,
    seed: u64,
    iterations: u64,
    expect_status: u16,
    expect_body: String,
}

/// One planned request.
#[derive(Debug, Clone, Copy)]
enum Planned {
    /// A clean request by combo index; the response must match the oracle.
    Clean(usize),
    /// A request with an unknown API key (expect 401).
    BadKey(usize),
    /// A huge declared `Content-Length` with no body (expect 413).
    Oversized,
    /// A declared body cut short mid-send (expect 400 or a dropped
    /// connection).
    Truncated(usize),
    /// A partial request head followed by a stall past the server's
    /// read deadline (expect 408 or a dropped connection).
    SlowWriter,
    /// A clean request on the quota-capped flood tenant (expect the
    /// oracle response or 429).
    Flood(usize),
}

impl Planned {
    fn kind(self) -> &'static str {
        match self {
            Planned::Clean(_) => "clean",
            Planned::BadKey(_) => "bad-key",
            Planned::Oversized => "oversized",
            Planned::Truncated(_) => "truncated",
            Planned::SlowWriter => "slow-writer",
            Planned::Flood(_) => "flood",
        }
    }

    fn is_fault(self) -> bool {
        !matches!(self, Planned::Clean(_))
    }
}

/// Per-kind latency and success accounting.
#[derive(Debug, Default, Clone)]
pub struct KindStats {
    /// Requests of this kind sent.
    pub count: u64,
    /// Requests whose response was the expected/acceptable one.
    pub ok: u64,
    /// Latency of responded requests.
    pub latency: LatencyHistogram,
}

/// The outcome of a run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Responses by status code.
    pub statuses: BTreeMap<u16, u64>,
    /// Accounting by request kind (`clean` split by job kind, faults by
    /// fault name).
    pub kinds: BTreeMap<String, KindStats>,
    /// Requests that ended in a dropped/reset connection instead of a
    /// response (expected for some fault kinds).
    pub client_aborts: u64,
    /// Responses that violated the protocol contract. **Must be empty
    /// for a healthy server.**
    pub violations: Vec<String>,
    /// Requests sent.
    pub total: u64,
    /// Wall-clock for the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Overall throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total as f64 / secs
        } else {
            0.0
        }
    }

    /// Count of responses with `status`.
    pub fn status(&self, status: u16) -> u64 {
        self.statuses.get(&status).copied().unwrap_or(0)
    }

    /// Renders the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"schema\": \"slif-serve-bench-v1\",\n");
        let _ = writeln!(out, "  \"requests\": {},", self.total);
        let _ = writeln!(out, "  \"wall_ms\": {},", self.wall.as_millis());
        let _ = writeln!(
            out,
            "  \"throughput_rps\": {:.1},",
            self.throughput_rps()
        );
        let _ = writeln!(out, "  \"client_aborts\": {},", self.client_aborts);
        let _ = writeln!(out, "  \"violations\": {},", self.violations.len());
        out.push_str("  \"statuses\": {");
        let mut first = true;
        for (status, count) in &self.statuses {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{status}\": {count}");
        }
        out.push_str("},\n  \"kinds\": {\n");
        let mut first = true;
        for (kind, stats) in &self.kinds {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    \"{kind}\": {{\"count\": {}, \"ok\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                stats.count,
                stats.ok,
                stats.latency.p50_micros().unwrap_or(0),
                stats.latency.p90_micros().unwrap_or(0),
                stats.latency.p99_micros().unwrap_or(0)
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Builds the oracle table: every (endpoint × spec × tuning) combo with
/// its expected status and body, computed by the same pure functions the
/// server runs.
fn build_combos(config: &LoadgenConfig) -> Vec<Combo> {
    let specs: [&'static str; 4] = [
        GOOD_SPEC,
        slif_speclang::corpus::FUZZY,
        slif_speclang::corpus::VOL,
        MALFORMED_SPEC,
    ];
    let mut combos = Vec::new();
    for source in specs {
        for endpoint in Endpoint::ALL {
            let variants: &[(u64, u64)] = if endpoint == Endpoint::Explore {
                &[(1, 16), (7, 32)]
            } else {
                &[(0, 0)]
            };
            for &(seed, iterations) in variants {
                let params = WireParams { seed, iterations };
                let (expect_status, expect_body) =
                    match job_for(endpoint, source, &params, &config.limits, config.explore_cap) {
                        Err(diag) => (422, format!("specification rejected: {diag}\n")),
                        Ok(job) => match job.run_inline(&config.limits) {
                            Ok(out) => (200, render_output(&out)),
                            Err(e) => {
                                let r = response_for_error(&e);
                                (r.status, String::from_utf8_lossy(&r.body).into_owned())
                            }
                        },
                    };
                // Keep non-200 estimate combos out of the mix: repeated
                // strict-estimation failures would trip the service's
                // circuit breaker into the degraded path, whose output
                // legitimately differs from an inline run.
                if endpoint != Endpoint::Parse && expect_status != 200 {
                    continue;
                }
                combos.push(Combo {
                    endpoint,
                    source,
                    seed,
                    iterations,
                    expect_status,
                    expect_body,
                });
            }
        }
    }
    combos
}

/// Builds the request plan for the whole run, deterministically from the
/// seed.
fn build_plan(config: &LoadgenConfig, combos: &[Combo]) -> Vec<Planned> {
    let mut rng = seeded_rng(config.seed, 0);
    let mut plan = Vec::with_capacity(config.requests);
    let has_flood = config.flood_key.is_some();
    let has_keys = !config.keys.is_empty();
    for _ in 0..config.requests {
        if rng.gen_bool(config.fault_rate.clamp(0.0, 1.0)) {
            // Fault mix: truncated 30%, bad key 25%, oversized 25%,
            // flood 15%, slow writer 5% (slow writers serialize a whole
            // read-deadline each, so they stay rare).
            let roll = rng.gen_range(0..100u32);
            let fault = if roll < 30 {
                Planned::Truncated(rng.gen_range(0..combos.len()))
            } else if roll < 55 && has_keys {
                Planned::BadKey(rng.gen_range(0..combos.len()))
            } else if roll < 80 {
                Planned::Oversized
            } else if roll < 95 && has_flood {
                Planned::Flood(rng.gen_range(0..combos.len()))
            } else {
                Planned::SlowWriter
            };
            plan.push(fault);
        } else {
            plan.push(Planned::Clean(rng.gen_range(0..combos.len())));
        }
    }
    plan
}

struct ClientShard {
    statuses: BTreeMap<u16, u64>,
    kinds: BTreeMap<String, KindStats>,
    client_aborts: u64,
    violations: Vec<String>,
}

/// Runs the full plan against the server and returns the report.
///
/// # Panics
///
/// Never on server behaviour — contract breaches become violations in
/// the report. Panics only if client threads cannot be spawned.
pub fn run(config: &LoadgenConfig) -> LoadReport {
    let combos = Arc::new(build_combos(config));
    let plan = build_plan(config, &combos);
    let clients = config.clients.max(1);
    let start = Instant::now();
    let shards: Vec<ClientShard> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for client_idx in 0..clients {
            let combos = Arc::clone(&combos);
            let my_plan: Vec<Planned> = plan
                .iter()
                .skip(client_idx)
                .step_by(clients)
                .copied()
                .collect();
            let cfg = config.clone();
            handles.push(scope.spawn(move || client_loop(&cfg, client_idx, &my_plan, &combos)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(shard) => shard,
                Err(_) => ClientShard {
                    statuses: BTreeMap::new(),
                    kinds: BTreeMap::new(),
                    client_aborts: 0,
                    violations: vec!["client thread panicked".to_owned()],
                },
            })
            .collect()
    });
    let mut report = LoadReport {
        total: plan.len() as u64,
        wall: start.elapsed(),
        ..LoadReport::default()
    };
    for shard in shards {
        for (status, count) in shard.statuses {
            *report.statuses.entry(status).or_insert(0) += count;
        }
        for (kind, stats) in shard.kinds {
            let entry = report.kinds.entry(kind).or_default();
            entry.count += stats.count;
            entry.ok += stats.ok;
            for (i, &n) in stats.latency.buckets().iter().enumerate() {
                for _ in 0..n {
                    // Merge histograms bucket-by-bucket by replaying
                    // representative samples (bucket upper bounds).
                    entry
                        .latency
                        .record(Duration::from_micros((1u64 << i.min(40)).saturating_sub(1)));
                }
            }
        }
        report.client_aborts += shard.client_aborts;
        report.violations.extend(shard.violations);
    }
    report
}

/// One keep-alive client working through its plan shard.
fn client_loop(
    config: &LoadgenConfig,
    client_idx: usize,
    plan: &[Planned],
    combos: &[Combo],
) -> ClientShard {
    let mut shard = ClientShard {
        statuses: BTreeMap::new(),
        kinds: BTreeMap::new(),
        client_aborts: 0,
        violations: Vec::new(),
    };
    let mut rng = seeded_rng(config.seed, 1 + client_idx as u64);
    let mut conn: Option<TcpStream> = None;
    for (i, planned) in plan.iter().enumerate() {
        let label = format!("client {client_idx} request {i} ({})", planned.kind());
        execute(config, &mut rng, *planned, combos, &mut conn, &label, &mut shard);
        if shard.violations.len() > 32 {
            shard
                .violations
                .push(format!("{label}: too many violations; aborting shard"));
            break;
        }
    }
    shard
}

fn connect(config: &LoadgenConfig) -> Option<TcpStream> {
    let stream = TcpStream::connect_timeout(&config.addr, Duration::from_secs(5)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .ok()?;
    Some(stream)
}

fn combo_request(combo: &Combo, key: Option<&str>) -> Vec<u8> {
    let path = match combo.endpoint {
        Endpoint::Parse => "/v1/parse",
        Endpoint::Estimate => "/v1/estimate",
        Endpoint::Explore => "/v1/explore",
        Endpoint::Analyze => "/v1/analyze",
    };
    let mut head = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", combo.source.len());
    if let Some(key) = key {
        head.push_str(&format!("{HDR_API_KEY}: {key}\r\n"));
    }
    if combo.endpoint == Endpoint::Explore {
        head.push_str(&format!("{HDR_SEED}: {}\r\n", combo.seed));
        head.push_str(&format!("{HDR_ITERATIONS}: {}\r\n", combo.iterations));
    }
    head.push_str("\r\n");
    let mut raw = head.into_bytes();
    raw.extend_from_slice(combo.source.as_bytes());
    raw
}

/// Sends `raw` and reads the response, reconnecting and resending once
/// if the keep-alive connection had gone stale. `Ok(None)` is a client
/// abort (connection dropped without a response).
fn send_recv(
    config: &LoadgenConfig,
    conn: &mut Option<TcpStream>,
    raw: &[u8],
) -> Option<ClientResponse> {
    for attempt in 0..2 {
        if conn.is_none() {
            *conn = connect(config);
        }
        let stream = conn.as_mut()?;
        if stream.write_all(raw).and_then(|()| stream.flush()).is_err() {
            *conn = None;
            continue;
        }
        match read_response(stream) {
            Ok(reply) => {
                if reply
                    .1
                    .iter()
                    .any(|(n, v)| n == "connection" && v == "close")
                {
                    *conn = None;
                }
                return Some(reply);
            }
            Err(RecvError::Closed) if attempt == 0 => {
                // Stale keep-alive connection; reconnect and resend.
                *conn = None;
            }
            Err(_) => {
                *conn = None;
                return None;
            }
        }
    }
    None
}

#[allow(clippy::too_many_lines)]
fn execute(
    config: &LoadgenConfig,
    rng: &mut StdRng,
    planned: Planned,
    combos: &[Combo],
    conn: &mut Option<TcpStream>,
    label: &str,
    shard: &mut ClientShard,
) {
    let started = Instant::now();
    let kind_label: String;
    let outcome: Result<Option<(u16, Vec<u8>)>, ()> = match planned {
        Planned::Clean(idx) | Planned::Flood(idx) => {
            let combo = &combos[idx];
            kind_label = if planned.is_fault() {
                "flood".to_owned()
            } else {
                combo.endpoint.kind().to_owned()
            };
            let key = if matches!(planned, Planned::Flood(_)) {
                config.flood_key.as_deref()
            } else if config.keys.is_empty() {
                None
            } else {
                Some(config.keys[rng.gen_range(0..config.keys.len())].as_str())
            };
            let raw = combo_request(combo, key);
            match send_recv(config, conn, &raw) {
                None => Ok(None),
                Some((status, _, body)) => {
                    let acceptable_shed = matches!(status, 503 | 504)
                        || (matches!(planned, Planned::Flood(_)) && status == 429);
                    if status == combo.expect_status {
                        if body == combo.expect_body.as_bytes() {
                            Ok(Some((status, body)))
                        } else {
                            shard.violations.push(format!(
                                "{label}: status {status} but body diverged from inline run \
                                 ({} vs {} bytes)",
                                body.len(),
                                combo.expect_body.len()
                            ));
                            Err(())
                        }
                    } else if acceptable_shed {
                        Ok(Some((status, body)))
                    } else {
                        shard.violations.push(format!(
                            "{label}: expected {} got {status}: {}",
                            combo.expect_status,
                            String::from_utf8_lossy(&body[..body.len().min(120)])
                        ));
                        Err(())
                    }
                }
            }
        }
        Planned::BadKey(idx) => {
            kind_label = "bad-key".to_owned();
            let raw = combo_request(&combos[idx], Some("not-a-real-key"));
            match send_recv(config, conn, &raw) {
                None => Ok(None),
                Some((401, _, body)) => Ok(Some((401, body))),
                Some((status, _, body)) => {
                    shard.violations.push(format!(
                        "{label}: expected 401 got {status}: {}",
                        String::from_utf8_lossy(&body[..body.len().min(120)])
                    ));
                    Err(())
                }
            }
        }
        Planned::Oversized => {
            kind_label = "oversized".to_owned();
            // Declare an absurd body and send none of it; the server
            // must refuse by declaration, without reading.
            let raw = b"POST /v1/parse HTTP/1.1\r\ncontent-length: 1073741824\r\n\r\n".to_vec();
            match send_recv(config, conn, &raw) {
                None => Ok(None),
                Some((413, _, body)) => Ok(Some((413, body))),
                Some((status, _, body)) => {
                    shard.violations.push(format!(
                        "{label}: expected 413 got {status}: {}",
                        String::from_utf8_lossy(&body[..body.len().min(120)])
                    ));
                    Err(())
                }
            }
        }
        Planned::Truncated(idx) => {
            kind_label = "truncated".to_owned();
            // A fresh connection, half a body, then a write shutdown:
            // the server sees EOF mid-body.
            *conn = None;
            let combo = &combos[idx];
            let full = combo_request(combo, config.keys.first().map(String::as_str));
            let cut = full.len() - combo.source.len() / 2 - 1;
            match connect(config) {
                None => Ok(None),
                Some(mut stream) => {
                    let sent = stream
                        .write_all(&full[..cut])
                        .and_then(|()| stream.flush())
                        .and_then(|()| stream.shutdown(std::net::Shutdown::Write));
                    if sent.is_err() {
                        Ok(None)
                    } else {
                        match read_response(&mut stream) {
                            Ok((400, _, body)) => Ok(Some((400, body))),
                            Ok((status, _, body)) => {
                                shard.violations.push(format!(
                                    "{label}: expected 400 got {status}: {}",
                                    String::from_utf8_lossy(&body[..body.len().min(120)])
                                ));
                                Err(())
                            }
                            Err(_) => Ok(None),
                        }
                    }
                }
            }
        }
        Planned::SlowWriter => {
            kind_label = "slow-writer".to_owned();
            *conn = None;
            match connect(config) {
                None => Ok(None),
                Some(mut stream) => {
                    let stall = config.server_read_timeout + Duration::from_millis(100);
                    let sent = stream
                        .write_all(b"POST /v1/par")
                        .and_then(|()| stream.flush());
                    std::thread::sleep(stall);
                    if sent.is_err() {
                        Ok(None)
                    } else {
                        match read_response(&mut stream) {
                            Ok((408, _, body)) => Ok(Some((408, body))),
                            Ok((status, _, body)) => {
                                shard.violations.push(format!(
                                    "{label}: expected 408 got {status}: {}",
                                    String::from_utf8_lossy(&body[..body.len().min(120)])
                                ));
                                Err(())
                            }
                            Err(_) => Ok(None),
                        }
                    }
                }
            }
        }
    };
    let elapsed = started.elapsed();
    let stats = shard.kinds.entry(kind_label).or_default();
    stats.count += 1;
    match outcome {
        Ok(Some((status, _body))) => {
            stats.ok += 1;
            stats.latency.record(elapsed);
            *shard.statuses.entry(status).or_insert(0) += 1;
        }
        Ok(None) => {
            shard.client_aborts += 1;
            if planned.is_fault() {
                // Aborts are an acceptable outcome for connection-level
                // faults; for clean traffic they are suspicious but can
                // happen when the server sheds the connection itself.
                stats.ok += 1;
            } else {
                shard
                    .violations
                    .push(format!("{label}: no response (connection dropped)"));
            }
        }
        Err(()) => {
            // Violation already recorded.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_fault_heavy() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap_or_else(|_| unreachable!());
        let mut config = LoadgenConfig::new(addr);
        config.requests = 400;
        config.keys = vec!["k".to_owned()];
        config.flood_key = Some("kf".to_owned());
        let combos = build_combos(&config);
        assert!(
            combos.iter().any(|c| c.endpoint == Endpoint::Estimate),
            "at least one estimate combo must be eligible"
        );
        assert!(
            combos
                .iter()
                .any(|c| c.endpoint == Endpoint::Parse && c.expect_status == 422),
            "the malformed spec must exercise the 422 path"
        );
        let plan_a = build_plan(&config, &combos);
        let plan_b = build_plan(&config, &combos);
        assert_eq!(plan_a.len(), plan_b.len());
        let faults = plan_a.iter().filter(|p| p.is_fault()).count();
        let kinds_match = plan_a
            .iter()
            .zip(&plan_b)
            .all(|(a, b)| a.kind() == b.kind());
        assert!(kinds_match, "same seed must give the same plan");
        assert!(
            faults as f64 >= 0.25 * plan_a.len() as f64,
            "fault share too low: {faults}/{}",
            plan_a.len()
        );
    }

    #[test]
    fn reports_render_valid_json_shape() {
        let mut report = LoadReport::default();
        report.total = 10;
        report.wall = Duration::from_millis(100);
        report.statuses.insert(200, 9);
        report.statuses.insert(429, 1);
        let mut ks = KindStats::default();
        ks.count = 9;
        ks.ok = 9;
        ks.latency.record(Duration::from_micros(100));
        report.kinds.insert("parse-spec".to_owned(), ks);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"slif-serve-bench-v1\""), "{json}");
        assert!(json.contains("\"200\": 9"), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
        assert!(json.contains("\"throughput_rps\": 100.0"), "{json}");
    }
}
