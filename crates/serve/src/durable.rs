//! The durability layer: a write-ahead job journal plus the
//! content-addressed compiled-design cache, glued to the wire protocol.
//!
//! The contract, end to end:
//!
//! 1. **Accept before run** — [`DurableStore::accept`] appends (and
//!    fsyncs) an `Accepted` record *before* the job enters the runtime
//!    queue. If the append fails the request is refused; a job id is
//!    never handed out for work the journal does not know about.
//! 2. **Persist before acknowledge** — the runtime's terminal hook calls
//!    [`DurableStore::record_outcome`] strictly before any waiter can
//!    observe the outcome, so by the time the synchronous response (or a
//!    later `GET /jobs/{id}`) reports a terminal state, that state is on
//!    disk.
//! 3. **Replay on restart** — [`DurableStore::open`] recovers the
//!    journal (truncating torn tails, quarantining corrupt files — see
//!    `slif_store::journal`), restores every terminal result for
//!    `GET /jobs/{id}`, and returns the accepted-but-unfinished jobs so
//!    the server can resubmit them.
//!
//! The `Accepted` payload is the *re-runnable request* — endpoint,
//! params, tenant identity, and spec source — encoded little-endian
//! with length-prefixed bytes, so recovery can rebuild the exact job.

use crate::wire::{render_output, response_for_error, Endpoint, WireParams};
use slif_runtime::JobOutcome;
use slif_store::{CacheStats, DesignCache, JobRecord, Journal, RecoveryReport, StoreError};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A re-runnable request, as journalled in an `Accepted` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableRequest {
    /// Which endpoint the request hit.
    pub endpoint: Endpoint,
    /// Seed and iteration knobs.
    pub params: WireParams,
    /// The admitted tenant id (0 on an open server).
    pub tenant: u32,
    /// The tenant's fair-share weight.
    pub weight: u32,
    /// The specification source body.
    pub source: String,
}

impl DurableRequest {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(29 + self.source.len());
        b.push(self.endpoint.code());
        b.extend_from_slice(&self.params.seed.to_le_bytes());
        b.extend_from_slice(&self.params.iterations.to_le_bytes());
        b.extend_from_slice(&self.tenant.to_le_bytes());
        b.extend_from_slice(&self.weight.to_le_bytes());
        b.extend_from_slice(&(self.source.len() as u32).to_le_bytes());
        b.extend_from_slice(self.source.as_bytes());
        b
    }

    /// Decodes a journalled payload. The journal already CRC-verified
    /// the bytes, but a version skew could still present garbage, so
    /// every read is bounds-checked.
    fn decode(payload: &[u8]) -> Result<Self, &'static str> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], &'static str> {
            let end = pos.checked_add(n).ok_or("payload offset overflow")?;
            if end > payload.len() {
                return Err("payload truncated");
            }
            let s = &payload[pos..end];
            pos = end;
            Ok(s)
        };
        let endpoint = Endpoint::from_code(take(1)?[0]).ok_or("unknown endpoint code")?;
        let mut u64le = |ctx: &'static str| -> Result<u64, &'static str> {
            let b = take(8).map_err(|_| ctx)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            Ok(u64::from_le_bytes(a))
        };
        let seed = u64le("seed truncated")?;
        let iterations = u64le("iterations truncated")?;
        let mut u32le = |ctx: &'static str| -> Result<u32, &'static str> {
            let b = take(4).map_err(|_| ctx)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let tenant = u32le("tenant truncated")?;
        let weight = u32le("weight truncated")?;
        let len = u32le("source length truncated")? as usize;
        let source = std::str::from_utf8(take(len)?)
            .map_err(|_| "source not UTF-8")?
            .to_owned();
        if pos != payload.len() {
            return Err("trailing bytes");
        }
        Ok(Self {
            endpoint,
            params: WireParams { seed, iterations },
            tenant,
            weight,
            source,
        })
    }
}

/// The durable state of a journalled job, as served by `GET /jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no terminal record yet.
    Pending,
    /// Reached a terminal state with this wire status and body.
    Done {
        /// The status the job's outcome mapped to (200/422/500/504).
        status: u16,
        /// The rendered response body.
        body: Vec<u8>,
    },
    /// Cancelled (shutdown discarded it, or recovery could not resubmit).
    Cancelled,
}

/// Journal/recovery counters for `/metrics`. The replay fields are fixed
/// at open; the failure counter is live.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreHealth {
    /// Records replayed from the journal at the last open.
    pub records_replayed: u64,
    /// Accepted-but-unfinished jobs handed back for resubmission.
    pub pending_recovered: u64,
    /// Whether recovery truncated a torn/corrupt tail (0/1).
    pub truncated: bool,
    /// Bytes moved to `.corrupt` sidecars during recovery.
    pub quarantined_bytes: u64,
    /// Whether the whole journal was quarantined for a bad header.
    pub header_quarantined: bool,
    /// Journal appends that failed after the job was already accepted.
    pub append_failures: u64,
}

/// The open journal + cache + in-memory job index.
#[derive(Debug)]
pub struct DurableStore {
    journal: Mutex<Journal>,
    cache: DesignCache,
    states: Mutex<HashMap<u64, JobState>>,
    next_id: AtomicU64,
    append_failures: AtomicU64,
    recovery: RecoveryReport,
    pending_recovered: u64,
}

impl DurableStore {
    /// Opens (or creates) the store under `dir` and recovers the
    /// journal. Returns the store plus every accepted-but-unfinished job
    /// whose payload still decodes — the caller resubmits those.
    /// Pending records whose payload no longer decodes are closed with a
    /// journalled 500 rather than dropped silently.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory or journal cannot be
    /// opened/created. Corruption is not an error — it is recovered.
    pub fn open(dir: &Path) -> Result<(Self, Vec<(u64, DurableRequest)>), StoreError> {
        let (journal, recovery) = Journal::open(&dir.join("journal.wal"))?;
        let cache = DesignCache::open(&dir.join("cache"))?;
        let mut states = HashMap::new();
        for (id, status, body) in &recovery.done {
            states.insert(*id, JobState::Done {
                status: *status,
                body: body.clone(),
            });
        }
        for id in &recovery.cancelled {
            states.insert(*id, JobState::Cancelled);
        }
        let mut store = Self {
            journal: Mutex::new(journal),
            cache,
            states: Mutex::new(states),
            next_id: AtomicU64::new(recovery.next_id),
            append_failures: AtomicU64::new(0),
            pending_recovered: 0,
            recovery,
        };
        let mut resubmit = Vec::new();
        let pending = std::mem::take(&mut store.recovery.pending);
        for job in &pending {
            match DurableRequest::decode(&job.payload) {
                Ok(request) => {
                    crate::lock(&store.states).insert(job.id, JobState::Pending);
                    resubmit.push((job.id, request));
                }
                Err(why) => store.finish(
                    job.id,
                    500,
                    format!("journalled request is no longer decodable: {why}\n").into_bytes(),
                ),
            }
        }
        store.pending_recovered = resubmit.len() as u64;
        Ok((store, resubmit))
    }

    /// Journals an `Accepted` record (append + fsync) and returns the
    /// new durable job id. Called *before* runtime submission.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the record cannot be made durable — the caller
    /// must refuse the request rather than run unjournalled work.
    pub fn accept(&self, request: &DurableRequest) -> Result<u64, StoreError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        crate::lock(&self.journal).append(&JobRecord::Accepted {
            id,
            payload: request.encode(),
        })?;
        crate::lock(&self.states).insert(id, JobState::Pending);
        Ok(id)
    }

    /// Journals a terminal `Completed` record and updates the index.
    /// Best-effort on the disk side: an append failure is counted (the
    /// in-memory state still serves this process's lifetime) because the
    /// job has already run — there is no caller left to refuse.
    pub fn finish(&self, id: u64, status: u16, body: Vec<u8>) {
        let record = JobRecord::Completed {
            id,
            status,
            body: body.clone(),
        };
        if crate::lock(&self.journal).append(&record).is_err() {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
        }
        crate::lock(&self.states).insert(id, JobState::Done { status, body });
    }

    /// Journals a `Cancelled` record and updates the index.
    pub fn cancel(&self, id: u64) {
        if crate::lock(&self.journal)
            .append(&JobRecord::Cancelled { id })
            .is_err()
        {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
        }
        crate::lock(&self.states).insert(id, JobState::Cancelled);
    }

    /// Maps a runtime terminal outcome onto the journal. This is the
    /// body of the terminal hook: it runs before any waiter can observe
    /// `outcome`, so the ack a client sees is always backed by an
    /// fsynced record.
    pub fn record_outcome(&self, id: u64, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Completed { output, .. } => {
                self.finish(id, 200, render_output(output).into_bytes());
            }
            JobOutcome::Failed { error, .. } => {
                let resp = response_for_error(error);
                self.finish(id, resp.status, resp.body);
            }
            JobOutcome::TimedOut => self.finish(
                id,
                504,
                b"job deadline expired before execution finished\n".to_vec(),
            ),
            JobOutcome::Cancelled => self.cancel(id),
            // A future outcome variant still reaches a durable state.
            _ => self.finish(id, 500, b"unknown terminal state\n".to_vec()),
        }
    }

    /// The durable state of a job id, if the journal knows it.
    pub fn lookup(&self, id: u64) -> Option<JobState> {
        crate::lock(&self.states).get(&id).cloned()
    }

    /// The compiled-design cache.
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    /// Cache counters for `/metrics`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Journal/recovery counters for `/metrics`.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            records_replayed: self.recovery.records_replayed,
            pending_recovered: self.pending_recovered,
            truncated: self.recovery.truncated_at.is_some(),
            quarantined_bytes: self.recovery.quarantined_bytes,
            header_quarantined: self.recovery.header_quarantined,
            append_failures: self.append_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slif-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(source: &str) -> DurableRequest {
        DurableRequest {
            endpoint: Endpoint::Estimate,
            params: WireParams {
                seed: 9,
                iterations: 32,
            },
            tenant: 2,
            weight: 3,
            source: source.to_owned(),
        }
    }

    #[test]
    fn request_payload_round_trips() {
        let req = request("system T;\nprocess Main { }\n");
        assert_eq!(DurableRequest::decode(&req.encode()).unwrap(), req);
        // Every truncation is a typed error, never a panic.
        let full = req.encode();
        for cut in 0..full.len() {
            assert!(DurableRequest::decode(&full[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = full.clone();
        trailing.push(0);
        assert!(DurableRequest::decode(&trailing).is_err());
    }

    #[test]
    fn lifecycle_survives_reopen() {
        let dir = temp_dir("lifecycle");
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert!(recovered.is_empty());
        let done = store.accept(&request("a")).unwrap();
        store.finish(done, 200, b"result body".to_vec());
        let cancelled = store.accept(&request("b")).unwrap();
        store.cancel(cancelled);
        let pending = store.accept(&request("c")).unwrap();
        drop(store);

        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(
            store.lookup(done),
            Some(JobState::Done {
                status: 200,
                body: b"result body".to_vec()
            })
        );
        assert_eq!(store.lookup(cancelled), Some(JobState::Cancelled));
        assert_eq!(store.lookup(pending), Some(JobState::Pending));
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, pending);
        assert_eq!(recovered[0].1, request("c"));
        // Ids never collide with journalled ones.
        let fresh = store.accept(&request("d")).unwrap();
        assert!(fresh > pending);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn outcomes_map_to_durable_states() {
        let dir = temp_dir("outcomes");
        let (store, _) = DurableStore::open(&dir).unwrap();
        let id = store.accept(&request("x")).unwrap();
        store.record_outcome(id, &JobOutcome::TimedOut);
        assert_eq!(
            store.lookup(id),
            Some(JobState::Done {
                status: 504,
                body: b"job deadline expired before execution finished\n".to_vec()
            })
        );
        let id = store.accept(&request("y")).unwrap();
        store.record_outcome(id, &JobOutcome::Cancelled);
        assert_eq!(store.lookup(id), Some(JobState::Cancelled));
        assert!(store.lookup(10_000).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn undecodable_pending_payload_is_closed_not_dropped() {
        let dir = temp_dir("undecodable");
        {
            let (journal, _) = Journal::open(&dir.join("journal.wal")).unwrap();
            let mut journal = journal;
            journal
                .append(&JobRecord::Accepted {
                    id: 0,
                    payload: vec![250, 1, 2],
                })
                .unwrap();
        }
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert!(recovered.is_empty());
        match store.lookup(0) {
            Some(JobState::Done { status: 500, body }) => {
                assert!(String::from_utf8_lossy(&body).contains("no longer decodable"));
            }
            other => panic!("unexpected state {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
