//! One evaluation interface across the full and incremental estimators.
//!
//! Exploration algorithms score candidate partitions by moving one object
//! at a time and re-reading the design metrics. The [`Evaluator`] trait is
//! the contract they write against: a shared immutable
//! [`CompiledDesign`] plus an owned, mutable [`Partition`] — the only
//! mutable state — with Equation 1/4/5/6 queries over the pair.
//!
//! Two implementations exist with identical observable results:
//!
//! * [`IncrementalEstimator`](crate::IncrementalEstimator) — maintains
//!   caches across moves (the production choice),
//! * [`FullEstimator`](crate::FullEstimator) — recomputes from scratch
//!   (the oracle the incremental caches are property-tested against, and
//!   the baseline the bench suite measures speedups from).

use crate::warning::EstimateWarning;
use slif_core::{
    BusId, ChannelId, CompiledDesign, CoreError, NodeId, Partition, PmRef, ProcessorId,
};

/// A partition evaluator: a compiled design view plus a working partition,
/// scored through the paper's estimation equations.
///
/// Implementations must agree: for the same compiled design and partition
/// state, every query returns bit-identical values regardless of the move
/// history that produced the state.
pub trait Evaluator {
    /// The shared compiled design view being evaluated against.
    fn compiled(&self) -> &CompiledDesign;

    /// The current working partition.
    fn partition(&self) -> &Partition;

    /// Consumes the evaluator, returning the working partition.
    fn into_partition(self) -> Partition
    where
        Self: Sized;

    /// Moves node `n` to `comp`, returning the previous component. Moving
    /// a node to its current component is a no-op.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingWeight`] (and the move is not performed) if the
    /// node has no size weight for the new component's class, or
    /// [`CoreError::BehaviorInMemory`] if a behavior is moved to a memory.
    fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError>;

    /// Moves channel `c` to `bus`, returning the previous bus.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownBus`] if `bus` is not part of the design.
    fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError>;

    /// Re-applies the difference between the working partition and
    /// `target` as a sequence of moves, after which
    /// [`partition`](Self::partition) equals `target`.
    ///
    /// # Errors
    ///
    /// As for
    /// [`IncrementalEstimator::sync_to`](crate::IncrementalEstimator::sync_to).
    fn sync_to(&mut self, target: &Partition) -> Result<(), CoreError>;

    /// Equation 1 execution time of node `n`.
    ///
    /// # Errors
    ///
    /// As for
    /// [`ExecTimeEstimator::exec_time`](crate::ExecTimeEstimator::exec_time).
    fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError>;

    /// Equation 4/5 size of component `pm`.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingWeight`] / [`CoreError::UnknownComponent`] /
    /// [`CoreError::DanglingReference`] from a from-scratch recompute;
    /// cache-backed implementations never fail here.
    fn size(&mut self, pm: PmRef) -> Result<u64, CoreError>;

    /// Equation 6 pins of processor `p`.
    ///
    /// # Errors
    ///
    /// As for [`io_pins`](crate::io_pins).
    fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError>;

    /// Warnings accumulated from graceful degradation.
    fn warnings(&self) -> &[EstimateWarning];
}

impl Evaluator for crate::IncrementalEstimator<'_> {
    fn compiled(&self) -> &CompiledDesign {
        Self::compiled(self)
    }

    fn partition(&self) -> &Partition {
        Self::partition(self)
    }

    fn into_partition(self) -> Partition {
        Self::into_partition(self)
    }

    fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        Self::move_node(self, n, comp)
    }

    fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError> {
        Self::move_channel(self, c, bus)
    }

    fn sync_to(&mut self, target: &Partition) -> Result<(), CoreError> {
        Self::sync_to(self, target)
    }

    fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        Self::exec_time(self, n)
    }

    fn size(&mut self, pm: PmRef) -> Result<u64, CoreError> {
        Ok(Self::size(self, pm))
    }

    fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        Self::pins(self, p)
    }

    fn warnings(&self) -> &[EstimateWarning] {
        Self::warnings(self)
    }
}

impl Evaluator for crate::FullEstimator<'_> {
    fn compiled(&self) -> &CompiledDesign {
        Self::compiled(self)
    }

    fn partition(&self) -> &Partition {
        Self::partition(self)
    }

    fn into_partition(self) -> Partition {
        Self::into_partition(self)
    }

    fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        Self::move_node(self, n, comp)
    }

    fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError> {
        Self::move_channel(self, c, bus)
    }

    fn sync_to(&mut self, target: &Partition) -> Result<(), CoreError> {
        Self::sync_to(self, target)
    }

    fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        Self::exec_time(self, n)
    }

    fn size(&mut self, pm: PmRef) -> Result<u64, CoreError> {
        Self::size(self, pm)
    }

    fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        Self::pins(self, p)
    }

    fn warnings(&self) -> &[EstimateWarning] {
        Self::warnings(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FullEstimator, IncrementalEstimator};
    use slif_core::gen::DesignGenerator;

    /// Drives two evaluators through the same move sequence, checking
    /// every metric stays bit-identical.
    fn lockstep<A: Evaluator, B: Evaluator>(a: &mut A, b: &mut B) {
        let cd = a.compiled().clone();
        for n in cd.node_ids() {
            assert_eq!(a.exec_time(n).unwrap(), b.exec_time(n).unwrap(), "{n}");
        }
        for pm in cd.pm_refs() {
            assert_eq!(a.size(pm).unwrap(), b.size(pm).unwrap());
        }
        for p in cd.processor_ids() {
            assert_eq!(a.pins(p).unwrap(), b.pins(p).unwrap());
        }
    }

    #[test]
    fn full_and_incremental_agree_through_moves() {
        let (design, part) = DesignGenerator::new(21)
            .behaviors(12)
            .variables(8)
            .processors(3)
            .memories(1)
            .buses(2)
            .build();
        let cd = slif_core::CompiledDesign::compile(&design);
        let mut inc = IncrementalEstimator::from_compiled(&cd, part.clone()).unwrap();
        let mut full = FullEstimator::from_compiled(&cd, part).unwrap();
        lockstep(&mut inc, &mut full);
        let procs: Vec<_> = design.processor_ids().collect();
        let nodes: Vec<_> = design.graph().node_ids().collect();
        for (i, &n) in nodes.iter().enumerate() {
            let target = procs[i % procs.len()];
            let a = Evaluator::move_node(&mut inc, n, target.into());
            let b = Evaluator::move_node(&mut full, n, target.into());
            assert_eq!(a.is_ok(), b.is_ok());
            lockstep(&mut inc, &mut full);
        }
    }

    #[test]
    fn sync_to_through_the_trait_replays_diffs() {
        let (design, part) = DesignGenerator::new(22).build();
        let cd = slif_core::CompiledDesign::compile(&design);
        let mut inc = IncrementalEstimator::from_compiled(&cd, part.clone()).unwrap();
        let mut target = part.clone();
        let n = design.graph().node_ids().next().unwrap();
        let p = design.processor_ids().last().unwrap();
        target.assign_node(n, p.into());
        Evaluator::sync_to(&mut inc, &target).unwrap();
        assert_eq!(Evaluator::partition(&inc), &target);
    }
}
