//! I/O (pin) estimation (the paper's Equation 6).
//!
//! ```text
//! IO(p) = Σ_{i ∈ CutBuses(p)} i.bitwidth                        (Eq. 6)
//! ```
//!
//! The number of wires crossing a component's boundary is the total
//! bitwidth of the buses that cross the boundary; a bus crosses the
//! boundary when it implements at least one channel connecting an object
//! on the component with an object (or external port) off it.

use slif_core::{
    AccessTarget, BusId, CompiledDesign, CoreError, Design, NodeId, Partition, PmRef, ProcessorId,
};

/// Equation 6: the number of I/O wires of processor `p` under `partition`.
///
/// # Errors
///
/// [`CoreError::UnmappedChannel`] if a cut channel has no bus assignment —
/// without a bus, the wires crossing the boundary are unknown;
/// [`CoreError::UnknownBus`] if a cut channel is assigned to a bus the
/// design does not have.
///
/// # Examples
///
/// ```
/// use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind, Partition};
/// use slif_estimate::io_pins;
///
/// let mut d = Design::new("demo");
/// let pc = d.add_class("proc", ClassKind::StdProcessor);
/// let ac = d.add_class("asic", ClassKind::CustomHw);
/// let a = d.graph_mut().add_node("A", NodeKind::process());
/// let b = d.graph_mut().add_node("B", NodeKind::procedure());
/// let c = d.graph_mut().add_channel(a, b.into(), AccessKind::Call)?;
/// let cpu = d.add_processor("cpu", pc);
/// let asic = d.add_processor("asic", ac);
/// let bus = d.add_bus(Bus::new("b", 16, 1, 4));
/// let mut part = Partition::new(&d);
/// part.assign_node(a, cpu.into());
/// part.assign_node(b, asic.into());
/// part.assign_channel(c, bus);
/// assert_eq!(io_pins(&d, &part, asic)?, 16);
/// # Ok::<(), slif_core::CoreError>(())
/// ```
pub fn io_pins(design: &Design, partition: &Partition, p: ProcessorId) -> Result<u32, CoreError> {
    if p.index() >= design.processor_count() {
        return Err(CoreError::InvalidProcessor { processor: p });
    }
    // Every cut channel must have a bus; collect the distinct cut buses.
    let cut: Vec<_> = partition.cut_channels(design, p).collect();
    for &c in &cut {
        if partition.channel_bus(c).is_none() {
            return Err(CoreError::UnmappedChannel { channel: c });
        }
    }
    let mut pins = 0u32;
    for &b in partition.cut_buses(design, p).iter() {
        if b.index() >= design.bus_count() {
            return Err(CoreError::UnknownBus { bus: b });
        }
        pins = pins.saturating_add(design.bus(b).bitwidth());
    }
    Ok(pins)
}

/// [`io_pins`] against a compiled view: one pass over the channel slabs
/// replaces the two cut-channel walks, with identical error ordering.
pub(crate) fn io_pins_compiled(
    cd: &CompiledDesign,
    partition: &Partition,
    p: ProcessorId,
) -> Result<u32, CoreError> {
    if p.index() >= cd.processor_count() {
        return Err(CoreError::InvalidProcessor { processor: p });
    }
    let comp = PmRef::Processor(p);
    let on_comp = |n: NodeId| {
        n.index() < partition.node_slots() && partition.node_component(n) == Some(comp)
    };
    // Every cut channel must have a bus; collect the distinct cut buses.
    let mut cut_buses: Vec<BusId> = Vec::new();
    for c in cd.channel_ids() {
        let src_on = on_comp(cd.chan_src(c));
        let dst_on = match cd.chan_dst(c) {
            AccessTarget::Node(n) => on_comp(n),
            AccessTarget::Port(_) => false,
        };
        if src_on == dst_on {
            continue;
        }
        match partition.channel_bus(c) {
            Some(b) => cut_buses.push(b),
            None => return Err(CoreError::UnmappedChannel { channel: c }),
        }
    }
    cut_buses.sort_unstable();
    cut_buses.dedup();
    let mut pins = 0u32;
    for b in cut_buses {
        if b.index() >= cd.bus_count() {
            return Err(CoreError::UnknownBus { bus: b });
        }
        pins = pins.saturating_add(cd.bus_bitwidth(b));
    }
    Ok(pins)
}

/// Checks a processor's pin usage against its pin constraint, returning
/// the overshoot (0 when within budget or unconstrained).
///
/// # Errors
///
/// Propagates [`io_pins`] errors.
pub fn pin_violation(
    design: &Design,
    partition: &Partition,
    p: ProcessorId,
) -> Result<u32, CoreError> {
    let pins = io_pins(design, partition, p)?;
    Ok(match design.processor(p).pin_constraint() {
        Some(max) => pins.saturating_sub(max),
        None => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{AccessKind, Bus, ClassKind, NodeKind, PortDirection};

    /// a on cpu, b on asic, v on asic; a→b (bus0), a→v (bus1), b→v (bus0,
    /// internal to asic), a→port (bus0).
    fn fixture() -> (Design, Partition, ProcessorId, ProcessorId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let a = d.graph_mut().add_node("a", NodeKind::process());
        let b = d.graph_mut().add_node("b", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        let port = d.graph_mut().add_port("out1", PortDirection::Out, 8);
        let c_ab = d
            .graph_mut()
            .add_channel(a, b.into(), AccessKind::Call)
            .unwrap();
        let c_av = d
            .graph_mut()
            .add_channel(a, v.into(), AccessKind::Read)
            .unwrap();
        let c_bv = d
            .graph_mut()
            .add_channel(b, v.into(), AccessKind::Write)
            .unwrap();
        let c_ap = d
            .graph_mut()
            .add_channel(a, port.into(), AccessKind::Write)
            .unwrap();
        let cpu = d.add_processor("cpu", pc);
        let asic = d.add_processor("asic", ac);
        let bus0 = d.add_bus(Bus::new("bus0", 16, 1, 4));
        let bus1 = d.add_bus(Bus::new("bus1", 8, 1, 4));
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, asic.into());
        part.assign_node(v, asic.into());
        part.assign_channel(c_ab, bus0);
        part.assign_channel(c_av, bus1);
        part.assign_channel(c_bv, bus0);
        part.assign_channel(c_ap, bus0);
        (d, part, cpu, asic)
    }

    #[test]
    fn equation6_sums_cut_bus_widths_once() {
        let (d, part, cpu, asic) = fixture();
        // asic boundary: c_ab (bus0) and c_av (bus1) cross; c_bv is internal.
        // bus0 appears once even though it also carries internal traffic.
        assert_eq!(io_pins(&d, &part, asic).unwrap(), 16 + 8);
        // cpu boundary: c_ab (bus0), c_av (bus1), c_ap (bus0, to a port).
        assert_eq!(io_pins(&d, &part, cpu).unwrap(), 16 + 8);
    }

    #[test]
    fn internal_channels_cost_no_pins() {
        let (mut d, _, _, asic) = fixture();
        // Map everything to the asic: only the port write crosses.
        let bus0 = d.bus_by_name("bus0").unwrap();
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            part.assign_node(n, asic.into());
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus0);
        }
        let _ = &mut d;
        assert_eq!(io_pins(&d, &part, asic).unwrap(), 16);
    }

    #[test]
    fn unmapped_cut_channel_is_reported() {
        let (d, mut part, _, asic) = fixture();
        let c_ab = d.graph().channel_ids().next().unwrap();
        part.unassign_channel(c_ab);
        assert!(matches!(
            io_pins(&d, &part, asic),
            Err(CoreError::UnmappedChannel { .. })
        ));
    }

    #[test]
    fn invalid_processor_is_reported() {
        let (d, part, _, _) = fixture();
        assert!(matches!(
            io_pins(&d, &part, ProcessorId::from_raw(99)),
            Err(CoreError::InvalidProcessor { .. })
        ));
    }

    #[test]
    fn pin_violation_measures_overshoot() {
        let (mut d, _, _, _) = fixture();
        let ac = d.class_by_name("asic").unwrap();
        let tight = d
            .add_processor_instance(slif_core::Processor::new("tight", ac).with_pin_constraint(10));
        // Move b and v onto the tight asic.
        let b = d.graph().node_by_name("b").unwrap();
        let v = d.graph().node_by_name("v").unwrap();
        let a = d.graph().node_by_name("a").unwrap();
        let cpu = d.processor_by_name("cpu").unwrap();
        let bus0 = d.bus_by_name("bus0").unwrap();
        let bus1 = d.bus_by_name("bus1").unwrap();
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, tight.into());
        part.assign_node(v, tight.into());
        let chans: Vec<_> = d.graph().channel_ids().collect();
        part.assign_channel(chans[0], bus0);
        part.assign_channel(chans[1], bus1);
        part.assign_channel(chans[2], bus0);
        part.assign_channel(chans[3], bus0);
        // 24 pins needed, 10 available → 14 over.
        assert_eq!(pin_violation(&d, &part, tight).unwrap(), 14);
        // The unconstrained cpu never violates.
        assert_eq!(pin_violation(&d, &part, cpu).unwrap(), 0);
    }
}
