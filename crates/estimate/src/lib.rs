//! # slif-estimate — rapid design-metric estimation from SLIF
//!
//! Implements Section 3 of the SLIF paper: estimation of quality metrics
//! for a given partition of functional objects among system components,
//! entirely from SLIF's preprocessed annotations. All estimators are
//! lookups and sums over the access graph — no re-synthesis, no
//! re-compilation — which is what makes them fast enough for interactive
//! design and for partitioning algorithms that examine thousands of
//! candidates.
//!
//! | paper equation | item |
//! |---|---|
//! | Eq. 1 (execution time) | [`ExecTimeEstimator`] |
//! | Eq. 2 (channel bitrate) | [`BitrateEstimator::channel_bitrate`] |
//! | Eq. 3 (bus bitrate) | [`BitrateEstimator::bus_bitrate`] |
//! | Eq. 4/5 (sw/hw/memory size) | [`size`] |
//! | Eq. 6 (I/O pins) | [`io_pins`] |
//!
//! Estimators read a [`CompiledDesign`](slif_core::CompiledDesign) — built
//! internally by the `new` constructors, or shared across estimators via
//! the `from_compiled` constructors. Exploration algorithms drive either
//! the cached [`IncrementalEstimator`] or the from-scratch
//! [`FullEstimator`] through the one [`Evaluator`] interface.
//!
//! Extensions the paper names but defers:
//!
//! * min/max performance ([`EstimatorConfig::with_mode`]),
//! * concurrency-aware communication time
//!   ([`EstimatorConfig::with_concurrency_aware`]),
//! * capacity-limited bus bitrate
//!   ([`BitrateEstimator::bus_utilization`], ref \[2\]) and the full
//!   saturation fixed point ([`saturation_analysis`]),
//! * sharing-aware hardware size ([`size_shared`], ref \[1\]),
//! * incremental re-estimation under single-object moves
//!   ([`IncrementalEstimator`]).
//!
//! # Examples
//!
//! ```
//! use slif_core::gen::DesignGenerator;
//! use slif_estimate::DesignReport;
//!
//! let (design, partition) = DesignGenerator::new(7).build();
//! let report = DesignReport::compute(&design, &partition)?;
//! println!("{report}");
//! # Ok::<(), slif_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Estimation (including the self-auditing incremental path) must degrade
// to typed errors, never panic; `scripts/verify.sh` turns this into a gate.
#![warn(clippy::expect_used)]

mod bitrate;
mod config;
mod evaluator;
mod exectime;
mod full;
mod incremental;
mod io;
mod report;
mod saturation;
mod size;
mod warning;

pub use bitrate::BitrateEstimator;
pub use config::{EstimatorConfig, MessagePolicy};
pub use evaluator::Evaluator;
pub use exectime::ExecTimeEstimator;
pub use full::FullEstimator;
pub use incremental::IncrementalEstimator;
pub use io::{io_pins, pin_violation};
pub use report::{BusReport, ComponentReport, DesignReport, ProcessReport};
pub use saturation::{saturation_analysis, SaturationReport};
pub use size::{node_size_on, node_size_on_with, size, size_shared, size_violation, size_with};
pub use warning::EstimateWarning;
