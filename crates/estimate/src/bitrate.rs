//! Bitrate estimation (the paper's Equations 2 and 3).
//!
//! ```text
//! ChanBitrate(c) = (c.freq × c.bits) / Exectime(c.src)          (Eq. 2)
//! BusBitrate(i)  = Σ_{c ∈ i.C} ChanBitrate(c)                   (Eq. 3)
//! ```
//!
//! A channel's bitrate is the bits it moves during one start-to-finish
//! execution of its source behavior, divided by that execution's duration;
//! a bus's bitrate is the sum over the channels mapped to it. The module
//! also provides the capacity-limited extension the paper points to (its
//! reference \[2\]): when the demanded bus bitrate exceeds the bus's
//! capacity, transfers must slow down by the utilization factor.

use crate::exectime::ExecTimeEstimator;
use slif_core::{BusId, ChannelId, CompiledDesign, CoreError, Design, Partition};

/// Bitrate estimator layered on the execution-time estimator. Channel
/// annotations and bus capacities are read off the execution-time
/// estimator's compiled view.
#[derive(Debug)]
pub struct BitrateEstimator<'a> {
    partition: &'a Partition,
    exec: ExecTimeEstimator<'a>,
}

impl<'a> BitrateEstimator<'a> {
    /// Creates a bitrate estimator that computes source execution times
    /// with the default configuration.
    pub fn new(design: &Design, partition: &'a Partition) -> Self {
        Self {
            partition,
            exec: ExecTimeEstimator::new(design, partition),
        }
    }

    /// Creates a bitrate estimator over a shared pre-compiled view.
    pub fn from_compiled(cd: &'a CompiledDesign, partition: &'a Partition) -> Self {
        Self {
            partition,
            exec: ExecTimeEstimator::from_compiled(cd, partition),
        }
    }

    /// Creates a bitrate estimator around an existing execution-time
    /// estimator (sharing its memo and compiled view).
    pub fn with_estimator(partition: &'a Partition, exec: ExecTimeEstimator<'a>) -> Self {
        Self { partition, exec }
    }

    /// Equation 2: the average bitrate of channel `c`.
    ///
    /// Returns `f64::INFINITY` when the source behavior's execution time is
    /// zero (all-zero ict and free accesses), which only degenerate designs
    /// exhibit.
    ///
    /// # Errors
    ///
    /// Propagates execution-time estimation errors for the source behavior
    /// (unmapped objects, missing weights, recursion).
    pub fn channel_bitrate(&mut self, c: ChannelId) -> Result<f64, CoreError> {
        let cd = self.exec.compiled();
        let traffic = cd.chan_freq(c).avg * f64::from(cd.chan_bits(c));
        if traffic == 0.0 {
            return Ok(0.0);
        }
        let src = cd.chan_src(c);
        let t = self.exec.exec_time(src)?;
        Ok(traffic / t)
    }

    /// Equation 3: the demanded bitrate of bus `i` — the sum of its
    /// channels' bitrates.
    ///
    /// # Errors
    ///
    /// Propagates per-channel errors.
    pub fn bus_bitrate(&mut self, bus: BusId) -> Result<f64, CoreError> {
        let channels: Vec<ChannelId> = self.partition.channels_on(bus).collect();
        let mut total = 0.0;
        for c in channels {
            total += self.channel_bitrate(c)?;
        }
        Ok(total)
    }

    /// Capacity-limited extension: utilization of bus `i` as
    /// `demanded / capacity`, or `None` when the bus has no capacity model.
    /// Utilization above 1.0 means the transfers must be slowed down.
    ///
    /// # Errors
    ///
    /// Propagates per-channel errors.
    pub fn bus_utilization(&mut self, bus: BusId) -> Result<Option<f64>, CoreError> {
        let capacity = match self.exec.compiled().bus_capacity(bus) {
            Some(c) if c > 0.0 => c,
            _ => return Ok(None),
        };
        Ok(Some(self.bus_bitrate(bus)? / capacity))
    }

    /// Capacity-limited extension: the bitrate bus `i` actually sustains —
    /// the demanded rate clipped to the bus capacity.
    ///
    /// # Errors
    ///
    /// Propagates per-channel errors.
    pub fn effective_bus_bitrate(&mut self, bus: BusId) -> Result<f64, CoreError> {
        let demanded = self.bus_bitrate(bus)?;
        Ok(match self.exec.compiled().bus_capacity(bus) {
            Some(cap) if cap > 0.0 => demanded.min(cap),
            _ => demanded,
        })
    }

    /// Consumes the bitrate estimator, returning the underlying
    /// execution-time estimator (with its warm memo).
    pub fn into_inner(self) -> ExecTimeEstimator<'a> {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{AccessFreq, AccessKind, Bus, ClassKind, NodeKind};

    /// main (ict 90) reads v (ict 2) 5 times, 16 bits each, over a 16-bit
    /// bus with ts=1: Exectime(main) = 90 + 5*(1+2) = 105;
    /// ChanBitrate = 5*16/105.
    fn fixture(capacity: Option<f64>) -> (Design, Partition, ChannelId, BusId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(16));
        let c = d
            .graph_mut()
            .add_channel(main, v.into(), AccessKind::Read)
            .unwrap();
        d.graph_mut().node_mut(main).ict_mut().set(pc, 90);
        d.graph_mut().node_mut(v).ict_mut().set(pc, 2);
        *d.graph_mut().channel_mut(c).freq_mut() = AccessFreq::exact(5);
        d.graph_mut().channel_mut(c).set_bits(16);
        let cpu = d.add_processor("cpu", pc);
        let mut bus = Bus::new("b", 16, 1, 4);
        if let Some(cap) = capacity {
            bus = bus.with_capacity(cap);
        }
        let bus = d.add_bus(bus);
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(v, cpu.into());
        part.assign_channel(c, bus);
        (d, part, c, bus)
    }

    #[test]
    fn equation2_channel_bitrate() {
        let (d, part, c, _) = fixture(None);
        let mut est = BitrateEstimator::new(&d, &part);
        let rate = est.channel_bitrate(c).unwrap();
        assert!((rate - 80.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn equation3_bus_bitrate_sums_channels() {
        let (mut d, _, _, _) = fixture(None);
        // Add a second reader of v.
        let pc = d.class_by_name("proc").unwrap();
        let other = d.graph_mut().add_node("Other", NodeKind::process());
        d.graph_mut().node_mut(other).ict_mut().set(pc, 37);
        let v = d.graph().node_by_name("v").unwrap();
        let c2 = d
            .graph_mut()
            .add_channel(other, v.into(), AccessKind::Read)
            .unwrap();
        *d.graph_mut().channel_mut(c2).freq_mut() = AccessFreq::exact(1);
        d.graph_mut().channel_mut(c2).set_bits(16);
        let cpu = d.processor_by_name("cpu").unwrap();
        let bus = d.bus_by_name("b").unwrap();
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            part.assign_node(n, cpu.into());
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        let mut est = BitrateEstimator::new(&d, &part);
        let c1 = d.graph().channel_ids().next().unwrap();
        let r1 = est.channel_bitrate(c1).unwrap();
        let r2 = est.channel_bitrate(c2).unwrap();
        let total = est.bus_bitrate(bus).unwrap();
        assert!((total - (r1 + r2)).abs() < 1e-12);
        // Other: 37 + 1*(1+2) = 40; 16/40 = 0.4.
        assert!((r2 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_channel_has_zero_bitrate() {
        let (mut d, part, c, _) = fixture(None);
        *d.graph_mut().channel_mut(c).freq_mut() = AccessFreq::new(0.0, 0, 0);
        let mut est = BitrateEstimator::new(&d, &part);
        assert_eq!(est.channel_bitrate(c).unwrap(), 0.0);
    }

    #[test]
    fn utilization_none_without_capacity_model() {
        let (d, part, _, bus) = fixture(None);
        let mut est = BitrateEstimator::new(&d, &part);
        assert_eq!(est.bus_utilization(bus).unwrap(), None);
    }

    #[test]
    fn utilization_and_effective_rate_with_capacity() {
        // Demanded rate is 80/105 ≈ 0.762; capacity 0.5 → utilization ≈ 1.524.
        let (d, part, _, bus) = fixture(Some(0.5));
        let mut est = BitrateEstimator::new(&d, &part);
        let util = est.bus_utilization(bus).unwrap().unwrap();
        assert!((util - (80.0 / 105.0) / 0.5).abs() < 1e-12);
        assert!(util > 1.0, "bus is saturated");
        assert_eq!(est.effective_bus_bitrate(bus).unwrap(), 0.5);
        // A roomy capacity leaves the demanded rate untouched.
        let (d2, part2, _, bus2) = fixture(Some(10.0));
        let mut est2 = BitrateEstimator::new(&d2, &part2);
        assert!((est2.effective_bus_bitrate(bus2).unwrap() - 80.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate_from_exec_time() {
        let (d, _, c, _) = fixture(None);
        let empty = Partition::new(&d);
        let mut est = BitrateEstimator::new(&d, &empty);
        assert!(est.channel_bitrate(c).is_err());
    }
}
