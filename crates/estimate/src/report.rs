//! The full estimate suite: "size, pin, bitrate and performance estimates
//! for a partition" — exactly what the paper's Figure 4 times in its
//! T-est column.

use crate::bitrate::BitrateEstimator;
use crate::config::EstimatorConfig;
use crate::exectime::ExecTimeEstimator;
use crate::incremental::IncrementalEstimator;
use crate::io::io_pins;
use crate::size::size_with;
use crate::warning::EstimateWarning;
use slif_core::{BusId, ChannelId, CoreError, Design, NodeId, Partition, PmRef};
use std::fmt;

/// Estimated metrics for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentReport {
    /// The component.
    pub component: PmRef,
    /// The component's name.
    pub name: String,
    /// Equation 4/5 size (bytes, gates, or words depending on class).
    pub size: u64,
    /// The size constraint, if any.
    pub size_constraint: Option<u64>,
    /// Equation 6 pins (processors only).
    pub pins: Option<u32>,
    /// The pin constraint, if any.
    pub pin_constraint: Option<u32>,
}

impl ComponentReport {
    /// Whether the component meets its size and pin constraints.
    pub fn satisfies_constraints(&self) -> bool {
        let size_ok = self.size_constraint.is_none_or(|max| self.size <= max);
        let pins_ok = match (self.pins, self.pin_constraint) {
            (Some(p), Some(max)) => p <= max,
            _ => true,
        };
        size_ok && pins_ok
    }
}

/// Estimated metrics for one bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusReport {
    /// The bus.
    pub bus: BusId,
    /// The bus's name.
    pub name: String,
    /// Equation 3 demanded bitrate.
    pub bitrate: f64,
    /// Utilization against the capacity model, if one exists.
    pub utilization: Option<f64>,
}

/// Estimated execution time for one process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// The process node.
    pub node: NodeId,
    /// The process's name.
    pub name: String,
    /// Equation 1 execution time of one start-to-finish execution.
    pub exec_time: f64,
}

/// The complete estimate suite for a (design, partition) pair.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_estimate::DesignReport;
///
/// let (design, partition) = DesignGenerator::new(3).build();
/// let report = DesignReport::compute(&design, &partition)?;
/// assert_eq!(report.components.len(), design.processor_count() + design.memory_count());
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DesignReport {
    /// Per-component size and pin estimates.
    pub components: Vec<ComponentReport>,
    /// Per-bus bitrate estimates.
    pub buses: Vec<BusReport>,
    /// Per-process execution-time estimates.
    pub processes: Vec<ProcessReport>,
    /// Graceful-degradation events: weights that were missing and replaced
    /// by configured defaults. Empty unless the configuration sets
    /// [`default_ict`](EstimatorConfig::default_ict) or
    /// [`default_size`](EstimatorConfig::default_size).
    pub warnings: Vec<EstimateWarning>,
}

impl DesignReport {
    /// Runs all estimators (Equations 1–6) with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates any estimation error: unmapped objects, missing weights,
    /// or recursion.
    pub fn compute(design: &Design, partition: &Partition) -> Result<Self, CoreError> {
        Self::compute_with(design, partition, EstimatorConfig::default())
    }

    /// Runs all estimators with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates any estimation error.
    pub fn compute_with(
        design: &Design,
        partition: &Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        let mut warnings = Vec::new();
        let mut components = Vec::new();
        for pm in design.pm_refs() {
            let (name, size_constraint, pins, pin_constraint) = match pm {
                PmRef::Processor(p) => {
                    let proc = design.processor(p);
                    (
                        proc.name().to_owned(),
                        proc.size_constraint(),
                        Some(io_pins(design, partition, p)?),
                        proc.pin_constraint(),
                    )
                }
                PmRef::Memory(m) => {
                    let mem = design.memory(m);
                    (mem.name().to_owned(), mem.size_constraint(), None, None)
                }
            };
            components.push(ComponentReport {
                component: pm,
                name,
                size: size_with(design, partition, pm, &config, &mut warnings)?,
                size_constraint,
                pins,
                pin_constraint,
            });
        }

        let exec = ExecTimeEstimator::with_config(design, partition, config);
        let mut bitrate = BitrateEstimator::with_estimator(partition, exec);
        let mut buses = Vec::new();
        for b in design.bus_ids() {
            buses.push(BusReport {
                bus: b,
                name: design.bus(b).name().to_owned(),
                bitrate: bitrate.bus_bitrate(b)?,
                utilization: bitrate.bus_utilization(b)?,
            });
        }
        let mut exec = bitrate.into_inner();
        let mut processes = Vec::new();
        for n in design.graph().node_ids() {
            if design.graph().node(n).kind().is_process() {
                processes.push(ProcessReport {
                    node: n,
                    name: design.graph().node(n).name().to_owned(),
                    exec_time: exec.exec_time(n)?,
                });
            }
        }
        warnings.extend(exec.take_warnings());
        Ok(Self {
            components,
            buses,
            processes,
            warnings,
        })
    }

    /// Whether every component satisfies its constraints.
    pub fn satisfies_constraints(&self) -> bool {
        self.components
            .iter()
            .all(ComponentReport::satisfies_constraints)
    }

    /// Builds the full report from a warm [`IncrementalEstimator`],
    /// mirroring [`compute_with`](Self::compute_with) loop-for-loop
    /// (same iteration orders, same floating-point summation order) so
    /// the result is bit-identical to a cold compute over the same
    /// design, partition, and configuration. Component sizes are O(1)
    /// cache reads and execution times come from the memo, so after a
    /// small edit only the invalidated slice is actually recomputed.
    ///
    /// `design` supplies what the compiled view does not intern —
    /// component/bus names and constraints — and must be the design the
    /// estimator's view was compiled (or patched) from.
    ///
    /// The report's `warnings` are always empty: warning collection is
    /// not replicated here because the estimator accumulates warnings
    /// across its whole lifetime, not per compute. Under a strict
    /// configuration (the default, which edit sessions pin) a cold
    /// report's warnings are empty too, so bit-identity holds.
    ///
    /// # Errors
    ///
    /// As for [`compute_with`](Self::compute_with).
    pub fn compute_from_incremental(
        design: &Design,
        inc: &mut IncrementalEstimator<'_>,
    ) -> Result<Self, CoreError> {
        let mut components = Vec::new();
        for pm in design.pm_refs() {
            let (name, size_constraint, pins, pin_constraint) = match pm {
                PmRef::Processor(p) => {
                    let proc = design.processor(p);
                    (
                        proc.name().to_owned(),
                        proc.size_constraint(),
                        Some(inc.pins(p)?),
                        proc.pin_constraint(),
                    )
                }
                PmRef::Memory(m) => {
                    let mem = design.memory(m);
                    (mem.name().to_owned(), mem.size_constraint(), None, None)
                }
            };
            components.push(ComponentReport {
                component: pm,
                name,
                size: inc.size(pm),
                size_constraint,
                pins,
                pin_constraint,
            });
        }
        let mut buses = Vec::new();
        for b in design.bus_ids() {
            let name = design.bus(b).name().to_owned();
            let bitrate = bus_bitrate_incremental(inc, b)?;
            let utilization = match inc.compiled().bus_capacity(b) {
                Some(cap) if cap > 0.0 => Some(bus_bitrate_incremental(inc, b)? / cap),
                _ => None,
            };
            buses.push(BusReport {
                bus: b,
                name,
                bitrate,
                utilization,
            });
        }
        let mut processes = Vec::new();
        for n in design.graph().node_ids() {
            if design.graph().node(n).kind().is_process() {
                processes.push(ProcessReport {
                    node: n,
                    name: design.graph().node(n).name().to_owned(),
                    exec_time: inc.exec_time(n)?,
                });
            }
        }
        Ok(Self {
            components,
            buses,
            processes,
            warnings: Vec::new(),
        })
    }
}

/// Equation 3 over the incremental estimator, replicating
/// [`BitrateEstimator::bus_bitrate`]'s arithmetic exactly: same channel
/// order ([`Partition::channels_on`]), same zero-traffic contribution,
/// same left-to-right `f64` summation.
fn bus_bitrate_incremental(
    inc: &mut IncrementalEstimator<'_>,
    bus: BusId,
) -> Result<f64, CoreError> {
    let channels: Vec<ChannelId> = inc.partition().channels_on(bus).collect();
    let mut total = 0.0;
    for c in channels {
        let (traffic, src) = {
            let cd = inc.compiled();
            (
                cd.chan_freq(c).avg * f64::from(cd.chan_bits(c)),
                cd.chan_src(c),
            )
        };
        let rate = if traffic == 0.0 {
            0.0
        } else {
            traffic / inc.exec_time(src)?
        };
        total += rate;
    }
    Ok(total)
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "components:")?;
        for c in &self.components {
            write!(f, "  {:<12} size {:>8}", c.name, c.size)?;
            if let Some(max) = c.size_constraint {
                write!(f, " / {max}")?;
            }
            if let Some(p) = c.pins {
                write!(f, "  pins {p:>4}")?;
                if let Some(max) = c.pin_constraint {
                    write!(f, " / {max}")?;
                }
            }
            if !c.satisfies_constraints() {
                write!(f, "  VIOLATED")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "buses:")?;
        for b in &self.buses {
            write!(f, "  {:<12} bitrate {:>12.4}", b.name, b.bitrate)?;
            if let Some(u) = b.utilization {
                write!(f, "  util {:.2}", u)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "processes:")?;
        for p in &self.processes {
            writeln!(f, "  {:<12} exec time {:>12.2}", p.name, p.exec_time)?;
        }
        if !self.warnings.is_empty() {
            writeln!(f, "warnings:")?;
            for w in &self.warnings {
                writeln!(f, "  {w}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;
    use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind, Partition, Processor};

    #[test]
    fn report_covers_all_components_buses_processes() {
        let (d, part) = DesignGenerator::new(11)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let r = DesignReport::compute(&d, &part).unwrap();
        assert_eq!(r.components.len(), 5);
        assert_eq!(r.buses.len(), 2);
        let processes = d
            .graph()
            .node_ids()
            .filter(|&n| d.graph().node(n).kind().is_process())
            .count();
        assert_eq!(r.processes.len(), processes);
    }

    #[test]
    fn constraint_satisfaction_detected() {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        d.graph_mut().node_mut(a).ict_mut().set(pc, 10);
        d.graph_mut().node_mut(a).size_mut().set(pc, 500);
        let tight = d.add_processor_instance(Processor::new("tight", pc).with_size_constraint(100));
        d.add_bus(Bus::new("b", 8, 1, 2));
        let mut part = Partition::new(&d);
        part.assign_node(a, tight.into());
        let r = DesignReport::compute(&d, &part).unwrap();
        assert!(!r.satisfies_constraints());
        assert!(!r.components[0].satisfies_constraints());
        assert!(r.to_string().contains("VIOLATED"));
    }

    #[test]
    fn display_is_nonempty_and_mentions_objects() {
        let (d, part) = DesignGenerator::new(2).build();
        let r = DesignReport::compute(&d, &part).unwrap();
        let s = r.to_string();
        assert!(s.contains("components:"));
        assert!(s.contains("buses:"));
        assert!(s.contains("processes:"));
        assert!(s.contains("proc0"));
    }

    #[test]
    fn degraded_report_carries_warnings() {
        let (mut d, part) = DesignGenerator::new(4).build();
        // Strip one behavior's ict list: strict compute fails, a default
        // rescues it and the report says what was assumed.
        let b = d.graph().behavior_ids().next().unwrap();
        d.graph_mut().node_mut(b).ict_mut().clear();
        assert!(DesignReport::compute(&d, &part).is_err());
        let cfg = EstimatorConfig::default().with_default_ict(10);
        let r = DesignReport::compute_with(&d, &part, cfg).unwrap();
        assert!(!r.warnings.is_empty());
        assert!(r
            .warnings
            .iter()
            .any(|w| w.node() == Some(b) && w.list() == Some("ict")));
        assert!(r.to_string().contains("warnings:"));
        assert!(r.to_string().contains("assumed default 10"));
        // A clean design yields no warnings even with defaults configured.
        let (d2, part2) = DesignGenerator::new(4).build();
        let r2 = DesignReport::compute_with(&d2, &part2, cfg).unwrap();
        assert!(r2.warnings.is_empty());
        assert!(!r2.to_string().contains("warnings:"));
    }

    #[test]
    fn errors_propagate() {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        let c = d
            .graph_mut()
            .add_channel(a, b.into(), AccessKind::Call)
            .unwrap();
        for n in [a, b] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 1);
            d.graph_mut().node_mut(n).size_mut().set(pc, 1);
        }
        let cpu = d.add_processor("cpu", pc);
        d.add_bus(Bus::new("bus", 8, 1, 2));
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, cpu.into());
        // Channel left unmapped → the process exec-time estimate fails.
        let _ = c;
        assert!(DesignReport::compute(&d, &part).is_err());
    }
}
