//! Warnings emitted when estimators degrade gracefully or self-repair.
//!
//! With [`EstimatorConfig::default_ict`](crate::EstimatorConfig) /
//! [`default_size`](crate::EstimatorConfig) set, a missing weight no
//! longer aborts estimation: the estimator substitutes the configured
//! default and records an [`EstimateWarning`] so the caller knows the
//! result's fidelity dropped. Without defaults configured the same
//! condition stays a hard [`CoreError::MissingWeight`]
//! (`slif_core::CoreError`) — the paper's strict reading.
//!
//! The incremental estimator's self-audit mode adds a second warning
//! class: [`EstimateWarning::CacheDivergence`], recorded when a sampled
//! re-derivation finds a cached value that no longer matches a
//! from-scratch computation. The cache is repaired on the spot; the
//! warning is the detection record.

use slif_core::{NodeId, PmRef};
use std::fmt;

/// One graceful-degradation or self-repair event.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EstimateWarning {
    /// A missing weight that was substituted with a configured default.
    MissingWeight {
        /// The node whose weight list was incomplete.
        node: NodeId,
        /// Which list was incomplete: `"ict"` or `"size"`.
        list: &'static str,
        /// The component whose class had no entry.
        component: PmRef,
        /// The default value that was used instead.
        substituted: u64,
    },
    /// A self-audit found an incremental cache entry that diverged from
    /// its from-scratch value. The cache was repaired.
    CacheDivergence {
        /// Which cache diverged: `"size"`, `"exec"`, or `"pins"`.
        cache: &'static str,
        /// The entry's index (component slot, node index, or processor
        /// index, depending on `cache`).
        index: u32,
        /// The stale value the cache held.
        cached: f64,
        /// The correct value it was repaired to.
        recomputed: f64,
    },
}

impl EstimateWarning {
    /// The node involved, for [`MissingWeight`](Self::MissingWeight)
    /// warnings.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Self::MissingWeight { node, .. } => Some(*node),
            Self::CacheDivergence { .. } => None,
        }
    }

    /// The incomplete weight list (`"ict"` or `"size"`), for
    /// [`MissingWeight`](Self::MissingWeight) warnings.
    pub fn list(&self) -> Option<&'static str> {
        match self {
            Self::MissingWeight { list, .. } => Some(list),
            Self::CacheDivergence { .. } => None,
        }
    }

    /// The substituted default, for
    /// [`MissingWeight`](Self::MissingWeight) warnings.
    pub fn substituted(&self) -> Option<u64> {
        match self {
            Self::MissingWeight { substituted, .. } => Some(*substituted),
            Self::CacheDivergence { .. } => None,
        }
    }

    /// Whether this is a repaired cache divergence.
    pub fn is_cache_divergence(&self) -> bool {
        matches!(self, Self::CacheDivergence { .. })
    }

    /// Records `warning` unless an identical entry is already present.
    ///
    /// Weight lookups repeat — every re-evaluation of a node (and every
    /// incremental move that touches it) consults the same list — so
    /// without deduplication one annotation gap floods a large design's
    /// report with copies of the same `MissingWeight`. One entry per
    /// distinct degradation event is the contract; the `A005` lint in
    /// `slif-analyze` points at the same gaps statically.
    ///
    /// The scan is linear, which is fine at the realistic scale of
    /// *distinct* warnings (bounded by nodes × allocated classes, and in
    /// practice tiny); the flood this prevents was the problem.
    pub fn push_deduped(warnings: &mut Vec<EstimateWarning>, warning: EstimateWarning) {
        if !warnings.contains(&warning) {
            warnings.push(warning);
        }
    }
}

impl fmt::Display for EstimateWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingWeight {
                node,
                list,
                component,
                substituted,
            } => write!(
                f,
                "node {node} has no {list} weight for the class of component {component}; \
                 assumed default {substituted}"
            ),
            Self::CacheDivergence {
                cache,
                index,
                cached,
                recomputed,
            } => write!(
                f,
                "incremental {cache} cache entry {index} diverged \
                 (cached {cached}, recomputed {recomputed}); repaired"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::ProcessorId;

    #[test]
    fn display_names_node_list_and_default() {
        let w = EstimateWarning::MissingWeight {
            node: NodeId::from_raw(3),
            list: "ict",
            component: PmRef::Processor(ProcessorId::from_raw(1)),
            substituted: 100,
        };
        let s = w.to_string();
        assert!(s.contains("bv3"), "{s}");
        assert!(s.contains("ict"), "{s}");
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("100"), "{s}");
        assert_eq!(w.node(), Some(NodeId::from_raw(3)));
        assert_eq!(w.list(), Some("ict"));
        assert_eq!(w.substituted(), Some(100));
        assert!(!w.is_cache_divergence());
    }

    #[test]
    fn push_deduped_keeps_one_copy_per_distinct_warning() {
        let gap = |node: u32| EstimateWarning::MissingWeight {
            node: NodeId::from_raw(node),
            list: "size",
            component: PmRef::Processor(ProcessorId::from_raw(0)),
            substituted: 1,
        };
        let mut warnings = Vec::new();
        for _ in 0..5 {
            EstimateWarning::push_deduped(&mut warnings, gap(0));
        }
        EstimateWarning::push_deduped(&mut warnings, gap(1));
        EstimateWarning::push_deduped(&mut warnings, gap(0));
        assert_eq!(warnings, vec![gap(0), gap(1)]);
    }

    #[test]
    fn display_names_cache_and_values() {
        let w = EstimateWarning::CacheDivergence {
            cache: "size",
            index: 2,
            cached: 40.0,
            recomputed: 64.0,
        };
        let s = w.to_string();
        assert!(s.contains("size"), "{s}");
        assert!(s.contains("40"), "{s}");
        assert!(s.contains("64"), "{s}");
        assert!(s.contains("repaired"), "{s}");
        assert!(w.is_cache_divergence());
        assert_eq!(w.node(), None);
        assert_eq!(w.list(), None);
        assert_eq!(w.substituted(), None);
    }
}
