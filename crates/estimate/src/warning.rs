//! Warnings emitted when estimators degrade gracefully.
//!
//! With [`EstimatorConfig::default_ict`](crate::EstimatorConfig) /
//! [`default_size`](crate::EstimatorConfig) set, a missing weight no
//! longer aborts estimation: the estimator substitutes the configured
//! default and records an [`EstimateWarning`] so the caller knows the
//! result's fidelity dropped. Without defaults configured the same
//! condition stays a hard [`CoreError::MissingWeight`]
//! (`slif_core::CoreError`) — the paper's strict reading.

use slif_core::{NodeId, PmRef};
use std::fmt;

/// One graceful-degradation event: a missing weight that was substituted
/// with a configured default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateWarning {
    /// The node whose weight list was incomplete.
    pub node: NodeId,
    /// Which list was incomplete: `"ict"` or `"size"`.
    pub list: &'static str,
    /// The component whose class had no entry.
    pub component: PmRef,
    /// The default value that was used instead.
    pub substituted: u64,
}

impl fmt::Display for EstimateWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} has no {} weight for the class of component {}; \
             assumed default {}",
            self.node, self.list, self.component, self.substituted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::ProcessorId;

    #[test]
    fn display_names_node_list_and_default() {
        let w = EstimateWarning {
            node: NodeId::from_raw(3),
            list: "ict",
            component: PmRef::Processor(ProcessorId::from_raw(1)),
            substituted: 100,
        };
        let s = w.to_string();
        assert!(s.contains("bv3"), "{s}");
        assert!(s.contains("ict"), "{s}");
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("100"), "{s}");
    }
}
