//! Capacity-limited bus analysis (the paper's reference \[2\], taken one
//! step further).
//!
//! Equation 3 computes the bitrate *demanded* of a bus; the paper notes
//! that "if the bitrate capacity is exceeded, then we need to slow down
//! the transfers". Slowing transfers lengthens source execution times,
//! which in turn lowers the demanded bitrates — a fixed point. This
//! module iterates that feedback loop:
//!
//! 1. assume no slowdown; estimate execution times (Eq. 1) and bus
//!    bitrates (Eq. 3);
//! 2. for every saturated bus set `slowdown = demanded / capacity`;
//! 3. re-estimate with the bus's `ts`/`td` scaled by its slowdown;
//! 4. repeat until the slowdowns stabilize (or an iteration cap).
//!
//! Buses with no capacity model never slow down.

use crate::bitrate::BitrateEstimator;
use crate::config::EstimatorConfig;
use crate::exectime::ExecTimeEstimator;
use slif_core::{Bus, CoreError, Design, NodeId, Partition};

/// The converged (or capped) result of saturation analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SaturationReport {
    /// Per-bus slowdown factors (1.0 = unsaturated), indexed by bus id.
    pub bus_slowdown: Vec<f64>,
    /// Saturation-adjusted execution time per process.
    pub process_times: Vec<(NodeId, f64)>,
    /// Fixed-point iterations performed.
    pub iterations: u32,
    /// Whether the slowdowns stabilized within the iteration cap.
    pub converged: bool,
}

impl SaturationReport {
    /// The adjusted execution time of `process`, if it was analyzed.
    pub fn process_time(&self, process: NodeId) -> Option<f64> {
        self.process_times
            .iter()
            .find(|(n, _)| *n == process)
            .map(|(_, t)| *t)
    }

    /// Whether any bus is saturated.
    pub fn any_saturated(&self) -> bool {
        self.bus_slowdown.iter().any(|&s| s > 1.0 + 1e-9)
    }
}

/// Runs the saturation fixed point (at most `max_iterations` rounds,
/// convergence tolerance 1 %).
///
/// # Errors
///
/// Propagates estimation errors from any iteration.
pub fn saturation_analysis(
    design: &Design,
    partition: &Partition,
    config: EstimatorConfig,
    max_iterations: u32,
) -> Result<SaturationReport, CoreError> {
    let bus_count = design.bus_count();
    let mut slowdown = vec![1.0f64; bus_count];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < max_iterations.max(1) {
        iterations += 1;
        let scaled = scaled_design(design, &slowdown);
        let exec = ExecTimeEstimator::with_config(&scaled, partition, config);
        let mut bitrate = BitrateEstimator::with_estimator(partition, exec);
        let mut next = vec![1.0f64; bus_count];
        for b in scaled.bus_ids() {
            if let Some(util) = bitrate.bus_utilization(b)? {
                // Bitrates were computed under the *current* slowdown; the
                // demanded rate on the original bus is util × slowdown.
                let demanded = util * slowdown[b.index()];
                next[b.index()] = demanded.max(1.0);
            }
        }
        let stable = slowdown
            .iter()
            .zip(&next)
            .all(|(a, b)| (a - b).abs() <= 0.01 * a.max(1.0));
        slowdown = next;
        if stable {
            converged = true;
            break;
        }
    }

    // Final times under the converged slowdowns.
    let scaled = scaled_design(design, &slowdown);
    let mut exec = ExecTimeEstimator::with_config(&scaled, partition, config);
    let mut process_times = Vec::new();
    for n in design.graph().node_ids() {
        if design.graph().node(n).kind().is_process() {
            process_times.push((n, exec.exec_time(n)?));
        }
    }
    Ok(SaturationReport {
        bus_slowdown: slowdown,
        process_times,
        iterations,
        converged,
    })
}

/// Clones the design with each bus's transfer times scaled by its
/// slowdown.
fn scaled_design(design: &Design, slowdown: &[f64]) -> Design {
    let mut d = design.clone();
    // Buses cannot be edited in place; rebuild the design's bus table by
    // cloning into a fresh design sharing everything else.
    let mut fresh = Design::new(design.name().to_owned());
    for k in design.class_ids() {
        let c = design.class(k);
        fresh.add_class(c.name(), c.kind());
    }
    std::mem::swap(fresh.graph_mut(), d.graph_mut());
    for p in design.processor_ids() {
        fresh.add_processor_instance(design.processor(p).clone());
    }
    for m in design.memory_ids() {
        fresh.add_memory_instance(design.memory(m).clone());
    }
    for b in design.bus_ids() {
        let bus = design.bus(b);
        let s = slowdown.get(b.index()).copied().unwrap_or(1.0).max(1.0);
        let scale = |t: u64| ((t as f64) * s).round().max(1.0) as u64;
        let mut nb = Bus::new(bus.name(), bus.bitwidth(), scale(bus.ts()), scale(bus.td()));
        if let Some(cap) = bus.capacity() {
            nb = nb.with_capacity(cap);
        }
        fresh.add_bus(nb);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{AccessFreq, AccessKind, ClassKind, NodeKind};

    /// One process hammering a variable over a bus with configurable
    /// capacity.
    fn fixture(capacity: Option<f64>) -> (Design, Partition, NodeId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(16));
        let c = d
            .graph_mut()
            .add_channel(main, v.into(), AccessKind::Read)
            .unwrap();
        d.graph_mut().node_mut(main).ict_mut().set(pc, 100);
        d.graph_mut().node_mut(v).ict_mut().set(pc, 0);
        *d.graph_mut().channel_mut(c).freq_mut() = AccessFreq::exact(10);
        d.graph_mut().channel_mut(c).set_bits(16);
        let cpu = d.add_processor("cpu", pc);
        let mut bus = Bus::new("b", 16, 10, 20);
        if let Some(cap) = capacity {
            bus = bus.with_capacity(cap);
        }
        let bus = d.add_bus(bus);
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(v, cpu.into());
        part.assign_channel(c, bus);
        (d, part, main)
    }

    #[test]
    fn unsaturated_bus_changes_nothing() {
        // Exec time = 100 + 10*10 = 200; traffic = 160 bits / 200 = 0.8.
        let (d, part, main) = fixture(Some(100.0));
        let r = saturation_analysis(&d, &part, EstimatorConfig::default(), 10).unwrap();
        assert!(r.converged);
        assert!(!r.any_saturated());
        assert_eq!(r.process_time(main), Some(200.0));
    }

    #[test]
    fn no_capacity_model_means_no_slowdown() {
        let (d, part, main) = fixture(None);
        let r = saturation_analysis(&d, &part, EstimatorConfig::default(), 10).unwrap();
        assert_eq!(r.bus_slowdown, vec![1.0]);
        assert_eq!(r.process_time(main), Some(200.0));
    }

    #[test]
    fn saturated_bus_slows_transfers_and_converges() {
        // Demanded 0.8 bits/ns against capacity 0.2: 4x oversubscribed.
        let (d, part, main) = fixture(Some(0.2));
        let r = saturation_analysis(&d, &part, EstimatorConfig::default(), 50).unwrap();
        assert!(r.converged, "fixed point should converge");
        assert!(r.any_saturated());
        let slow = r.bus_slowdown[0];
        assert!(slow > 1.0, "slowdown {slow}");
        let t = r.process_time(main).unwrap();
        assert!(t > 200.0, "adjusted time {t} must exceed nominal");
        // At the fixed point the effective bitrate is at most capacity
        // (within the 1 % tolerance).
        let traffic = 160.0;
        assert!(
            traffic / t <= 0.2 * 1.05,
            "effective rate {} exceeds capacity",
            traffic / t
        );
    }

    #[test]
    fn tighter_capacity_means_more_slowdown() {
        let (d1, p1, m1) = fixture(Some(0.4));
        let (d2, p2, m2) = fixture(Some(0.1));
        let r1 = saturation_analysis(&d1, &p1, EstimatorConfig::default(), 50).unwrap();
        let r2 = saturation_analysis(&d2, &p2, EstimatorConfig::default(), 50).unwrap();
        assert!(r2.process_time(m2).unwrap() > r1.process_time(m1).unwrap());
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (d, part, _) = fixture(Some(0.01));
        let r = saturation_analysis(&d, &part, EstimatorConfig::default(), 2).unwrap();
        assert!(r.iterations <= 2);
    }
}
