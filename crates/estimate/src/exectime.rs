//! Execution-time estimation (the paper's Equation 1).
//!
//! ```text
//! Exectime(b)     = GetBvIct(b, p) + Commtime(b)
//! Commtime(b)     = Σ_{c ∈ GetBehChans(b)} c.freq × (TransferTime(c, p) + Exectime(c.dst))
//! TransferTime(c) = ceil(c.bits / bus.bitwidth) × (bus.ts if same component else bus.td)
//! ```
//!
//! A behavior's execution time is its internal computation time on the
//! component it is mapped to, plus its communication time: for every
//! channel it accesses, the bus transfer time plus the execution time of
//! the accessed object, multiplied by the access count. A variable's
//! "execution time" is its storage access time (its ict on the memory or
//! processor holding it).
//!
//! The evaluation runs against a [`CompiledDesign`]: adjacency is a CSR
//! slice, weights are dense table loads, and the [`Partition`] is the only
//! per-candidate state — which is what makes Equation 1 cheap enough to
//! sit inside a partitioning loop.
//!
//! The estimator memoizes per node, so evaluating every behavior of a
//! design is linear in the size of the access graph. Cycles of
//! time-contributing accesses represent recursion, for which the equation
//! has no finite value; they are reported as
//! [`CoreError::RecursiveAccess`].

use std::borrow::Cow;

use crate::config::{EstimatorConfig, MessagePolicy};
use crate::warning::EstimateWarning;
use slif_core::{
    AccessKind, AccessTarget, ChannelId, CompiledDesign, ConcurrencyTag, CoreError, Design, NodeId,
    Partition, PmRef,
};

/// Memoizing execution-time estimator for one (design, partition) pair.
///
/// # Examples
///
/// Reproducing the paper's Figure 3 numbers: `Convolve` has ict 80 on the
/// processor and 10 on the ASIC; mapped to the ASIC it runs 8× faster.
///
/// ```
/// use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind, Partition};
/// use slif_estimate::ExecTimeEstimator;
///
/// let mut d = Design::new("demo");
/// let pc = d.add_class("proc", ClassKind::StdProcessor);
/// let ac = d.add_class("asic", ClassKind::CustomHw);
/// let conv = d.graph_mut().add_node("Convolve", NodeKind::procedure());
/// d.graph_mut().node_mut(conv).ict_mut().set(pc, 80);
/// d.graph_mut().node_mut(conv).ict_mut().set(ac, 10);
/// let cpu = d.add_processor("cpu", pc);
/// let asic = d.add_processor("asic", ac);
///
/// let mut on_cpu = Partition::new(&d);
/// on_cpu.assign_node(conv, cpu.into());
/// let mut on_asic = Partition::new(&d);
/// on_asic.assign_node(conv, asic.into());
///
/// let t_cpu = ExecTimeEstimator::new(&d, &on_cpu).exec_time(conv)?;
/// let t_asic = ExecTimeEstimator::new(&d, &on_asic).exec_time(conv)?;
/// assert_eq!((t_cpu, t_asic), (80.0, 10.0));
/// # Ok::<(), slif_core::CoreError>(())
/// ```
///
/// When scoring many partitions of one design, compile once and share the
/// view instead of recompiling per estimator:
///
/// ```
/// use slif_core::{gen::DesignGenerator, CompiledDesign};
/// use slif_estimate::ExecTimeEstimator;
///
/// let (design, partition) = DesignGenerator::new(7).build();
/// let cd = CompiledDesign::compile(&design);
/// let mut est = ExecTimeEstimator::from_compiled(&cd, &partition);
/// let n = design.graph().node_ids().next().unwrap();
/// est.exec_time(n)?;
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ExecTimeEstimator<'a> {
    cd: Cow<'a, CompiledDesign>,
    partition: &'a Partition,
    config: EstimatorConfig,
    memo: Vec<MemoState>,
    warnings: Vec<EstimateWarning>,
}

/// Memoization state for one node's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) enum MemoState {
    /// Not yet computed.
    #[default]
    Unvisited,
    /// Currently being computed (seeing this again means recursion).
    InProgress,
    /// Computed.
    Done(f64),
}

/// Evaluates Equation 1 for node `n` against an external memo table, so
/// that owners of long-lived memos (the incremental estimator) share the
/// exact same evaluation as [`ExecTimeEstimator`].
pub(crate) fn eval_exec_time(
    cd: &CompiledDesign,
    partition: &Partition,
    config: &EstimatorConfig,
    memo: &mut [MemoState],
    warnings: &mut Vec<EstimateWarning>,
    n: NodeId,
) -> Result<f64, CoreError> {
    // A corrupted graph can hold node ids outside every arena; report
    // rather than index out of bounds.
    if n.index() >= memo.len() || n.index() >= partition.node_slots() {
        return Err(CoreError::DanglingReference {
            what: "node",
            index: n.index(),
        });
    }
    match memo[n.index()] {
        MemoState::Done(t) => Ok(t),
        MemoState::InProgress => Err(CoreError::RecursiveAccess { node: n }),
        MemoState::Unvisited => {
            memo[n.index()] = MemoState::InProgress;
            let result = eval_compute(cd, partition, config, memo, warnings, n);
            match result {
                Ok(t) => {
                    memo[n.index()] = MemoState::Done(t);
                    Ok(t)
                }
                Err(e) => {
                    memo[n.index()] = MemoState::Unvisited;
                    Err(e)
                }
            }
        }
    }
}

fn eval_compute(
    cd: &CompiledDesign,
    partition: &Partition,
    config: &EstimatorConfig,
    memo: &mut [MemoState],
    warnings: &mut Vec<EstimateWarning>,
    n: NodeId,
) -> Result<f64, CoreError> {
    let comp = partition
        .node_component(n)
        .ok_or(CoreError::UnmappedNode { node: n })?;
    if !cd.pm_exists(comp) {
        return Err(CoreError::UnknownComponent { component: comp });
    }
    let class = cd.component_class(comp);
    if class.index() >= cd.class_count() {
        return Err(CoreError::DanglingReference {
            what: "class",
            index: class.index(),
        });
    }
    let ict = match cd.ict_weight(n, class) {
        Some(v) => v as f64,
        None => match config.default_ict {
            Some(fallback) => {
                EstimateWarning::push_deduped(
                    warnings,
                    EstimateWarning::MissingWeight {
                        node: n,
                        list: "ict",
                        component: comp,
                        substituted: fallback,
                    },
                );
                fallback as f64
            }
            None => {
                return Err(CoreError::MissingWeight {
                    node: n,
                    list: "ict",
                    component: comp,
                })
            }
        },
    };
    if cd.node_kind(n).is_variable() {
        return Ok(ict);
    }
    Ok(ict + eval_comm_time(cd, partition, config, memo, warnings, n, comp)?)
}

pub(crate) fn eval_comm_time(
    cd: &CompiledDesign,
    partition: &Partition,
    config: &EstimatorConfig,
    memo: &mut [MemoState],
    warnings: &mut Vec<EstimateWarning>,
    n: NodeId,
    comp: PmRef,
) -> Result<f64, CoreError> {
    if n.index() >= cd.node_count() {
        return Err(CoreError::DanglingReference {
            what: "node",
            index: n.index(),
        });
    }
    if !config.concurrency_aware {
        let mut total = 0.0;
        for &c in cd.channels_of(n) {
            total += eval_channel_time(cd, partition, config, memo, warnings, c, comp)?;
        }
        return Ok(total);
    }
    let mut sequential = 0.0;
    let mut groups: Vec<(ConcurrencyTag, f64)> = Vec::new();
    for &c in cd.channels_of(n) {
        let t = eval_channel_time(cd, partition, config, memo, warnings, c, comp)?;
        let tag = cd.chan_tag(c);
        if !tag.is_concurrent() {
            sequential += t;
        } else if let Some(entry) = groups.iter_mut().find(|(g, _)| *g == tag) {
            entry.1 = entry.1.max(t);
        } else {
            groups.push((tag, t));
        }
    }
    Ok(sequential + groups.iter().map(|(_, t)| t).sum::<f64>())
}

fn eval_channel_time(
    cd: &CompiledDesign,
    partition: &Partition,
    config: &EstimatorConfig,
    memo: &mut [MemoState],
    warnings: &mut Vec<EstimateWarning>,
    c: ChannelId,
    src_comp: PmRef,
) -> Result<f64, CoreError> {
    let freq = cd.chan_freq(c).for_mode(config.mode);
    if freq == 0.0 {
        return Ok(0.0);
    }
    let bus_id = partition
        .channel_bus(c)
        .ok_or(CoreError::UnmappedChannel { channel: c })?;
    if bus_id.index() >= cd.bus_count() {
        return Err(CoreError::UnknownBus { bus: bus_id });
    }
    if cd.bus_bitwidth(bus_id) == 0 {
        // Transfer counts would divide by zero; report, don't panic.
        return Err(CoreError::ZeroBitwidthBus { bus: bus_id });
    }
    let (same, dst_time) = match cd.chan_dst(c) {
        AccessTarget::Port(_) => (false, 0.0),
        AccessTarget::Node(dst) => {
            if dst.index() >= partition.node_slots() {
                return Err(CoreError::DanglingReference {
                    what: "node",
                    index: dst.index(),
                });
            }
            let dst_comp = partition
                .node_component(dst)
                .ok_or(CoreError::UnmappedNode { node: dst })?;
            let include_dst = match cd.chan_kind(c) {
                AccessKind::Message => config.message_policy == MessagePolicy::IncludeReceiver,
                AccessKind::Call | AccessKind::Read | AccessKind::Write => true,
            };
            let dst_time = if include_dst {
                eval_exec_time(cd, partition, config, memo, warnings, dst)?
            } else {
                0.0
            };
            (dst_comp == src_comp, dst_time)
        }
    };
    let transfer = cd.bus_access_time(bus_id, cd.chan_bits(c), same) as f64;
    Ok(freq * (transfer + dst_time))
}

impl<'a> ExecTimeEstimator<'a> {
    /// Creates an estimator with the default configuration (average
    /// frequencies, sequential accesses, message transfers do not include
    /// the receiver's execution time). Compiles the design internally; use
    /// [`from_compiled`](Self::from_compiled) to share one
    /// [`CompiledDesign`] across many estimators.
    pub fn new(design: &Design, partition: &'a Partition) -> Self {
        Self::with_config(design, partition, EstimatorConfig::default())
    }

    /// Creates an estimator with an explicit configuration.
    pub fn with_config(
        design: &Design,
        partition: &'a Partition,
        config: EstimatorConfig,
    ) -> Self {
        Self::build(Cow::Owned(CompiledDesign::compile(design)), partition, config)
    }

    /// Creates an estimator over an already-compiled design with the
    /// default configuration.
    pub fn from_compiled(cd: &'a CompiledDesign, partition: &'a Partition) -> Self {
        Self::from_compiled_with_config(cd, partition, EstimatorConfig::default())
    }

    /// Creates an estimator over an already-compiled design with an
    /// explicit configuration.
    pub fn from_compiled_with_config(
        cd: &'a CompiledDesign,
        partition: &'a Partition,
        config: EstimatorConfig,
    ) -> Self {
        Self::build(Cow::Borrowed(cd), partition, config)
    }

    fn build(
        cd: Cow<'a, CompiledDesign>,
        partition: &'a Partition,
        config: EstimatorConfig,
    ) -> Self {
        let memo = vec![MemoState::default(); cd.node_count()];
        Self {
            cd,
            partition,
            config,
            memo,
            warnings: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The compiled design view this estimator evaluates against.
    pub fn compiled(&self) -> &CompiledDesign {
        &self.cd
    }

    /// Estimated execution time of node `n`: Equation 1 for behaviors, the
    /// storage access time for variables.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnmappedNode`] / [`CoreError::UnmappedChannel`] if the
    ///   partition does not cover the objects involved,
    /// * [`CoreError::MissingWeight`] if a node lacks an ict weight for the
    ///   class of its component and no
    ///   [`default_ict`](EstimatorConfig::default_ict) is configured (with
    ///   a default configured, the value is substituted and a warning is
    ///   recorded instead — see [`warnings`](Self::warnings)),
    /// * [`CoreError::ZeroBitwidthBus`] if a channel is mapped to a bus of
    ///   zero bitwidth,
    /// * [`CoreError::DanglingReference`] / [`CoreError::UnknownComponent`] /
    ///   [`CoreError::UnknownBus`] if the design or partition references
    ///   objects that do not exist (e.g. after corruption),
    /// * [`CoreError::RecursiveAccess`] if the access structure is
    ///   recursive.
    pub fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        eval_exec_time(
            &self.cd,
            self.partition,
            &self.config,
            &mut self.memo,
            &mut self.warnings,
            n,
        )
    }

    /// Estimated communication time of behavior `n` alone (the
    /// `Commtime(b)` term).
    ///
    /// # Errors
    ///
    /// Same conditions as [`exec_time`](Self::exec_time).
    pub fn comm_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        if n.index() >= self.partition.node_slots() {
            return Err(CoreError::DanglingReference {
                what: "node",
                index: n.index(),
            });
        }
        let comp = self
            .partition
            .node_component(n)
            .ok_or(CoreError::UnmappedNode { node: n })?;
        eval_comm_time(
            &self.cd,
            self.partition,
            &self.config,
            &mut self.memo,
            &mut self.warnings,
            n,
            comp,
        )
    }

    /// Warnings accumulated so far from graceful degradation (default
    /// weight substitutions). Empty unless a default is configured and a
    /// weight was actually missing.
    pub fn warnings(&self) -> &[EstimateWarning] {
        &self.warnings
    }

    /// Takes the accumulated warnings, leaving the estimator's list empty.
    pub fn take_warnings(&mut self) -> Vec<EstimateWarning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{AccessFreq, Bus, ClassKind, NodeKind};

    /// One process calling one procedure which writes one variable, all on
    /// one cpu connected by one 8-bit bus with ts=1, td=4.
    struct Fix {
        d: Design,
        main: NodeId,
        sub: NodeId,
        v: NodeId,
        part: Partition,
    }

    fn fixture(sub_on_asic: bool) -> Fix {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let sub = d.graph_mut().add_node("Sub", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        let call = d
            .graph_mut()
            .add_channel(main, sub.into(), AccessKind::Call)
            .unwrap();
        let wr = d
            .graph_mut()
            .add_channel(sub, v.into(), AccessKind::Write)
            .unwrap();
        for (n, p_ict, a_ict) in [(main, 100, 50), (sub, 40, 8)] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, p_ict);
            d.graph_mut().node_mut(n).ict_mut().set(ac, a_ict);
        }
        // Variable access time 2 on either behavior class.
        d.graph_mut().node_mut(v).ict_mut().set(pc, 2);
        d.graph_mut().node_mut(v).ict_mut().set(ac, 2);
        // Calls: 2 per execution, 8 bits of parameters. Writes: 3 per
        // execution, 8 bits.
        *d.graph_mut().channel_mut(call).freq_mut() = AccessFreq::exact(2);
        d.graph_mut().channel_mut(call).set_bits(8);
        *d.graph_mut().channel_mut(wr).freq_mut() = AccessFreq::exact(3);
        d.graph_mut().channel_mut(wr).set_bits(8);

        let cpu = d.add_processor("cpu", pc);
        let asic = d.add_processor("asic", ac);
        let bus = d.add_bus(Bus::new("b", 8, 1, 4));
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, if sub_on_asic { asic.into() } else { cpu.into() });
        part.assign_node(v, cpu.into());
        part.assign_channel(call, bus);
        part.assign_channel(wr, bus);
        Fix {
            d,
            main,
            sub,
            v,
            part,
        }
    }

    #[test]
    fn equation1_all_same_component() {
        let f = fixture(false);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        // v: ict 2.
        assert_eq!(est.exec_time(f.v).unwrap(), 2.0);
        // sub: 40 + 3 * (1*ts + 2) = 40 + 3*3 = 49.
        assert_eq!(est.exec_time(f.sub).unwrap(), 49.0);
        // main: 100 + 2 * (1*ts + 49) = 100 + 100 = 200.
        assert_eq!(est.exec_time(f.main).unwrap(), 200.0);
    }

    #[test]
    fn equation1_cross_component_uses_td() {
        let f = fixture(true);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        // sub on asic: ict 8; write to v on cpu crosses: 3 * (1*td + 2) = 18.
        assert_eq!(est.exec_time(f.sub).unwrap(), 26.0);
        // main on cpu calling sub on asic: 100 + 2 * (1*td + 26) = 160.
        assert_eq!(est.exec_time(f.main).unwrap(), 160.0);
    }

    #[test]
    fn from_compiled_matches_internal_compile() {
        let f = fixture(true);
        let cd = CompiledDesign::compile(&f.d);
        let mut shared = ExecTimeEstimator::from_compiled(&cd, &f.part);
        let mut owned = ExecTimeEstimator::new(&f.d, &f.part);
        for n in [f.main, f.sub, f.v] {
            assert_eq!(shared.exec_time(n).unwrap(), owned.exec_time(n).unwrap());
        }
        assert_eq!(shared.compiled(), owned.compiled());
    }

    #[test]
    fn comm_time_excludes_ict() {
        let f = fixture(false);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        assert_eq!(est.comm_time(f.main).unwrap(), 100.0);
        assert_eq!(est.comm_time(f.sub).unwrap(), 9.0);
    }

    #[test]
    fn wide_transfer_needs_multiple_bus_cycles() {
        let mut f = fixture(false);
        // Make the write 20 bits on the 8-bit bus: ceil(20/8)=3 transfers.
        let wr = f.d.graph().channel_ids().nth(1).unwrap();
        f.d.graph_mut().channel_mut(wr).set_bits(20);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        // sub: 40 + 3 * (3*1 + 2) = 55.
        assert_eq!(est.exec_time(f.sub).unwrap(), 55.0);
    }

    #[test]
    fn min_max_modes_bracket_average() {
        let mut f = fixture(false);
        let wr = f.d.graph().channel_ids().nth(1).unwrap();
        *f.d.graph_mut().channel_mut(wr).freq_mut() = AccessFreq::new(3.0, 1, 10);
        let avg = ExecTimeEstimator::with_config(&f.d, &f.part, EstimatorConfig::default())
            .exec_time(f.sub)
            .unwrap();
        let min = ExecTimeEstimator::with_config(
            &f.d,
            &f.part,
            EstimatorConfig::default().with_mode(slif_core::FreqMode::Min),
        )
        .exec_time(f.sub)
        .unwrap();
        let max = ExecTimeEstimator::with_config(
            &f.d,
            &f.part,
            EstimatorConfig::default().with_mode(slif_core::FreqMode::Max),
        )
        .exec_time(f.sub)
        .unwrap();
        assert!(min <= avg && avg <= max);
        assert_eq!(min, 43.0); // 40 + 1*3
        assert_eq!(max, 70.0); // 40 + 10*3
    }

    #[test]
    fn recursion_is_reported() {
        let mut f = fixture(false);
        // sub calls main: recursion. The graph grew, so rebuild the partition.
        f.d.graph_mut()
            .add_channel(f.sub, f.main.into(), AccessKind::Call)
            .unwrap();
        let bus = f.d.bus_by_name("b").unwrap();
        let cpu = f.d.processor_by_name("cpu").unwrap();
        let mut part = Partition::new(&f.d);
        for n in f.d.graph().node_ids() {
            part.assign_node(n, cpu.into());
        }
        for c in f.d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        f.part = part;
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        assert!(matches!(
            est.exec_time(f.main),
            Err(CoreError::RecursiveAccess { .. })
        ));
    }

    #[test]
    fn message_cycles_allowed_with_transfer_only_policy() {
        // Two processes messaging each other: a cycle, but legal under the
        // default transfer-only message policy.
        let mut d = Design::new("msg");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let m1 = d
            .graph_mut()
            .add_channel(a, b.into(), AccessKind::Message)
            .unwrap();
        let m2 = d
            .graph_mut()
            .add_channel(b, a.into(), AccessKind::Message)
            .unwrap();
        for n in [a, b] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 10);
        }
        d.graph_mut().channel_mut(m1).set_bits(8);
        d.graph_mut().channel_mut(m2).set_bits(8);
        let cpu = d.add_processor("cpu", pc);
        let bus = d.add_bus(Bus::new("b", 8, 1, 4));
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, cpu.into());
        part.assign_channel(m1, bus);
        part.assign_channel(m2, bus);

        let mut est = ExecTimeEstimator::new(&d, &part);
        // 10 ict + 1 transfer (ts=1).
        assert_eq!(est.exec_time(a).unwrap(), 11.0);
        assert_eq!(est.exec_time(b).unwrap(), 11.0);

        // Under IncludeReceiver the cycle is recursion.
        let cfg = EstimatorConfig::default().with_message_policy(MessagePolicy::IncludeReceiver);
        let mut est2 = ExecTimeEstimator::with_config(&d, &part, cfg);
        assert!(matches!(
            est2.exec_time(a),
            Err(CoreError::RecursiveAccess { .. })
        ));
    }

    #[test]
    fn concurrency_aware_takes_group_max() {
        let mut f = fixture(false);
        // Give sub a second variable access, tagged concurrent with the first.
        let w = f.d.graph_mut().add_node("w", NodeKind::scalar(8));
        let pc = f.d.class_by_name("proc").unwrap();
        let ac = f.d.class_by_name("asic").unwrap();
        f.d.graph_mut().node_mut(w).ict_mut().set(pc, 2);
        f.d.graph_mut().node_mut(w).ict_mut().set(ac, 2);
        let wr2 =
            f.d.graph_mut()
                .add_channel(f.sub, w.into(), AccessKind::Write)
                .unwrap();
        let cpu = f.d.processor_by_name("cpu").unwrap();
        let bus = f.d.bus_by_name("b").unwrap();
        // Rebuild the partition (the graph grew).
        let mut part = Partition::new(&f.d);
        for n in f.d.graph().node_ids() {
            part.assign_node(n, cpu.into());
        }
        for c in f.d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        let wr1 = f.d.graph().channel_ids().nth(1).unwrap();
        let tag = ConcurrencyTag::group(1);
        f.d.graph_mut().channel_mut(wr1).set_tag(tag);
        f.d.graph_mut().channel_mut(wr2).set_tag(tag);
        *f.d.graph_mut().channel_mut(wr2).freq_mut() = AccessFreq::exact(3);

        // Sequential: 40 + 3*3 + 3*3 = 58.
        let seq = ExecTimeEstimator::new(&f.d, &part)
            .exec_time(f.sub)
            .unwrap();
        assert_eq!(seq, 58.0);
        // Concurrency-aware: the two tagged writes overlap: 40 + max(9, 9) = 49.
        let cfg = EstimatorConfig::default().with_concurrency_aware(true);
        let conc = ExecTimeEstimator::with_config(&f.d, &part, cfg)
            .exec_time(f.sub)
            .unwrap();
        assert_eq!(conc, 49.0);
        assert!(conc <= seq);
    }

    #[test]
    fn unmapped_objects_are_reported() {
        let f = fixture(false);
        let mut empty = Partition::new(&f.d);
        let unmapped = empty.clone();
        let mut est = ExecTimeEstimator::new(&f.d, &unmapped);
        assert!(matches!(
            est.exec_time(f.main),
            Err(CoreError::UnmappedNode { .. })
        ));
        // Map nodes but not channels.
        let cpu = f.d.processor_by_name("cpu").unwrap();
        for n in f.d.graph().node_ids() {
            empty.assign_node(n, cpu.into());
        }
        let mut est = ExecTimeEstimator::new(&f.d, &empty);
        assert!(matches!(
            est.exec_time(f.main),
            Err(CoreError::UnmappedChannel { .. })
        ));
    }

    #[test]
    fn error_then_fix_is_not_cached_as_recursion() {
        // After an error, re-querying reports the same error (not a
        // spurious RecursiveAccess from the InProgress marker).
        let f = fixture(false);
        let empty = Partition::new(&f.d);
        let mut est = ExecTimeEstimator::new(&f.d, &empty);
        for _ in 0..2 {
            assert!(matches!(
                est.exec_time(f.main),
                Err(CoreError::UnmappedNode { .. })
            ));
        }
    }

    #[test]
    fn missing_ict_degrades_gracefully_with_default() {
        let mut f = fixture(false);
        // Drop sub's ict entry for the processor class.
        let pc = f.d.class_by_name("proc").unwrap();
        f.d.graph_mut().node_mut(f.sub).ict_mut().remove(pc);

        // Strict (default) config: hard error.
        let mut strict = ExecTimeEstimator::new(&f.d, &f.part);
        assert!(matches!(
            strict.exec_time(f.sub),
            Err(CoreError::MissingWeight { list: "ict", .. })
        ));
        assert!(strict.warnings().is_empty());

        // With a default: same answer as if ict were 40, plus a warning.
        let cfg = EstimatorConfig::default().with_default_ict(40);
        let mut soft = ExecTimeEstimator::with_config(&f.d, &f.part, cfg);
        assert_eq!(soft.exec_time(f.sub).unwrap(), 49.0);
        assert_eq!(soft.warnings().len(), 1);
        let w = soft.warnings()[0];
        assert_eq!(
            (w.node(), w.list(), w.substituted()),
            (Some(f.sub), Some("ict"), Some(40))
        );
        let drained = soft.take_warnings();
        assert_eq!(drained.len(), 1);
        assert!(soft.warnings().is_empty());
    }

    #[test]
    fn zero_bitwidth_bus_is_reported_not_divided_by() {
        use slif_core::faults::{FaultInjector, FaultKind};
        let mut f = fixture(false);
        FaultInjector::new(1)
            .apply(FaultKind::ZeroBusBitwidth, &mut f.d, &mut f.part)
            .expect("fixture has a bus");
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        assert!(matches!(
            est.exec_time(f.main),
            Err(CoreError::ZeroBitwidthBus { .. })
        ));
    }

    #[test]
    fn dangling_node_query_is_reported() {
        let f = fixture(false);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        let ghost = NodeId::from_raw(999);
        assert!(matches!(
            est.exec_time(ghost),
            Err(CoreError::DanglingReference { what: "node", .. })
        ));
        assert!(matches!(
            est.comm_time(ghost),
            Err(CoreError::DanglingReference { what: "node", .. })
        ));
    }

    #[test]
    fn zero_frequency_channels_cost_nothing() {
        let mut f = fixture(false);
        let call = f.d.graph().channel_ids().next().unwrap();
        *f.d.graph_mut().channel_mut(call).freq_mut() = AccessFreq::new(0.0, 0, 0);
        let mut est = ExecTimeEstimator::new(&f.d, &f.part);
        assert_eq!(est.exec_time(f.main).unwrap(), 100.0);
    }
}
