//! The from-scratch partition evaluator.
//!
//! [`FullEstimator`] implements [`Evaluator`](crate::Evaluator) with no
//! caching beyond the execution-time memo that Equation 1 itself requires
//! (and even that is discarded wholesale on every move): each `size` and
//! `pins` query recomputes from the compiled view and the current
//! partition. It exists as the oracle the incremental caches are checked
//! against and as the baseline the bench suite measures speedups from —
//! exploration hot paths should use
//! [`IncrementalEstimator`](crate::IncrementalEstimator).

use crate::config::EstimatorConfig;
use crate::exectime::{eval_exec_time, MemoState};
use crate::io::io_pins_compiled;
use crate::size::{node_size_on_compiled, size_with_compiled};
use crate::warning::EstimateWarning;
use slif_core::{
    BusId, ChannelId, CompiledDesign, CoreError, Design, NodeId, Partition, PmRef, ProcessorId,
};
use std::borrow::Cow;

/// An uncached evaluator that recomputes every metric from scratch.
///
/// Construction, move validation, and every query return exactly what
/// [`IncrementalEstimator`](crate::IncrementalEstimator) returns for the
/// same state — the two are interchangeable behind
/// [`Evaluator`](crate::Evaluator), differing only in speed.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_estimate::{Evaluator, FullEstimator};
///
/// let (design, partition) = DesignGenerator::new(1).build();
/// let mut full = FullEstimator::new(&design, partition)?;
/// let some_node = design.graph().node_ids().next().unwrap();
/// let target = design.processor_ids().next().unwrap();
/// full.move_node(some_node, target.into())?;
/// let _size = Evaluator::size(&mut full, target.into())?;
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct FullEstimator<'a> {
    cd: Cow<'a, CompiledDesign>,
    partition: Partition,
    config: EstimatorConfig,
    memo: Vec<MemoState>,
    warnings: Vec<EstimateWarning>,
}

impl<'a> FullEstimator<'a> {
    /// Creates an evaluator over an initial complete partition with the
    /// default configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnmappedNode`] or [`CoreError::MissingWeight`] if the
    /// starting partition is not proper.
    pub fn new(design: &Design, partition: Partition) -> Result<Self, CoreError> {
        Self::with_config(design, partition, EstimatorConfig::default())
    }

    /// Creates an evaluator with an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_config(
        design: &Design,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        Self::build(
            Cow::Owned(CompiledDesign::compile(design)),
            partition,
            config,
        )
    }

    /// Creates an evaluator over a shared pre-compiled view.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_compiled(cd: &'a CompiledDesign, partition: Partition) -> Result<Self, CoreError> {
        Self::from_compiled_with_config(cd, partition, EstimatorConfig::default())
    }

    /// [`from_compiled`](Self::from_compiled) with an explicit
    /// configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_compiled_with_config(
        cd: &'a CompiledDesign,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        Self::build(Cow::Borrowed(cd), partition, config)
    }

    fn build(
        cd: Cow<'a, CompiledDesign>,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        // The same validation sweep the incremental constructor performs,
        // so the two reject exactly the same starting partitions (and
        // record the same substitution warnings).
        let mut warnings = Vec::new();
        for n in cd.node_ids() {
            let comp = partition
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            node_size_on_compiled(&cd, n, comp, &config, &mut warnings)?;
        }
        let memo = vec![MemoState::default(); cd.node_count()];
        Ok(Self {
            cd,
            partition,
            config,
            memo,
            warnings,
        })
    }

    /// The compiled design view this evaluator reads.
    pub fn compiled(&self) -> &CompiledDesign {
        &self.cd
    }

    /// The current working partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consumes the evaluator, returning the working partition.
    pub fn into_partition(self) -> Partition {
        self.partition
    }

    /// Warnings accumulated from graceful degradation.
    pub fn warnings(&self) -> &[EstimateWarning] {
        &self.warnings
    }

    /// Moves node `n` to `comp`, discarding the execution-time memo.
    /// Validation order matches
    /// [`IncrementalEstimator::move_node`](crate::IncrementalEstimator::move_node)
    /// exactly, so the two fail identically.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingWeight`] (and the move is not performed) if the
    /// node has no size weight for the new component's class, or
    /// [`CoreError::BehaviorInMemory`] if a behavior is moved to a memory.
    pub fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        let old = self.partition.node_component(n);
        if old == Some(comp) {
            return Ok(old);
        }
        if let PmRef::Memory(m) = comp {
            if self.cd.node_kind(n).is_behavior() {
                return Err(CoreError::BehaviorInMemory { node: n, memory: m });
            }
        }
        node_size_on_compiled(&self.cd, n, comp, &self.config, &mut self.warnings)?;
        if let Some(old_comp) = old {
            node_size_on_compiled(&self.cd, n, old_comp, &self.config, &mut self.warnings)?;
        }
        self.partition.assign_node(n, comp);
        self.memo.fill(MemoState::default());
        Ok(old)
    }

    /// Moves channel `c` to `bus`, discarding the execution-time memo.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownBus`] if `bus` is not part of the design.
    pub fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError> {
        if bus.index() >= self.cd.bus_count() {
            return Err(CoreError::UnknownBus { bus });
        }
        let old = self.partition.assign_channel(c, bus);
        if old == Some(bus) {
            return Ok(old);
        }
        self.memo.fill(MemoState::default());
        Ok(old)
    }

    /// Re-applies the difference between the working partition and
    /// `target` as a sequence of moves; see
    /// [`IncrementalEstimator::sync_to`](crate::IncrementalEstimator::sync_to).
    ///
    /// # Errors
    ///
    /// As for
    /// [`IncrementalEstimator::sync_to`](crate::IncrementalEstimator::sync_to).
    pub fn sync_to(&mut self, target: &Partition) -> Result<(), CoreError> {
        if target.node_slots() != self.partition.node_slots()
            || target.channel_slots() != self.partition.channel_slots()
        {
            return Err(CoreError::InvalidInput {
                message: format!(
                    "sync target has {}/{} slots, estimator has {}/{}",
                    target.node_slots(),
                    target.channel_slots(),
                    self.partition.node_slots(),
                    self.partition.channel_slots()
                ),
            });
        }
        for n in self.cd.node_ids() {
            let want = target
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            if self.partition.node_component(n) != Some(want) {
                self.move_node(n, want)?;
            }
        }
        for c in self.cd.channel_ids() {
            let want = target
                .channel_bus(c)
                .ok_or(CoreError::UnmappedChannel { channel: c })?;
            if self.partition.channel_bus(c) != Some(want) {
                self.move_channel(c, want)?;
            }
        }
        Ok(())
    }

    /// Equation 1 execution time of node `n`, memoized only between moves.
    ///
    /// # Errors
    ///
    /// As for
    /// [`ExecTimeEstimator::exec_time`](crate::ExecTimeEstimator::exec_time).
    pub fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        eval_exec_time(
            &self.cd,
            &self.partition,
            &self.config,
            &mut self.memo,
            &mut self.warnings,
            n,
        )
    }

    /// Equation 4/5 size of component `pm`, recomputed from scratch.
    /// Substitution warnings were already recorded at construction and
    /// move time, so the recompute uses a scratch buffer instead of
    /// duplicating them per query.
    ///
    /// # Errors
    ///
    /// As for [`size`](crate::size).
    pub fn size(&mut self, pm: PmRef) -> Result<u64, CoreError> {
        size_with_compiled(&self.cd, &self.partition, pm, &self.config, &mut Vec::new())
    }

    /// Equation 6 pins of processor `p`, recomputed from scratch.
    ///
    /// # Errors
    ///
    /// As for [`io_pins`](crate::io_pins).
    pub fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        io_pins_compiled(&self.cd, &self.partition, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IncrementalEstimator;
    use slif_core::gen::DesignGenerator;

    #[test]
    fn rejects_the_same_bad_inputs_as_incremental() {
        let (design, _) = DesignGenerator::new(4).build();
        let empty = Partition::new(&design);
        assert!(matches!(
            FullEstimator::new(&design, empty),
            Err(CoreError::UnmappedNode { .. })
        ));

        let (design, part) = DesignGenerator::new(2).memories(1).build();
        let mut full = FullEstimator::new(&design, part.clone()).unwrap();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let b = design.graph().behavior_ids().next().unwrap();
        let mem = design.memory_ids().next().unwrap();
        let fa = full.move_node(b, mem.into());
        let ia = inc.move_node(b, mem.into());
        assert!(matches!(fa, Err(CoreError::BehaviorInMemory { .. })));
        assert!(matches!(ia, Err(CoreError::BehaviorInMemory { .. })));

        let c = design.graph().channel_ids().next().unwrap();
        assert!(matches!(
            full.move_channel(c, BusId::from_raw(99)),
            Err(CoreError::UnknownBus { .. })
        ));
    }

    #[test]
    fn moves_invalidate_the_exec_memo() {
        let (design, part) = DesignGenerator::new(5)
            .behaviors(8)
            .variables(4)
            .processors(2)
            .buses(1)
            .build();
        let mut full = FullEstimator::new(&design, part).unwrap();
        let n = design.graph().behavior_ids().next().unwrap();
        let before = full.exec_time(n).unwrap();
        // Move the node to the other processor and back: the memo must be
        // dropped both times, and the round trip restores the value.
        let procs: Vec<_> = design.processor_ids().collect();
        let old = full.move_node(n, procs[1].into()).unwrap().unwrap();
        let _mid = full.exec_time(n).unwrap();
        full.move_node(n, old).unwrap();
        assert_eq!(full.exec_time(n).unwrap(), before);
    }

    #[test]
    fn into_partition_returns_working_state() {
        let (design, part) = DesignGenerator::new(6).build();
        let mut full = FullEstimator::new(&design, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let target: PmRef = design.processor_ids().last().unwrap().into();
        full.move_node(n, target).unwrap();
        assert_eq!(full.into_partition().node_component(n), Some(target));
    }
}
