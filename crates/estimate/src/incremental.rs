//! Incremental estimation for partition-space exploration.
//!
//! The paper's speed claims exist so that "algorithms that explore
//! thousands of possible designs" stay interactive (Section 5). When an
//! algorithm moves one object at a time, most estimates are unaffected:
//!
//! * component sizes change by exactly one weight (subtract from the old
//!   component, add to the new),
//! * execution-time memo entries are stale only for the moved node and the
//!   nodes that can reach it through channels,
//! * pin counts are stale only for components touching the moved object's
//!   channels.
//!
//! [`IncrementalEstimator`] owns a working partition, maintains these
//! caches across [`move_node`](IncrementalEstimator::move_node) /
//! [`move_channel`](IncrementalEstimator::move_channel) calls, and always
//! returns exactly what a from-scratch estimator would (property-tested in
//! the crate's test suite).

use crate::config::EstimatorConfig;
use crate::exectime::{eval_exec_time, MemoState};
use crate::io::io_pins;
use crate::size::node_size_on_with;
use crate::warning::EstimateWarning;
use slif_core::{
    AccessTarget, BusId, ChannelId, CoreError, Design, NodeId, Partition, PmRef, ProcessorId,
};

/// A caching estimator that tracks a mutating partition.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_estimate::IncrementalEstimator;
///
/// let (design, partition) = DesignGenerator::new(1).build();
/// let mut inc = IncrementalEstimator::new(&design, partition)?;
/// let some_node = design.graph().node_ids().next().unwrap();
/// let target = design.processor_ids().next().unwrap();
/// inc.move_node(some_node, target.into())?;
/// let _size = inc.size(target.into());
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct IncrementalEstimator<'a> {
    design: &'a Design,
    partition: Partition,
    config: EstimatorConfig,
    /// Per-component size sums, indexed processors-then-memories.
    comp_size: Vec<u64>,
    exec_memo: Vec<MemoState>,
    pins_cache: Vec<Option<u32>>,
    warnings: Vec<EstimateWarning>,
}

impl<'a> IncrementalEstimator<'a> {
    /// Creates an estimator over an initial complete partition with the
    /// default configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnmappedNode`] or [`CoreError::MissingWeight`] if the
    /// starting partition is not proper.
    pub fn new(design: &'a Design, partition: Partition) -> Result<Self, CoreError> {
        Self::with_config(design, partition, EstimatorConfig::default())
    }

    /// Creates an estimator with an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_config(
        design: &'a Design,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        let slots = design.processor_count() + design.memory_count();
        let mut comp_size = vec![0u64; slots];
        let mut warnings = Vec::new();
        for n in design.graph().node_ids() {
            let comp = partition
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            comp_size[pm_index(design, comp)] +=
                node_size_on_with(design, n, comp, &config, &mut warnings)?;
        }
        Ok(Self {
            design,
            partition,
            config,
            comp_size,
            exec_memo: vec![MemoState::default(); design.graph().node_count()],
            pins_cache: vec![None; design.processor_count()],
            warnings,
        })
    }

    /// The current working partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consumes the estimator, returning the working partition.
    pub fn into_partition(self) -> Partition {
        self.partition
    }

    /// Moves node `n` to `comp`, updating all caches. Returns the previous
    /// component. Moving a node to its current component is a no-op.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingWeight`] (and the move is not performed) if the
    /// node has no size weight for the new component's class, or
    /// [`CoreError::BehaviorInMemory`] if a behavior is moved to a memory.
    pub fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        let old = self.partition.node_component(n);
        if old == Some(comp) {
            return Ok(old);
        }
        if let PmRef::Memory(m) = comp {
            if self.design.graph().node(n).kind().is_behavior() {
                return Err(CoreError::BehaviorInMemory { node: n, memory: m });
            }
        }
        let new_w = node_size_on_with(self.design, n, comp, &self.config, &mut self.warnings)?;
        if let Some(old_comp) = old {
            let old_w =
                node_size_on_with(self.design, n, old_comp, &self.config, &mut self.warnings)?;
            self.comp_size[pm_index(self.design, old_comp)] -= old_w;
        }
        self.comp_size[pm_index(self.design, comp)] += new_w;
        self.partition.assign_node(n, comp);
        self.invalidate_exec_through(n);
        self.invalidate_pins_around_node(n, old, Some(comp));
        Ok(old)
    }

    /// Moves channel `c` to `bus`, updating caches. Returns the previous
    /// bus.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownBus`] if `bus` is not part of the design.
    pub fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError> {
        if bus.index() >= self.design.bus_count() {
            return Err(CoreError::UnknownBus { bus });
        }
        let old = self.partition.assign_channel(c, bus);
        if old == Some(bus) {
            return Ok(old);
        }
        // Transfer times of the channel's source (and its initiators) change.
        self.invalidate_exec_through(self.design.graph().channel(c).src());
        // Cut-bus sets of both endpoint components may change.
        let ch = self.design.graph().channel(c);
        self.invalidate_pins_of_comp(self.partition.node_component(ch.src()));
        if let AccessTarget::Node(dst) = ch.dst() {
            self.invalidate_pins_of_comp(self.partition.node_component(dst));
        }
        Ok(old)
    }

    /// Equation 1 execution time of node `n`, from cache where valid.
    ///
    /// # Errors
    ///
    /// As for [`ExecTimeEstimator::exec_time`](crate::ExecTimeEstimator::exec_time).
    pub fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        eval_exec_time(
            self.design,
            &self.partition,
            &self.config,
            &mut self.exec_memo,
            &mut self.warnings,
            n,
        )
    }

    /// Warnings accumulated from graceful degradation (default weight
    /// substitutions); see
    /// [`ExecTimeEstimator::warnings`](crate::ExecTimeEstimator::warnings).
    pub fn warnings(&self) -> &[EstimateWarning] {
        &self.warnings
    }

    /// Equation 4/5 size of component `pm` — an O(1) cache read.
    ///
    /// # Panics
    ///
    /// Panics if `pm` does not come from this design.
    pub fn size(&self, pm: PmRef) -> u64 {
        self.comp_size[pm_index(self.design, pm)]
    }

    /// Equation 6 pins of processor `p`, from cache where valid.
    ///
    /// # Errors
    ///
    /// As for [`io_pins`].
    pub fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        if let Some(pins) = self.pins_cache[p.index()] {
            return Ok(pins);
        }
        let pins = io_pins(self.design, &self.partition, p)?;
        self.pins_cache[p.index()] = Some(pins);
        Ok(pins)
    }

    /// Invalidates exec-time memo entries for `n` and every node that can
    /// reach it through channels.
    fn invalidate_exec_through(&mut self, n: NodeId) {
        for dep in self.design.graph().dependents_of(n) {
            self.exec_memo[dep.index()] = MemoState::default();
        }
    }

    fn invalidate_pins_of_comp(&mut self, comp: Option<PmRef>) {
        if let Some(PmRef::Processor(p)) = comp {
            self.pins_cache[p.index()] = None;
        }
    }

    /// Invalidates the pin caches of every processor whose cut set can be
    /// affected by re-homing node `n`: its old and new components, and the
    /// components of every node it shares a channel with.
    fn invalidate_pins_around_node(&mut self, n: NodeId, old: Option<PmRef>, new: Option<PmRef>) {
        self.invalidate_pins_of_comp(old);
        self.invalidate_pins_of_comp(new);
        let g = self.design.graph();
        let mut neighbours: Vec<Option<PmRef>> = Vec::new();
        for c in g.channels_of(n) {
            if let AccessTarget::Node(dst) = g.channel(c).dst() {
                neighbours.push(self.partition.node_component(dst));
            }
        }
        for c in g.accessors_of(n) {
            neighbours.push(self.partition.node_component(g.channel(c).src()));
        }
        for comp in neighbours {
            self.invalidate_pins_of_comp(comp);
        }
    }
}

fn pm_index(design: &Design, pm: PmRef) -> usize {
    match pm {
        PmRef::Processor(p) => p.index(),
        PmRef::Memory(m) => design.processor_count() + m.index(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exectime::ExecTimeEstimator;
    use crate::size::size;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slif_core::gen::DesignGenerator;

    /// Applies `moves` random single-object moves, checking after each that
    /// incremental results equal from-scratch results.
    fn random_walk_agrees(seed: u64, moves: usize) {
        let (design, part) = DesignGenerator::new(seed)
            .behaviors(15)
            .variables(12)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let procs: Vec<_> = design.processor_ids().collect();
        let mems: Vec<_> = design.memory_ids().collect();
        let buses: Vec<_> = design.bus_ids().collect();
        for _ in 0..moves {
            if rng.gen_bool(0.7) {
                // Move a node.
                let n = NodeId::from_raw(rng.gen_range(0..design.graph().node_count()) as u32);
                let comp: PmRef =
                    if design.graph().node(n).kind().is_variable() && rng.gen_bool(0.5) {
                        mems[rng.gen_range(0..mems.len())].into()
                    } else {
                        procs[rng.gen_range(0..procs.len())].into()
                    };
                inc.move_node(n, comp).unwrap();
            } else {
                let c =
                    ChannelId::from_raw(rng.gen_range(0..design.graph().channel_count()) as u32);
                inc.move_channel(c, buses[rng.gen_range(0..buses.len())])
                    .unwrap();
            }
            // Compare against a from-scratch estimator.
            let fresh_part = inc.partition().clone();
            let mut fresh = ExecTimeEstimator::new(&design, &fresh_part);
            for n in design.graph().node_ids() {
                let a = inc.exec_time(n).unwrap();
                let b = fresh.exec_time(n).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "exec time mismatch on {n}: {a} vs {b}"
                );
            }
            for pm in design.pm_refs() {
                assert_eq!(inc.size(pm), size(&design, &fresh_part, pm).unwrap());
            }
            for p in design.processor_ids() {
                assert_eq!(
                    inc.pins(p).unwrap(),
                    io_pins(&design, &fresh_part, p).unwrap()
                );
            }
        }
    }

    #[test]
    fn agrees_with_full_recompute_across_random_walks() {
        for seed in 0..4 {
            random_walk_agrees(seed, 30);
        }
    }

    #[test]
    fn move_to_same_component_is_noop() {
        let (design, part) = DesignGenerator::new(0).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let comp = inc.partition().node_component(n).unwrap();
        let before = inc.size(comp);
        assert_eq!(inc.move_node(n, comp).unwrap(), Some(comp));
        assert_eq!(inc.size(comp), before);
    }

    #[test]
    fn behavior_to_memory_rejected_without_corruption() {
        let (design, part) = DesignGenerator::new(2).memories(1).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let b = design.graph().behavior_ids().next().unwrap();
        let mem = design.memory_ids().next().unwrap();
        let comp_before = inc.partition().node_component(b).unwrap();
        let size_before = inc.size(comp_before);
        assert!(matches!(
            inc.move_node(b, mem.into()),
            Err(CoreError::BehaviorInMemory { .. })
        ));
        assert_eq!(inc.partition().node_component(b), Some(comp_before));
        assert_eq!(inc.size(comp_before), size_before);
    }

    #[test]
    fn unknown_bus_rejected() {
        let (design, part) = DesignGenerator::new(3).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let c = design.graph().channel_ids().next().unwrap();
        assert!(matches!(
            inc.move_channel(c, BusId::from_raw(99)),
            Err(CoreError::UnknownBus { .. })
        ));
    }

    #[test]
    fn incomplete_partition_rejected_at_construction() {
        let (design, _) = DesignGenerator::new(4).build();
        let empty = Partition::new(&design);
        assert!(matches!(
            IncrementalEstimator::new(&design, empty),
            Err(CoreError::UnmappedNode { .. })
        ));
    }

    #[test]
    fn into_partition_returns_working_state() {
        let (design, part) = DesignGenerator::new(5).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let target: PmRef = design.processor_ids().last().unwrap().into();
        inc.move_node(n, target).unwrap();
        let out = inc.into_partition();
        assert_eq!(out.node_component(n), Some(target));
    }
}
