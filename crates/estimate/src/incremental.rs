//! Incremental estimation for partition-space exploration.
//!
//! The paper's speed claims exist so that "algorithms that explore
//! thousands of possible designs" stay interactive (Section 5). When an
//! algorithm moves one object at a time, most estimates are unaffected:
//!
//! * component sizes change by exactly one weight (subtract from the old
//!   component, add to the new),
//! * execution-time memo entries are stale only for the moved node and the
//!   nodes that can reach it through channels,
//! * pin counts are stale only for components touching the moved object's
//!   channels.
//!
//! [`IncrementalEstimator`] owns a working partition, maintains these
//! caches across [`move_node`](IncrementalEstimator::move_node) /
//! [`move_channel`](IncrementalEstimator::move_channel) calls, and always
//! returns exactly what a from-scratch estimator would (property-tested in
//! the crate's test suite).

use crate::config::EstimatorConfig;
use crate::exectime::{eval_exec_time, MemoState};
use crate::io::io_pins_compiled;
use crate::size::node_size_on_compiled;
use crate::warning::EstimateWarning;
use slif_core::{
    AccessTarget, AnnotationDelta, BusId, ChannelId, CompiledDesign, CoreError, Design, NodeId,
    Partition, PmRef, ProcessorId,
};
use std::borrow::Cow;

/// A caching estimator that tracks a mutating partition.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_estimate::IncrementalEstimator;
///
/// let (design, partition) = DesignGenerator::new(1).build();
/// let mut inc = IncrementalEstimator::new(&design, partition)?;
/// let some_node = design.graph().node_ids().next().unwrap();
/// let target = design.processor_ids().next().unwrap();
/// inc.move_node(some_node, target.into())?;
/// let _size = inc.size(target.into());
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct IncrementalEstimator<'a> {
    cd: Cow<'a, CompiledDesign>,
    partition: Partition,
    config: EstimatorConfig,
    /// Per-component size sums, indexed processors-then-memories.
    comp_size: Vec<u64>,
    exec_memo: Vec<MemoState>,
    pins_cache: Vec<Option<u32>>,
    warnings: Vec<EstimateWarning>,
    /// Reusable reverse-reachability scratch for memo invalidation: a node
    /// is "seen" when its stamp equals the current epoch, so clearing the
    /// buffer between moves is a single counter increment.
    dep_seen: Vec<u32>,
    dep_epoch: u32,
    dep_stack: Vec<NodeId>,
    /// Self-audit cadence: every N successful moves, one entry of each
    /// cache is re-derived from scratch. `None` disables auditing.
    audit_every: Option<u64>,
    /// Successful (state-changing) moves applied so far.
    moves: u64,
    /// Cache divergences detected (and repaired) so far.
    divergences: u64,
}

impl<'a> IncrementalEstimator<'a> {
    /// Creates an estimator over an initial complete partition with the
    /// default configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnmappedNode`] or [`CoreError::MissingWeight`] if the
    /// starting partition is not proper.
    pub fn new(design: &Design, partition: Partition) -> Result<Self, CoreError> {
        Self::with_config(design, partition, EstimatorConfig::default())
    }

    /// Creates an estimator with an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_config(
        design: &Design,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        Self::build(
            Cow::Owned(CompiledDesign::compile(design)),
            partition,
            config,
        )
    }

    /// Creates an estimator over a shared pre-compiled view, avoiding the
    /// per-estimator compile. This is the constructor exploration hot
    /// paths should use.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_compiled(cd: &'a CompiledDesign, partition: Partition) -> Result<Self, CoreError> {
        Self::from_compiled_with_config(cd, partition, EstimatorConfig::default())
    }

    /// [`from_compiled`](Self::from_compiled) with an explicit
    /// configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_compiled_with_config(
        cd: &'a CompiledDesign,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        Self::build(Cow::Borrowed(cd), partition, config)
    }

    /// Creates an estimator that *owns* its compiled view, so it can
    /// outlive any borrow and patch the view in place. Edit sessions use
    /// this: they hold one `IncrementalEstimator<'static>` per session
    /// and refresh it through
    /// [`rebase_annotations`](Self::rebase_annotations).
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_owned_compiled(
        cd: CompiledDesign,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<IncrementalEstimator<'static>, CoreError> {
        IncrementalEstimator::build(Cow::Owned(cd), partition, config)
    }

    /// Re-copies annotations (channel bits/frequencies/tags, weight
    /// tables) from `design` into the owned compiled view via
    /// [`CompiledDesign::patch_annotations_from`], then invalidates
    /// exactly the dependent cached state: component-size sums are
    /// reseeded with the constructor's own loop (bit-identical to a cold
    /// build), the pin cache is cleared, and the execution-time memo is
    /// invalidated through the reverse-CSR walk from every changed node —
    /// memo entries of untouched subtrees stay warm. Returns the changed
    /// nodes.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] if `design` is not topology-identical
    /// to the compiled view (the caches are untouched); any
    /// [`node_size_on_compiled`] error during the reseed, after which the
    /// size cache is inconsistent and the estimator must be discarded.
    pub fn rebase_annotations(&mut self, design: &Design) -> Result<Vec<NodeId>, CoreError> {
        self.rebase_annotations_delta(design).map(|d| d.dirty_nodes)
    }

    /// [`rebase_annotations`](Self::rebase_annotations), but surfacing the
    /// full [`AnnotationDelta`] so callers (edit sessions) can slice
    /// *their* downstream work — e.g. skip lint passes whose inputs the
    /// patch never touched. Cache invalidation is also delta-driven here:
    /// the component-size reseed (which reads only size weights) runs only
    /// when a weight row changed, and the pin cache (which reads only
    /// channel bits) is cleared only when channel bits or tags changed.
    ///
    /// # Errors
    ///
    /// As for [`rebase_annotations`](Self::rebase_annotations).
    pub fn rebase_annotations_delta(
        &mut self,
        design: &Design,
    ) -> Result<AnnotationDelta, CoreError> {
        let delta = self.cd.to_mut().patch_annotations_delta(design)?;
        if delta.weights {
            self.comp_size.fill(0);
            for n in self.cd.node_ids() {
                let comp = self
                    .partition
                    .node_component(n)
                    .ok_or(CoreError::UnmappedNode { node: n })?;
                self.comp_size[self.cd.pm_index(comp)] +=
                    node_size_on_compiled(&self.cd, n, comp, &self.config, &mut self.warnings)?;
            }
        }
        if delta.chan_bits_or_tags {
            self.pins_cache.fill(None);
        }
        for &n in &delta.dirty_nodes {
            self.invalidate_exec_through(n);
        }
        Ok(delta)
    }

    fn build(
        cd: Cow<'a, CompiledDesign>,
        partition: Partition,
        config: EstimatorConfig,
    ) -> Result<Self, CoreError> {
        let mut comp_size = vec![0u64; cd.pm_count()];
        let mut warnings = Vec::new();
        for n in cd.node_ids() {
            let comp = partition
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            comp_size[cd.pm_index(comp)] +=
                node_size_on_compiled(&cd, n, comp, &config, &mut warnings)?;
        }
        let node_count = cd.node_count();
        let exec_memo = vec![MemoState::default(); node_count];
        let pins_cache = vec![None; cd.processor_count()];
        Ok(Self {
            cd,
            partition,
            config,
            comp_size,
            exec_memo,
            pins_cache,
            warnings,
            dep_seen: vec![0; node_count],
            dep_epoch: 0,
            dep_stack: Vec::new(),
            audit_every: None,
            moves: 0,
            divergences: 0,
        })
    }

    /// The compiled design view this estimator reads.
    pub fn compiled(&self) -> &CompiledDesign {
        &self.cd
    }

    /// Enables self-audit mode: every `every` successful moves, one entry
    /// of each cache (component size, execution-time memo, pin count) is
    /// re-derived from scratch. A divergence is repaired on the spot and
    /// recorded as an [`EstimateWarning::CacheDivergence`] — turning a
    /// silent wrong-answer bug into a detected, recovered event. With
    /// healthy caches the audit changes nothing observable but time.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] if `every` is zero.
    pub fn with_audit(mut self, every: u64) -> Result<Self, CoreError> {
        if every == 0 {
            return Err(CoreError::InvalidInput {
                message: "audit cadence must be at least one move".to_owned(),
            });
        }
        self.audit_every = Some(every);
        Ok(self)
    }

    /// How many cache divergences self-audits have detected and repaired.
    pub fn cache_divergences(&self) -> u64 {
        self.divergences
    }

    /// The current working partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consumes the estimator, returning the working partition.
    pub fn into_partition(self) -> Partition {
        self.partition
    }

    /// Moves node `n` to `comp`, updating all caches. Returns the previous
    /// component. Moving a node to its current component is a no-op.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingWeight`] (and the move is not performed) if the
    /// node has no size weight for the new component's class, or
    /// [`CoreError::BehaviorInMemory`] if a behavior is moved to a memory.
    pub fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        let old = self.partition.node_component(n);
        if old == Some(comp) {
            return Ok(old);
        }
        if let PmRef::Memory(m) = comp {
            if self.cd.node_kind(n).is_behavior() {
                return Err(CoreError::BehaviorInMemory { node: n, memory: m });
            }
        }
        let new_w = node_size_on_compiled(&self.cd, n, comp, &self.config, &mut self.warnings)?;
        if let Some(old_comp) = old {
            let old_w =
                node_size_on_compiled(&self.cd, n, old_comp, &self.config, &mut self.warnings)?;
            self.comp_size[self.cd.pm_index(old_comp)] -= old_w;
        }
        self.comp_size[self.cd.pm_index(comp)] += new_w;
        self.partition.assign_node(n, comp);
        self.invalidate_exec_through(n);
        self.invalidate_pins_around_node(n, old, Some(comp));
        self.tick_audit();
        Ok(old)
    }

    /// Moves channel `c` to `bus`, updating caches. Returns the previous
    /// bus.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownBus`] if `bus` is not part of the design.
    pub fn move_channel(&mut self, c: ChannelId, bus: BusId) -> Result<Option<BusId>, CoreError> {
        if bus.index() >= self.cd.bus_count() {
            return Err(CoreError::UnknownBus { bus });
        }
        let old = self.partition.assign_channel(c, bus);
        if old == Some(bus) {
            return Ok(old);
        }
        // Transfer times of the channel's source (and its initiators) change.
        let src = self.cd.chan_src(c);
        self.invalidate_exec_through(src);
        // Cut-bus sets of both endpoint components may change.
        self.invalidate_pins_of_comp(self.partition.node_component(src));
        if let AccessTarget::Node(dst) = self.cd.chan_dst(c) {
            self.invalidate_pins_of_comp(self.partition.node_component(dst));
        }
        self.tick_audit();
        Ok(old)
    }

    /// Re-applies the difference between the working partition and
    /// `target` as a sequence of incremental moves, after which
    /// [`partition`](Self::partition) equals `target` and every cache is
    /// consistent with it. This is how batched rollbacks (e.g. a
    /// [`PartitionTxn`](slif_core::PartitionTxn) rewind) are replayed
    /// into the estimator without a from-scratch rebuild.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] if `target` was shaped for a different
    /// design; [`CoreError::UnmappedNode`] / [`CoreError::UnmappedChannel`]
    /// if `target` is incomplete; any [`move_node`](Self::move_node) /
    /// [`move_channel`](Self::move_channel) error. On error the estimator
    /// stays valid but may have applied a prefix of the diff.
    pub fn sync_to(&mut self, target: &Partition) -> Result<(), CoreError> {
        if target.node_slots() != self.partition.node_slots()
            || target.channel_slots() != self.partition.channel_slots()
        {
            return Err(CoreError::InvalidInput {
                message: format!(
                    "sync target has {}/{} slots, estimator has {}/{}",
                    target.node_slots(),
                    target.channel_slots(),
                    self.partition.node_slots(),
                    self.partition.channel_slots()
                ),
            });
        }
        for n in self.cd.node_ids() {
            let want = target
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            if self.partition.node_component(n) != Some(want) {
                self.move_node(n, want)?;
            }
        }
        for c in self.cd.channel_ids() {
            let want = target
                .channel_bus(c)
                .ok_or(CoreError::UnmappedChannel { channel: c })?;
            if self.partition.channel_bus(c) != Some(want) {
                self.move_channel(c, want)?;
            }
        }
        Ok(())
    }

    /// Equation 1 execution time of node `n`, from cache where valid.
    ///
    /// # Errors
    ///
    /// As for [`ExecTimeEstimator::exec_time`](crate::ExecTimeEstimator::exec_time).
    pub fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        eval_exec_time(
            &self.cd,
            &self.partition,
            &self.config,
            &mut self.exec_memo,
            &mut self.warnings,
            n,
        )
    }

    /// Warnings accumulated from graceful degradation (default weight
    /// substitutions); see
    /// [`ExecTimeEstimator::warnings`](crate::ExecTimeEstimator::warnings).
    pub fn warnings(&self) -> &[EstimateWarning] {
        &self.warnings
    }

    /// Equation 4/5 size of component `pm` — an O(1) cache read.
    ///
    /// # Panics
    ///
    /// Panics if `pm` does not come from this design.
    pub fn size(&self, pm: PmRef) -> u64 {
        self.comp_size[self.cd.pm_index(pm)]
    }

    /// Equation 6 pins of processor `p`, from cache where valid.
    ///
    /// # Errors
    ///
    /// As for [`io_pins`].
    pub fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        if let Some(pins) = self.pins_cache[p.index()] {
            return Ok(pins);
        }
        let pins = io_pins_compiled(&self.cd, &self.partition, p)?;
        self.pins_cache[p.index()] = Some(pins);
        Ok(pins)
    }

    /// Invalidates exec-time memo entries for `n` and every node that can
    /// reach it through channels.
    /// Resets the execution-time memo of `n` and every node that can
    /// reach it through channels (the same set as
    /// [`CompiledDesign::dependents_of`], walked in place over the
    /// reverse CSR with reusable epoch-stamped scratch — no allocation on
    /// the per-move hot path).
    fn invalidate_exec_through(&mut self, n: NodeId) {
        self.dep_epoch = self.dep_epoch.wrapping_add(1);
        if self.dep_epoch == 0 {
            // Stamp wrap-around: stale stamps could alias the new epoch.
            self.dep_seen.fill(0);
            self.dep_epoch = 1;
        }
        let epoch = self.dep_epoch;
        self.dep_stack.clear();
        self.dep_stack.push(n);
        self.dep_seen[n.index()] = epoch;
        while let Some(cur) = self.dep_stack.pop() {
            self.exec_memo[cur.index()] = MemoState::default();
            for &c in self.cd.accessors_of(cur) {
                let src = self.cd.chan_src(c);
                if src.index() < self.dep_seen.len() && self.dep_seen[src.index()] != epoch {
                    self.dep_seen[src.index()] = epoch;
                    self.dep_stack.push(src);
                }
            }
        }
    }

    fn invalidate_pins_of_comp(&mut self, comp: Option<PmRef>) {
        if let Some(PmRef::Processor(p)) = comp {
            self.pins_cache[p.index()] = None;
        }
    }

    /// Invalidates the pin caches of every processor whose cut set can be
    /// affected by re-homing node `n`: its old and new components, and the
    /// components of every node it shares a channel with.
    fn invalidate_pins_around_node(&mut self, n: NodeId, old: Option<PmRef>, new: Option<PmRef>) {
        self.invalidate_pins_of_comp(old);
        self.invalidate_pins_of_comp(new);
        for i in 0..self.cd.channels_of(n).len() {
            let c = self.cd.channels_of(n)[i];
            if let AccessTarget::Node(dst) = self.cd.chan_dst(c) {
                self.invalidate_pins_of_comp(self.partition.node_component(dst));
            }
        }
        for i in 0..self.cd.accessors_of(n).len() {
            let c = self.cd.accessors_of(n)[i];
            let src = self.cd.chan_src(c);
            self.invalidate_pins_of_comp(self.partition.node_component(src));
        }
    }

    /// Counts a successful move and, when an audit is due, re-derives one
    /// sampled entry per cache. Sampling is a pure function of the move
    /// counter (never of any run RNG), so enabling audits cannot perturb
    /// an exploration's decision stream.
    fn tick_audit(&mut self) {
        self.moves += 1;
        let Some(every) = self.audit_every else {
            return;
        };
        if !self.moves.is_multiple_of(every) {
            return;
        }
        let round = self.moves / every;
        if !self.comp_size.is_empty() {
            self.audit_size_slot((round % self.comp_size.len() as u64) as usize);
        }
        if !self.exec_memo.is_empty() {
            self.audit_exec_slot((round % self.exec_memo.len() as u64) as usize);
        }
        if !self.pins_cache.is_empty() {
            self.audit_pins_slot((round % self.pins_cache.len() as u64) as usize);
        }
    }

    /// Audits every cached entry at once, returning how many divergences
    /// this sweep found (each already repaired and recorded as an
    /// [`EstimateWarning::CacheDivergence`]). Entries whose from-scratch
    /// re-derivation itself errors (a corrupted design) are skipped: the
    /// audit detects silent wrong answers, the move/query paths report
    /// loud ones.
    pub fn audit_now(&mut self) -> u64 {
        let before = self.divergences;
        for i in 0..self.comp_size.len() {
            self.audit_size_slot(i);
        }
        for i in 0..self.exec_memo.len() {
            self.audit_exec_slot(i);
        }
        for i in 0..self.pins_cache.len() {
            self.audit_pins_slot(i);
        }
        self.divergences - before
    }

    /// Re-sums component slot `i` from scratch; repairs and records a
    /// divergence. Scratch warnings are discarded so an audit never
    /// duplicates the missing-weight warnings the original sum recorded.
    fn audit_size_slot(&mut self, i: usize) {
        let pm = self.cd.pm_of_index(i);
        let mut scratch = Vec::new();
        let mut total = 0u64;
        for n in self.partition.nodes_on(pm) {
            match node_size_on_compiled(&self.cd, n, pm, &self.config, &mut scratch) {
                Ok(w) => total = total.saturating_add(w),
                Err(_) => return,
            }
        }
        let cached = self.comp_size[i];
        if cached != total {
            self.comp_size[i] = total;
            self.record_divergence("size", i, cached as f64, total as f64);
        }
    }

    /// Re-derives node `i`'s execution time from scratch if it is cached;
    /// repairs and records a divergence.
    fn audit_exec_slot(&mut self, i: usize) {
        let MemoState::Done(cached) = self.exec_memo[i] else {
            return;
        };
        let mut scratch_memo = vec![MemoState::default(); self.exec_memo.len()];
        let mut scratch_warnings = Vec::new();
        let Ok(recomputed) = eval_exec_time(
            &self.cd,
            &self.partition,
            &self.config,
            &mut scratch_memo,
            &mut scratch_warnings,
            NodeId::from_raw(i as u32),
        ) else {
            return;
        };
        if recomputed != cached {
            self.exec_memo[i] = MemoState::Done(recomputed);
            self.record_divergence("exec", i, cached, recomputed);
        }
    }

    /// Re-counts processor `i`'s pins from scratch if cached; repairs and
    /// records a divergence.
    fn audit_pins_slot(&mut self, i: usize) {
        let Some(cached) = self.pins_cache[i] else {
            return;
        };
        let Ok(recomputed) = io_pins_compiled(
            &self.cd,
            &self.partition,
            ProcessorId::from_raw(i as u32),
        ) else {
            return;
        };
        if recomputed != cached {
            self.pins_cache[i] = Some(recomputed);
            self.record_divergence("pins", i, f64::from(cached), f64::from(recomputed));
        }
    }

    fn record_divergence(&mut self, cache: &'static str, index: usize, cached: f64, recomputed: f64) {
        self.divergences += 1;
        self.warnings.push(EstimateWarning::CacheDivergence {
            cache,
            index: index as u32,
            cached,
            recomputed,
        });
    }

    /// Test hook: corrupts the cached size sum of component `pm` by
    /// `delta`, simulating the silent cache bug self-audit exists to
    /// catch. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_corrupt_size_cache(&mut self, pm: PmRef, delta: u64) {
        let i = self.cd.pm_index(pm);
        self.comp_size[i] = self.comp_size[i].wrapping_add(delta);
    }

    /// Test hook: corrupts node `n`'s cached execution time by `delta` if
    /// it is currently memoized. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_corrupt_exec_cache(&mut self, n: NodeId, delta: f64) {
        if let MemoState::Done(t) = self.exec_memo[n.index()] {
            self.exec_memo[n.index()] = MemoState::Done(t + delta);
        }
    }

    /// Test hook: corrupts processor `p`'s cached pin count by `delta` if
    /// it is currently cached. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_corrupt_pins_cache(&mut self, p: ProcessorId, delta: u32) {
        if let Some(pins) = self.pins_cache[p.index()] {
            self.pins_cache[p.index()] = Some(pins.wrapping_add(delta));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exectime::ExecTimeEstimator;
    use crate::io::io_pins;
    use crate::size::size;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slif_core::gen::DesignGenerator;

    /// Applies `moves` random single-object moves, checking after each that
    /// incremental results equal from-scratch results.
    fn random_walk_agrees(seed: u64, moves: usize) {
        let (design, part) = DesignGenerator::new(seed)
            .behaviors(15)
            .variables(12)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let procs: Vec<_> = design.processor_ids().collect();
        let mems: Vec<_> = design.memory_ids().collect();
        let buses: Vec<_> = design.bus_ids().collect();
        for _ in 0..moves {
            if rng.gen_bool(0.7) {
                // Move a node.
                let n = NodeId::from_raw(rng.gen_range(0..design.graph().node_count()) as u32);
                let comp: PmRef =
                    if design.graph().node(n).kind().is_variable() && rng.gen_bool(0.5) {
                        mems[rng.gen_range(0..mems.len())].into()
                    } else {
                        procs[rng.gen_range(0..procs.len())].into()
                    };
                inc.move_node(n, comp).unwrap();
            } else {
                let c =
                    ChannelId::from_raw(rng.gen_range(0..design.graph().channel_count()) as u32);
                inc.move_channel(c, buses[rng.gen_range(0..buses.len())])
                    .unwrap();
            }
            // Compare against a from-scratch estimator.
            let fresh_part = inc.partition().clone();
            let mut fresh = ExecTimeEstimator::new(&design, &fresh_part);
            for n in design.graph().node_ids() {
                let a = inc.exec_time(n).unwrap();
                let b = fresh.exec_time(n).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "exec time mismatch on {n}: {a} vs {b}"
                );
            }
            for pm in design.pm_refs() {
                assert_eq!(inc.size(pm), size(&design, &fresh_part, pm).unwrap());
            }
            for p in design.processor_ids() {
                assert_eq!(
                    inc.pins(p).unwrap(),
                    io_pins(&design, &fresh_part, p).unwrap()
                );
            }
        }
    }

    #[test]
    fn agrees_with_full_recompute_across_random_walks() {
        for seed in 0..4 {
            random_walk_agrees(seed, 30);
        }
    }

    #[test]
    fn move_to_same_component_is_noop() {
        let (design, part) = DesignGenerator::new(0).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let comp = inc.partition().node_component(n).unwrap();
        let before = inc.size(comp);
        assert_eq!(inc.move_node(n, comp).unwrap(), Some(comp));
        assert_eq!(inc.size(comp), before);
    }

    #[test]
    fn behavior_to_memory_rejected_without_corruption() {
        let (design, part) = DesignGenerator::new(2).memories(1).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let b = design.graph().behavior_ids().next().unwrap();
        let mem = design.memory_ids().next().unwrap();
        let comp_before = inc.partition().node_component(b).unwrap();
        let size_before = inc.size(comp_before);
        assert!(matches!(
            inc.move_node(b, mem.into()),
            Err(CoreError::BehaviorInMemory { .. })
        ));
        assert_eq!(inc.partition().node_component(b), Some(comp_before));
        assert_eq!(inc.size(comp_before), size_before);
    }

    #[test]
    fn unknown_bus_rejected() {
        let (design, part) = DesignGenerator::new(3).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let c = design.graph().channel_ids().next().unwrap();
        assert!(matches!(
            inc.move_channel(c, BusId::from_raw(99)),
            Err(CoreError::UnknownBus { .. })
        ));
    }

    #[test]
    fn incomplete_partition_rejected_at_construction() {
        let (design, _) = DesignGenerator::new(4).build();
        let empty = Partition::new(&design);
        assert!(matches!(
            IncrementalEstimator::new(&design, empty),
            Err(CoreError::UnmappedNode { .. })
        ));
    }

    #[test]
    fn audit_detects_and_repairs_corrupted_caches() {
        let (design, part) = DesignGenerator::new(6)
            .behaviors(8)
            .variables(5)
            .processors(2)
            .memories(1)
            .buses(1)
            .build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        // Warm every cache first.
        let nodes: Vec<NodeId> = design.graph().node_ids().collect();
        for &n in &nodes {
            inc.exec_time(n).unwrap();
        }
        for p in design.processor_ids() {
            inc.pins(p).unwrap();
        }
        // A healthy estimator audits clean.
        assert_eq!(inc.audit_now(), 0);
        assert_eq!(inc.cache_divergences(), 0);

        // Corrupt one entry of each cache.
        let pm: PmRef = design.processor_ids().next().unwrap().into();
        let truth_size = inc.size(pm);
        inc.debug_corrupt_size_cache(pm, 37);
        assert_eq!(inc.size(pm), truth_size + 37, "corruption took");
        let victim = nodes[0];
        inc.debug_corrupt_exec_cache(victim, 5.0);
        let p0 = design.processor_ids().next().unwrap();
        inc.debug_corrupt_pins_cache(p0, 3);

        let found = inc.audit_now();
        assert_eq!(found, 3, "one divergence per corrupted cache");
        assert_eq!(inc.cache_divergences(), 3);
        // Every cache is repaired to its from-scratch value.
        assert_eq!(inc.size(pm), truth_size);
        let fresh_part = inc.partition().clone();
        let mut fresh = ExecTimeEstimator::new(&design, &fresh_part);
        assert_eq!(
            inc.exec_time(victim).unwrap(),
            fresh.exec_time(victim).unwrap()
        );
        assert_eq!(
            inc.pins(p0).unwrap(),
            io_pins(&design, &fresh_part, p0).unwrap()
        );
        // And every repair left a warning record.
        let repairs: Vec<_> = inc
            .warnings()
            .iter()
            .filter(|w| w.is_cache_divergence())
            .collect();
        assert_eq!(repairs.len(), 3, "{repairs:?}");
        // A second sweep finds nothing left to repair.
        assert_eq!(inc.audit_now(), 0);
    }

    #[test]
    fn periodic_audit_fires_on_move_cadence() {
        let (design, part) = DesignGenerator::new(7)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(1)
            .build();
        let mut inc = IncrementalEstimator::new(&design, part)
            .unwrap()
            .with_audit(2)
            .unwrap();
        let pm: PmRef = design.processor_ids().next().unwrap().into();
        inc.debug_corrupt_size_cache(pm, 1_000_000);
        // Enough moves that the counter-based sample must hit the
        // corrupted slot (2 components, audit every 2 moves).
        let procs: Vec<_> = design.processor_ids().collect();
        let n = design.graph().node_ids().next().unwrap();
        for i in 0..8u64 {
            inc.move_node(n, procs[(i % 2) as usize].into()).unwrap();
        }
        assert!(
            inc.cache_divergences() >= 1,
            "periodic audit never sampled the corrupted slot"
        );
    }

    #[test]
    fn zero_audit_cadence_rejected() {
        let (design, part) = DesignGenerator::new(8).build();
        let err = IncrementalEstimator::new(&design, part)
            .unwrap()
            .with_audit(0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn sync_to_replays_a_partition_diff() {
        let (design, part) = DesignGenerator::new(9)
            .behaviors(8)
            .variables(6)
            .processors(3)
            .memories(1)
            .buses(2)
            .build();
        // Build a target by random-walking a twin estimator.
        let mut twin = IncrementalEstimator::new(&design, part.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let procs: Vec<_> = design.processor_ids().collect();
        let buses: Vec<_> = design.bus_ids().collect();
        for _ in 0..20 {
            let n = NodeId::from_raw(rng.gen_range(0..design.graph().node_count()) as u32);
            twin.move_node(n, procs[rng.gen_range(0..procs.len())].into())
                .unwrap();
            let c = ChannelId::from_raw(rng.gen_range(0..design.graph().channel_count()) as u32);
            twin.move_channel(c, buses[rng.gen_range(0..buses.len())])
                .unwrap();
        }
        let target = twin.partition().clone();

        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        inc.sync_to(&target).unwrap();
        assert_eq!(inc.partition(), &target);
        // Caches agree with a from-scratch estimator over the target.
        let mut fresh = ExecTimeEstimator::new(&design, &target);
        for n in design.graph().node_ids() {
            assert_eq!(inc.exec_time(n).unwrap(), fresh.exec_time(n).unwrap());
        }
        for pm in design.pm_refs() {
            assert_eq!(inc.size(pm), size(&design, &target, pm).unwrap());
        }
        // Syncing to a foreign-shaped partition is a typed error.
        let (other, _) = DesignGenerator::new(10).behaviors(3).build();
        let foreign = Partition::new(&other);
        assert!(matches!(
            inc.sync_to(&foreign),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn from_compiled_matches_internal_compile() {
        let (design, part) = DesignGenerator::new(11)
            .behaviors(10)
            .variables(6)
            .processors(2)
            .memories(1)
            .buses(2)
            .build();
        let cd = CompiledDesign::compile(&design);
        let mut a = IncrementalEstimator::new(&design, part.clone()).unwrap();
        let mut b = IncrementalEstimator::from_compiled(&cd, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let target: PmRef = design.processor_ids().last().unwrap().into();
        a.move_node(n, target).unwrap();
        b.move_node(n, target).unwrap();
        for n in design.graph().node_ids() {
            assert_eq!(a.exec_time(n).unwrap(), b.exec_time(n).unwrap());
        }
        for pm in design.pm_refs() {
            assert_eq!(a.size(pm), b.size(pm));
        }
        for p in design.processor_ids() {
            assert_eq!(a.pins(p).unwrap(), b.pins(p).unwrap());
        }
    }

    #[test]
    fn into_partition_returns_working_state() {
        let (design, part) = DesignGenerator::new(5).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let n = design.graph().node_ids().next().unwrap();
        let target: PmRef = design.processor_ids().last().unwrap().into();
        inc.move_node(n, target).unwrap();
        let out = inc.into_partition();
        assert_eq!(out.node_component(n), Some(target));
    }

    #[test]
    fn repeated_lookups_record_missing_weight_once() {
        let (mut design, part) = DesignGenerator::new(7)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(1)
            .build();
        let victim = design.graph().behavior_ids().next().unwrap();
        design.graph_mut().node_mut(victim).ict_mut().clear();
        design.graph_mut().node_mut(victim).size_mut().clear();

        let config = EstimatorConfig::default()
            .with_default_ict(7)
            .with_default_size(9);
        let mut inc = IncrementalEstimator::with_config(&design, part, config).unwrap();
        let procs: Vec<_> = design.processor_ids().collect();
        for i in 0..8u64 {
            inc.move_node(victim, procs[(i % 2) as usize].into())
                .unwrap();
            inc.exec_time(victim).unwrap();
        }

        // Every re-evaluation consults the same incomplete lists; the
        // report must still hold one entry per distinct (node, list,
        // component) gap, not one per lookup.
        let warnings = inc.warnings();
        assert!(!warnings.is_empty(), "gap went unreported");
        for (i, w) in warnings.iter().enumerate() {
            assert!(
                !warnings[..i].contains(w),
                "duplicate warning recorded: {w}"
            );
        }
        let missing = warnings.iter().filter(|w| !w.is_cache_divergence()).count();
        assert!(
            missing <= procs.len() * 2,
            "{missing} MissingWeight entries for {} distinct gaps",
            procs.len() * 2
        );
    }

    /// Randomly perturbs annotations on a design, rebases a warm
    /// estimator after each perturbation, and checks that both the
    /// compiled view and the full report are bit-identical to a cold
    /// rebuild of the mutated design.
    fn rebase_walk_agrees(seed: u64, rounds: usize) {
        let (mut design, part) = DesignGenerator::new(seed)
            .behaviors(12)
            .variables(10)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut inc = IncrementalEstimator::from_owned_compiled(
            CompiledDesign::compile(&design),
            part.clone(),
            EstimatorConfig::default(),
        )
        .unwrap();
        // Warm every memo so staleness after the rebase would show up.
        for n in design.graph().node_ids() {
            let _ = inc.exec_time(n);
        }
        let classes: Vec<_> = design.class_ids().collect();
        for _ in 0..rounds {
            match rng.gen_range(0..3u32) {
                0 => {
                    let c = ChannelId::from_raw(
                        rng.gen_range(0..design.graph().channel_count()) as u32
                    );
                    let ch = design.graph_mut().channel_mut(c);
                    ch.set_bits(rng.gen_range(1..64));
                    ch.freq_mut().avg = f64::from(rng.gen_range(0..100u32));
                }
                1 => {
                    let n =
                        NodeId::from_raw(rng.gen_range(0..design.graph().node_count()) as u32);
                    let class = classes[rng.gen_range(0..classes.len())];
                    design
                        .graph_mut()
                        .node_mut(n)
                        .ict_mut()
                        .set(class, rng.gen_range(1..500));
                }
                _ => {
                    let n =
                        NodeId::from_raw(rng.gen_range(0..design.graph().node_count()) as u32);
                    let class = classes[rng.gen_range(0..classes.len())];
                    design
                        .graph_mut()
                        .node_mut(n)
                        .size_mut()
                        .set(class, rng.gen_range(1..500));
                }
            }
            inc.rebase_annotations(&design).unwrap();
            assert_eq!(
                *inc.compiled(),
                CompiledDesign::compile(&design),
                "patched view diverged from cold compile (seed {seed})"
            );
            let warm = crate::DesignReport::compute_from_incremental(&design, &mut inc).unwrap();
            let cold = crate::DesignReport::compute(&design, &part).unwrap();
            assert_eq!(warm, cold, "warm report diverged from cold (seed {seed})");
        }
    }

    #[test]
    fn rebase_annotations_matches_cold_rebuild_across_random_edits() {
        for seed in [3, 11, 42, 77] {
            rebase_walk_agrees(seed, 10);
        }
    }

    #[test]
    fn rebase_annotations_noop_keeps_memos_warm() {
        let (design, part) = DesignGenerator::new(9).build();
        let mut inc = IncrementalEstimator::from_owned_compiled(
            CompiledDesign::compile(&design),
            part.clone(),
            EstimatorConfig::default(),
        )
        .unwrap();
        let dirty = inc.rebase_annotations(&design).unwrap();
        assert!(dirty.is_empty(), "no-op rebase reported {dirty:?} dirty");
        let warm = crate::DesignReport::compute_from_incremental(&design, &mut inc).unwrap();
        let cold = crate::DesignReport::compute(&design, &part).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn rebase_annotations_rejects_topology_changes() {
        let (mut design, part) = DesignGenerator::new(5).build();
        let mut inc = IncrementalEstimator::from_owned_compiled(
            CompiledDesign::compile(&design),
            part,
            EstimatorConfig::default(),
        )
        .unwrap();
        design.graph_mut().add_node("late", slif_core::NodeKind::process());
        assert!(matches!(
            inc.rebase_annotations(&design),
            Err(CoreError::InvalidInput { .. })
        ));
    }
}
