//! Size estimation (the paper's Equations 4 and 5).
//!
//! ```text
//! Size(p) = Σ_{bv ∈ p.BV} GetBvSize(bv, p)                      (Eq. 4)
//! Size(m) = Σ_{v ∈ m.V} GetBvSize(v, m)                          (Eq. 5)
//! ```
//!
//! Software size (bytes on a standard processor), hardware size (gates on
//! a custom part), and memory size (words) are all the same computation
//! once per-class size weights have been preprocessed: a sum of lookups.
//!
//! The paper notes that plain summing overestimates datapath-intensive
//! hardware, because behaviors share functional units, and points to its
//! reference \[1\] for a sharing-aware technique. [`size_shared`] provides
//! that extension: weights that carry a datapath/control split are combined
//! as `control-sum + max-datapath + α·(rest of datapath)`, where the
//! sharing factor α ∈ \[0, 1\] models how much of the remaining datapath
//! still needs dedicated hardware (α = 1 degenerates to Equation 4).

use crate::config::EstimatorConfig;
use crate::warning::EstimateWarning;
use slif_core::{ClassId, CompiledDesign, CoreError, Design, NodeId, Partition, PmRef};

/// Verifies `pm` names a component the design actually has and that its
/// class exists, returning the class.
fn checked_class(design: &Design, pm: PmRef) -> Result<ClassId, CoreError> {
    let exists = match pm {
        PmRef::Processor(p) => p.index() < design.processor_count(),
        PmRef::Memory(m) => m.index() < design.memory_count(),
    };
    if !exists {
        return Err(CoreError::UnknownComponent { component: pm });
    }
    let class = design.component_class(pm);
    if class.index() >= design.class_count() {
        return Err(CoreError::DanglingReference {
            what: "class",
            index: class.index(),
        });
    }
    Ok(class)
}

/// Equation 4/5: the size of component `pm` under `partition` — the sum of
/// the size weights of the nodes mapped to it, looked up for the
/// component's class.
///
/// # Errors
///
/// [`CoreError::MissingWeight`] if a mapped node lacks a size weight for
/// the component's class, [`CoreError::UnknownComponent`] /
/// [`CoreError::DanglingReference`] if `pm` or an assigned node does not
/// exist in the design.
///
/// # Examples
///
/// ```
/// use slif_core::{ClassKind, Design, NodeKind, Partition};
/// use slif_estimate::size;
///
/// let mut d = Design::new("demo");
/// let pc = d.add_class("proc", ClassKind::StdProcessor);
/// let a = d.graph_mut().add_node("A", NodeKind::process());
/// let b = d.graph_mut().add_node("B", NodeKind::procedure());
/// d.graph_mut().node_mut(a).size_mut().set(pc, 700);
/// d.graph_mut().node_mut(b).size_mut().set(pc, 240);
/// let cpu = d.add_processor("cpu", pc);
/// let mut part = Partition::new(&d);
/// part.assign_node(a, cpu.into());
/// part.assign_node(b, cpu.into());
/// assert_eq!(size(&d, &part, cpu.into())?, 940);
/// # Ok::<(), slif_core::CoreError>(())
/// ```
pub fn size(design: &Design, partition: &Partition, pm: PmRef) -> Result<u64, CoreError> {
    size_with(
        design,
        partition,
        pm,
        &EstimatorConfig::default(),
        &mut Vec::new(),
    )
}

/// [`size`] with graceful degradation: with
/// [`default_size`](EstimatorConfig::default_size) configured, a missing
/// size weight is substituted and recorded in `warnings` instead of
/// aborting the sum.
///
/// # Errors
///
/// As for [`size`], except that [`CoreError::MissingWeight`] only occurs
/// without a configured default.
pub fn size_with(
    design: &Design,
    partition: &Partition,
    pm: PmRef,
    config: &EstimatorConfig,
    warnings: &mut Vec<EstimateWarning>,
) -> Result<u64, CoreError> {
    checked_class(design, pm)?;
    let mut total = 0u64;
    for n in partition.nodes_on(pm) {
        total = total.saturating_add(node_size_on_with(design, n, pm, config, warnings)?);
    }
    Ok(total)
}

/// The size contribution of a single node on component `pm` — the
/// `GetBvSize(bv, pm)` lookup. Exposed so incremental estimators can
/// update sums without recomputing them.
///
/// # Errors
///
/// [`CoreError::MissingWeight`] if the node lacks a size weight for the
/// component's class, [`CoreError::UnknownComponent`] /
/// [`CoreError::DanglingReference`] if `pm` or `node` does not exist.
pub fn node_size_on(design: &Design, node: NodeId, pm: PmRef) -> Result<u64, CoreError> {
    node_size_on_with(
        design,
        node,
        pm,
        &EstimatorConfig::default(),
        &mut Vec::new(),
    )
}

/// [`node_size_on`] with graceful degradation, as for [`size_with`].
///
/// # Errors
///
/// As for [`node_size_on`], except that [`CoreError::MissingWeight`] only
/// occurs without a configured default.
pub fn node_size_on_with(
    design: &Design,
    node: NodeId,
    pm: PmRef,
    config: &EstimatorConfig,
    warnings: &mut Vec<EstimateWarning>,
) -> Result<u64, CoreError> {
    if node.index() >= design.graph().node_count() {
        return Err(CoreError::DanglingReference {
            what: "node",
            index: node.index(),
        });
    }
    let class = checked_class(design, pm)?;
    match design.graph().node(node).size().get(class) {
        Some(w) => Ok(w),
        None => match config.default_size {
            Some(fallback) => {
                EstimateWarning::push_deduped(
                    warnings,
                    EstimateWarning::MissingWeight {
                        node,
                        list: "size",
                        component: pm,
                        substituted: fallback,
                    },
                );
                Ok(fallback)
            }
            None => Err(CoreError::MissingWeight {
                node,
                list: "size",
                component: pm,
            }),
        },
    }
}

/// [`checked_class`] against a compiled view.
pub(crate) fn checked_class_compiled(
    cd: &CompiledDesign,
    pm: PmRef,
) -> Result<ClassId, CoreError> {
    if !cd.pm_exists(pm) {
        return Err(CoreError::UnknownComponent { component: pm });
    }
    let class = cd.component_class(pm);
    if class.index() >= cd.class_count() {
        return Err(CoreError::DanglingReference {
            what: "class",
            index: class.index(),
        });
    }
    Ok(class)
}

/// [`node_size_on_with`] against a compiled view: one dense-table load
/// instead of a weight-list binary search.
pub(crate) fn node_size_on_compiled(
    cd: &CompiledDesign,
    node: NodeId,
    pm: PmRef,
    config: &EstimatorConfig,
    warnings: &mut Vec<EstimateWarning>,
) -> Result<u64, CoreError> {
    if node.index() >= cd.node_count() {
        return Err(CoreError::DanglingReference {
            what: "node",
            index: node.index(),
        });
    }
    let class = checked_class_compiled(cd, pm)?;
    match cd.size_weight(node, class) {
        Some(w) => Ok(w),
        None => match config.default_size {
            Some(fallback) => {
                EstimateWarning::push_deduped(
                    warnings,
                    EstimateWarning::MissingWeight {
                        node,
                        list: "size",
                        component: pm,
                        substituted: fallback,
                    },
                );
                Ok(fallback)
            }
            None => Err(CoreError::MissingWeight {
                node,
                list: "size",
                component: pm,
            }),
        },
    }
}

/// [`size_with`] against a compiled view.
pub(crate) fn size_with_compiled(
    cd: &CompiledDesign,
    partition: &Partition,
    pm: PmRef,
    config: &EstimatorConfig,
    warnings: &mut Vec<EstimateWarning>,
) -> Result<u64, CoreError> {
    checked_class_compiled(cd, pm)?;
    let mut total = 0u64;
    for n in partition.nodes_on(pm) {
        total = total.saturating_add(node_size_on_compiled(cd, n, pm, config, warnings)?);
    }
    Ok(total)
}

/// Sharing-aware hardware-size extension (the paper's reference \[1\]).
///
/// Weights with a datapath/control split are combined as
///
/// ```text
/// Σ control  +  max(datapath)  +  sharing_factor × (Σ datapath − max(datapath))
/// ```
///
/// Control logic is never shared (every behavior keeps its own controller
/// states), while functional units can be: the largest datapath must exist
/// in full, and each further behavior reuses `1 − α` of its datapath.
/// Weights without a split are treated as all-control (unshareable), so for
/// designs annotated without splits this function equals [`size`]. Sharing
/// needs the real split, so [`default_size`](EstimatorConfig::default_size)
/// does not apply here — missing weights stay hard errors.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] if `sharing_factor` is not within
/// `0.0..=1.0` (including NaN); [`CoreError::MissingWeight`] and the
/// dangling-reference errors as for [`size`].
pub fn size_shared(
    design: &Design,
    partition: &Partition,
    pm: PmRef,
    sharing_factor: f64,
) -> Result<u64, CoreError> {
    if !(0.0..=1.0).contains(&sharing_factor) {
        return Err(CoreError::InvalidInput {
            message: format!("sharing factor {sharing_factor} is outside [0, 1]"),
        });
    }
    let class = checked_class(design, pm)?;
    let mut control_sum = 0u64;
    let mut dp_sum = 0u64;
    let mut dp_max = 0u64;
    for n in partition.nodes_on(pm) {
        if n.index() >= design.graph().node_count() {
            return Err(CoreError::DanglingReference {
                what: "node",
                index: n.index(),
            });
        }
        let entry = design
            .graph()
            .node(n)
            .size()
            .entry(class)
            .ok_or(CoreError::MissingWeight {
                node: n,
                list: "size",
                component: pm,
            })?;
        control_sum += entry.control();
        let dp = entry.datapath.unwrap_or(0);
        dp_sum += dp;
        dp_max = dp_max.max(dp);
    }
    let shared_dp = dp_max as f64 + sharing_factor * (dp_sum - dp_max) as f64;
    Ok(control_sum + shared_dp.round() as u64)
}

/// Checks a component's estimated size against its constraint, returning
/// the overshoot (0 when within budget, or when unconstrained).
///
/// # Errors
///
/// Propagates [`size`] errors.
pub fn size_violation(design: &Design, partition: &Partition, pm: PmRef) -> Result<u64, CoreError> {
    checked_class(design, pm)?;
    let actual = size(design, partition, pm)?;
    let constraint = match pm {
        PmRef::Processor(p) => design.processor(p).size_constraint(),
        PmRef::Memory(m) => design.memory(m).size_constraint(),
    };
    Ok(match constraint {
        Some(max) => actual.saturating_sub(max),
        None => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{ClassKind, NodeKind, WeightEntry};

    fn fixture() -> (Design, Partition, PmRef, PmRef) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let mc = d.add_class("mem", ClassKind::Memory);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::array(64, 8));
        // A: 700 bytes / 5000 gates (3000 dp). B: 240 bytes / 2000 gates (1500 dp).
        d.graph_mut().node_mut(a).size_mut().set(pc, 700);
        d.graph_mut()
            .node_mut(a)
            .size_mut()
            .insert(WeightEntry::with_datapath(ac, 5000, 3000));
        d.graph_mut().node_mut(b).size_mut().set(pc, 240);
        d.graph_mut()
            .node_mut(b)
            .size_mut()
            .insert(WeightEntry::with_datapath(ac, 2000, 1500));
        // v: 64 words in memory, 64 bytes on proc.
        d.graph_mut().node_mut(v).size_mut().set(mc, 64);
        d.graph_mut().node_mut(v).size_mut().set(pc, 64);
        let cpu = d.add_processor("cpu", pc);
        let asic = d.add_processor("asic", ac);
        let ram = d.add_memory("ram", mc);
        let _ = asic;
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, cpu.into());
        part.assign_node(v, ram.into());
        (d, part, PmRef::Processor(cpu), PmRef::Memory(ram))
    }

    #[test]
    fn equation4_software_size_sums_bytes() {
        let (d, part, cpu, _) = fixture();
        assert_eq!(size(&d, &part, cpu).unwrap(), 940);
    }

    #[test]
    fn equation5_memory_size_sums_words() {
        let (d, part, _, ram) = fixture();
        assert_eq!(size(&d, &part, ram).unwrap(), 64);
    }

    #[test]
    fn hardware_size_plain_sum() {
        let (d, mut part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        part.assign_node(a, asic);
        part.assign_node(b, asic);
        assert_eq!(size(&d, &part, asic).unwrap(), 7000);
    }

    #[test]
    fn sharing_aware_size_discounts_datapath() {
        let (d, mut part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        part.assign_node(a, asic);
        part.assign_node(b, asic);
        // control = 2000 + 500 = 2500; dp: sum 4500, max 3000.
        // α=0: 2500 + 3000 = 5500 (perfect sharing).
        assert_eq!(size_shared(&d, &part, asic, 0.0).unwrap(), 5500);
        // α=1: 2500 + 3000 + 1500 = 7000 == plain sum.
        assert_eq!(
            size_shared(&d, &part, asic, 1.0).unwrap(),
            size(&d, &part, asic).unwrap()
        );
        // α=0.5: 2500 + 3000 + 750 = 6250.
        assert_eq!(size_shared(&d, &part, asic, 0.5).unwrap(), 6250);
    }

    #[test]
    fn sharing_without_splits_equals_plain_sum() {
        let (d, part, cpu, _) = fixture();
        assert_eq!(
            size_shared(&d, &part, cpu, 0.0).unwrap(),
            size(&d, &part, cpu).unwrap()
        );
    }

    #[test]
    fn out_of_range_sharing_factor_is_an_error() {
        let (d, part, cpu, _) = fixture();
        for bad in [1.5, -0.1, f64::NAN] {
            let err = size_shared(&d, &part, cpu, bad).unwrap_err();
            assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
            assert!(err.to_string().contains("sharing factor"), "{err}");
        }
    }

    #[test]
    fn missing_size_degrades_gracefully_with_default() {
        let (mut d, part, cpu, _) = fixture();
        let pc = d.class_by_name("proc").unwrap();
        let a = d.graph().node_by_name("A").unwrap();
        d.graph_mut().node_mut(a).size_mut().remove(pc);

        assert!(matches!(
            size(&d, &part, cpu),
            Err(CoreError::MissingWeight { list: "size", .. })
        ));

        let cfg = EstimatorConfig::default().with_default_size(100);
        let mut warnings = Vec::new();
        // A substituted at 100, B real at 240.
        assert_eq!(size_with(&d, &part, cpu, &cfg, &mut warnings).unwrap(), 340);
        assert_eq!(warnings.len(), 1);
        assert_eq!(
            (
                warnings[0].node(),
                warnings[0].list(),
                warnings[0].substituted()
            ),
            (Some(a), Some("size"), Some(100))
        );
    }

    #[test]
    fn dangling_component_is_reported() {
        let (d, part, _, _) = fixture();
        let ghost = PmRef::Processor(slif_core::ProcessorId::from_raw(42));
        assert!(matches!(
            size(&d, &part, ghost),
            Err(CoreError::UnknownComponent { .. })
        ));
        assert!(matches!(
            size_violation(&d, &part, ghost),
            Err(CoreError::UnknownComponent { .. })
        ));
        assert!(matches!(
            node_size_on(&d, NodeId::from_raw(0), ghost),
            Err(CoreError::UnknownComponent { .. })
        ));
        assert!(matches!(
            node_size_on(&d, NodeId::from_raw(999), d.processor_by_name("cpu").unwrap().into()),
            Err(CoreError::DanglingReference { what: "node", .. })
        ));
    }

    #[test]
    fn missing_weight_is_reported() {
        let (mut d, mut part, cpu, _) = fixture();
        let orphan = d.graph_mut().add_node("orphan", NodeKind::procedure());
        // Partition shaped before the node existed: rebuild and map orphan.
        let mut p2 = Partition::new(&d);
        for n in d.graph().node_ids() {
            if let Some(c) = if n.index() < part.node_slots() {
                part.node_component(n)
            } else {
                None
            } {
                p2.assign_node(n, c);
            }
        }
        p2.assign_node(orphan, cpu);
        part = p2;
        assert!(matches!(
            size(&d, &part, cpu),
            Err(CoreError::MissingWeight { .. })
        ));
    }

    #[test]
    fn node_size_on_is_the_lookup() {
        let (d, _, cpu, _) = fixture();
        let a = d.graph().node_by_name("A").unwrap();
        assert_eq!(node_size_on(&d, a, cpu).unwrap(), 700);
    }

    #[test]
    fn size_violation_measures_overshoot() {
        let (mut d, _, _, _) = fixture();
        let pc = d.class_by_name("proc").unwrap();
        let tight = d.add_processor_instance(
            slif_core::Processor::new("tight", pc).with_size_constraint(900),
        );
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        let mut part = Partition::new(&d);
        part.assign_node(a, tight.into());
        part.assign_node(b, tight.into());
        assert_eq!(size_violation(&d, &part, tight.into()).unwrap(), 40);
        // Unconstrained components never violate.
        let cpu = d.processor_by_name("cpu").unwrap();
        let mut part2 = Partition::new(&d);
        part2.assign_node(a, cpu.into());
        part2.assign_node(b, cpu.into());
        assert_eq!(size_violation(&d, &part2, cpu.into()).unwrap(), 0);
    }

    #[test]
    fn empty_component_has_zero_size() {
        let (d, part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        assert_eq!(size(&d, &part, asic).unwrap(), 0);
    }
}
