//! Size estimation (the paper's Equations 4 and 5).
//!
//! ```text
//! Size(p) = Σ_{bv ∈ p.BV} GetBvSize(bv, p)                      (Eq. 4)
//! Size(m) = Σ_{v ∈ m.V} GetBvSize(v, m)                          (Eq. 5)
//! ```
//!
//! Software size (bytes on a standard processor), hardware size (gates on
//! a custom part), and memory size (words) are all the same computation
//! once per-class size weights have been preprocessed: a sum of lookups.
//!
//! The paper notes that plain summing overestimates datapath-intensive
//! hardware, because behaviors share functional units, and points to its
//! reference \[1\] for a sharing-aware technique. [`size_shared`] provides
//! that extension: weights that carry a datapath/control split are combined
//! as `control-sum + max-datapath + α·(rest of datapath)`, where the
//! sharing factor α ∈ \[0, 1\] models how much of the remaining datapath
//! still needs dedicated hardware (α = 1 degenerates to Equation 4).

use slif_core::{CoreError, Design, NodeId, Partition, PmRef};

/// Equation 4/5: the size of component `pm` under `partition` — the sum of
/// the size weights of the nodes mapped to it, looked up for the
/// component's class.
///
/// # Errors
///
/// [`CoreError::MissingWeight`] if a mapped node lacks a size weight for
/// the component's class.
///
/// # Examples
///
/// ```
/// use slif_core::{ClassKind, Design, NodeKind, Partition};
/// use slif_estimate::size;
///
/// let mut d = Design::new("demo");
/// let pc = d.add_class("proc", ClassKind::StdProcessor);
/// let a = d.graph_mut().add_node("A", NodeKind::process());
/// let b = d.graph_mut().add_node("B", NodeKind::procedure());
/// d.graph_mut().node_mut(a).size_mut().set(pc, 700);
/// d.graph_mut().node_mut(b).size_mut().set(pc, 240);
/// let cpu = d.add_processor("cpu", pc);
/// let mut part = Partition::new(&d);
/// part.assign_node(a, cpu.into());
/// part.assign_node(b, cpu.into());
/// assert_eq!(size(&d, &part, cpu.into())?, 940);
/// # Ok::<(), slif_core::CoreError>(())
/// ```
pub fn size(design: &Design, partition: &Partition, pm: PmRef) -> Result<u64, CoreError> {
    let class = design.component_class(pm);
    let mut total = 0u64;
    for n in partition.nodes_on(pm) {
        let w = design
            .graph()
            .node(n)
            .size()
            .get(class)
            .ok_or(CoreError::MissingWeight {
                node: n,
                list: "size",
                component: pm,
            })?;
        total += w;
    }
    Ok(total)
}

/// The size contribution of a single node on component `pm` — the
/// `GetBvSize(bv, pm)` lookup. Exposed so incremental estimators can
/// update sums without recomputing them.
///
/// # Errors
///
/// [`CoreError::MissingWeight`] if the node lacks a size weight for the
/// component's class.
pub fn node_size_on(design: &Design, node: NodeId, pm: PmRef) -> Result<u64, CoreError> {
    let class = design.component_class(pm);
    design
        .graph()
        .node(node)
        .size()
        .get(class)
        .ok_or(CoreError::MissingWeight {
            node,
            list: "size",
            component: pm,
        })
}

/// Sharing-aware hardware-size extension (the paper's reference \[1\]).
///
/// Weights with a datapath/control split are combined as
///
/// ```text
/// Σ control  +  max(datapath)  +  sharing_factor × (Σ datapath − max(datapath))
/// ```
///
/// Control logic is never shared (every behavior keeps its own controller
/// states), while functional units can be: the largest datapath must exist
/// in full, and each further behavior reuses `1 − α` of its datapath.
/// Weights without a split are treated as all-control (unshareable), so for
/// designs annotated without splits this function equals [`size`].
///
/// # Panics
///
/// Panics if `sharing_factor` is not within `0.0..=1.0`.
///
/// # Errors
///
/// [`CoreError::MissingWeight`] as for [`size`].
pub fn size_shared(
    design: &Design,
    partition: &Partition,
    pm: PmRef,
    sharing_factor: f64,
) -> Result<u64, CoreError> {
    assert!(
        (0.0..=1.0).contains(&sharing_factor),
        "sharing factor must be in [0, 1]"
    );
    let class = design.component_class(pm);
    let mut control_sum = 0u64;
    let mut dp_sum = 0u64;
    let mut dp_max = 0u64;
    for n in partition.nodes_on(pm) {
        let entry = design
            .graph()
            .node(n)
            .size()
            .entry(class)
            .ok_or(CoreError::MissingWeight {
                node: n,
                list: "size",
                component: pm,
            })?;
        control_sum += entry.control();
        let dp = entry.datapath.unwrap_or(0);
        dp_sum += dp;
        dp_max = dp_max.max(dp);
    }
    let shared_dp = dp_max as f64 + sharing_factor * (dp_sum - dp_max) as f64;
    Ok(control_sum + shared_dp.round() as u64)
}

/// Checks a component's estimated size against its constraint, returning
/// the overshoot (0 when within budget, or when unconstrained).
///
/// # Errors
///
/// Propagates [`size`] errors.
pub fn size_violation(design: &Design, partition: &Partition, pm: PmRef) -> Result<u64, CoreError> {
    let actual = size(design, partition, pm)?;
    let constraint = match pm {
        PmRef::Processor(p) => design.processor(p).size_constraint(),
        PmRef::Memory(m) => design.memory(m).size_constraint(),
    };
    Ok(match constraint {
        Some(max) => actual.saturating_sub(max),
        None => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::{ClassKind, NodeKind, WeightEntry};

    fn fixture() -> (Design, Partition, PmRef, PmRef) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let mc = d.add_class("mem", ClassKind::Memory);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::array(64, 8));
        // A: 700 bytes / 5000 gates (3000 dp). B: 240 bytes / 2000 gates (1500 dp).
        d.graph_mut().node_mut(a).size_mut().set(pc, 700);
        d.graph_mut()
            .node_mut(a)
            .size_mut()
            .insert(WeightEntry::with_datapath(ac, 5000, 3000));
        d.graph_mut().node_mut(b).size_mut().set(pc, 240);
        d.graph_mut()
            .node_mut(b)
            .size_mut()
            .insert(WeightEntry::with_datapath(ac, 2000, 1500));
        // v: 64 words in memory, 64 bytes on proc.
        d.graph_mut().node_mut(v).size_mut().set(mc, 64);
        d.graph_mut().node_mut(v).size_mut().set(pc, 64);
        let cpu = d.add_processor("cpu", pc);
        let asic = d.add_processor("asic", ac);
        let ram = d.add_memory("ram", mc);
        let _ = asic;
        let mut part = Partition::new(&d);
        part.assign_node(a, cpu.into());
        part.assign_node(b, cpu.into());
        part.assign_node(v, ram.into());
        (d, part, PmRef::Processor(cpu), PmRef::Memory(ram))
    }

    #[test]
    fn equation4_software_size_sums_bytes() {
        let (d, part, cpu, _) = fixture();
        assert_eq!(size(&d, &part, cpu).unwrap(), 940);
    }

    #[test]
    fn equation5_memory_size_sums_words() {
        let (d, part, _, ram) = fixture();
        assert_eq!(size(&d, &part, ram).unwrap(), 64);
    }

    #[test]
    fn hardware_size_plain_sum() {
        let (d, mut part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        part.assign_node(a, asic);
        part.assign_node(b, asic);
        assert_eq!(size(&d, &part, asic).unwrap(), 7000);
    }

    #[test]
    fn sharing_aware_size_discounts_datapath() {
        let (d, mut part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        part.assign_node(a, asic);
        part.assign_node(b, asic);
        // control = 2000 + 500 = 2500; dp: sum 4500, max 3000.
        // α=0: 2500 + 3000 = 5500 (perfect sharing).
        assert_eq!(size_shared(&d, &part, asic, 0.0).unwrap(), 5500);
        // α=1: 2500 + 3000 + 1500 = 7000 == plain sum.
        assert_eq!(
            size_shared(&d, &part, asic, 1.0).unwrap(),
            size(&d, &part, asic).unwrap()
        );
        // α=0.5: 2500 + 3000 + 750 = 6250.
        assert_eq!(size_shared(&d, &part, asic, 0.5).unwrap(), 6250);
    }

    #[test]
    fn sharing_without_splits_equals_plain_sum() {
        let (d, part, cpu, _) = fixture();
        assert_eq!(
            size_shared(&d, &part, cpu, 0.0).unwrap(),
            size(&d, &part, cpu).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "sharing factor")]
    fn out_of_range_sharing_factor_panics() {
        let (d, part, cpu, _) = fixture();
        let _ = size_shared(&d, &part, cpu, 1.5);
    }

    #[test]
    fn missing_weight_is_reported() {
        let (mut d, mut part, cpu, _) = fixture();
        let orphan = d.graph_mut().add_node("orphan", NodeKind::procedure());
        // Partition shaped before the node existed: rebuild and map orphan.
        let mut p2 = Partition::new(&d);
        for n in d.graph().node_ids() {
            if let Some(c) = if n.index() < part.node_slots() {
                part.node_component(n)
            } else {
                None
            } {
                p2.assign_node(n, c);
            }
        }
        p2.assign_node(orphan, cpu);
        part = p2;
        assert!(matches!(
            size(&d, &part, cpu),
            Err(CoreError::MissingWeight { .. })
        ));
    }

    #[test]
    fn node_size_on_is_the_lookup() {
        let (d, _, cpu, _) = fixture();
        let a = d.graph().node_by_name("A").unwrap();
        assert_eq!(node_size_on(&d, a, cpu).unwrap(), 700);
    }

    #[test]
    fn size_violation_measures_overshoot() {
        let (mut d, _, _, _) = fixture();
        let pc = d.class_by_name("proc").unwrap();
        let tight = d.add_processor_instance(
            slif_core::Processor::new("tight", pc).with_size_constraint(900),
        );
        let a = d.graph().node_by_name("A").unwrap();
        let b = d.graph().node_by_name("B").unwrap();
        let mut part = Partition::new(&d);
        part.assign_node(a, tight.into());
        part.assign_node(b, tight.into());
        assert_eq!(size_violation(&d, &part, tight.into()).unwrap(), 40);
        // Unconstrained components never violate.
        let cpu = d.processor_by_name("cpu").unwrap();
        let mut part2 = Partition::new(&d);
        part2.assign_node(a, cpu.into());
        part2.assign_node(b, cpu.into());
        assert_eq!(size_violation(&d, &part2, cpu.into()).unwrap(), 0);
    }

    #[test]
    fn empty_component_has_zero_size() {
        let (d, part, _, _) = fixture();
        let asic = PmRef::Processor(d.processor_by_name("asic").unwrap());
        assert_eq!(size(&d, &part, asic).unwrap(), 0);
    }
}
