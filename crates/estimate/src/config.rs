//! Estimator configuration.

use serde::{Deserialize, Serialize};
use slif_core::FreqMode;

/// How message-pass channels contribute to the sender's execution time.
///
/// The paper's Equation 1 adds `Exectime(c.dst)` for every accessed
/// object. For calls and variable accesses that is clearly right; for a
/// message to another *process* the receiver executes concurrently, and
/// including its full execution time both overcounts and makes mutually
/// messaging processes look recursive. The default therefore charges only
/// the transfer time for messages; [`MessagePolicy::IncludeReceiver`]
/// restores the literal equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MessagePolicy {
    /// Messages cost their bus transfer time only (default).
    #[default]
    TransferOnly,
    /// Messages additionally include the receiver's execution time — the
    /// literal reading of Equation 1.
    IncludeReceiver,
}

/// Configuration for the execution-time estimator (and the estimators
/// layered on it).
///
/// # Examples
///
/// ```
/// use slif_core::FreqMode;
/// use slif_estimate::EstimatorConfig;
///
/// let worst_case = EstimatorConfig::default()
///     .with_mode(FreqMode::Max)
///     .with_concurrency_aware(true);
/// assert_eq!(worst_case.mode, FreqMode::Max);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub struct EstimatorConfig {
    /// Which access count to use: average (default), min, or max.
    pub mode: FreqMode,
    /// How message channels are charged.
    pub message_policy: MessagePolicy,
    /// When `true`, same-tag channels overlap (group max instead of sum);
    /// when `false` (default), the paper's simplest method — all channel
    /// accesses occur sequentially — is used.
    pub concurrency_aware: bool,
    /// Fallback ict weight for nodes lacking an entry for their mapped
    /// class. `None` (default) keeps missing weights a hard
    /// [`MissingWeight`](slif_core::CoreError::MissingWeight) error;
    /// `Some(v)` substitutes `v` and records an
    /// [`EstimateWarning`](crate::EstimateWarning) instead.
    pub default_ict: Option<u64>,
    /// Fallback size weight, with the same semantics as
    /// [`default_ict`](Self::default_ict).
    pub default_size: Option<u64>,
}

impl EstimatorConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the frequency mode.
    pub fn with_mode(mut self, mode: FreqMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the message policy.
    pub fn with_message_policy(mut self, policy: MessagePolicy) -> Self {
        self.message_policy = policy;
        self
    }

    /// Enables or disables concurrency-aware communication time.
    pub fn with_concurrency_aware(mut self, aware: bool) -> Self {
        self.concurrency_aware = aware;
        self
    }

    /// Sets the fallback ict weight for graceful degradation on missing
    /// annotations.
    pub fn with_default_ict(mut self, ict: u64) -> Self {
        self.default_ict = Some(ict);
        self
    }

    /// Sets the fallback size weight for graceful degradation on missing
    /// annotations.
    pub fn with_default_size(mut self, size: u64) -> Self {
        self.default_size = Some(size);
        self
    }

    /// The degraded preset a serving layer falls back to when its circuit
    /// breaker is open: like `self`, but every missing annotation is
    /// substituted (ict 1, size 1) and warned about instead of failing the
    /// job. Results are flagged approximate by their warnings; the point
    /// is that a burst of annotation-poor inputs cannot keep the whole
    /// service erroring.
    #[must_use]
    pub fn degraded(mut self) -> Self {
        self.default_ict = Some(self.default_ict.unwrap_or(1));
        self.default_size = Some(self.default_size.unwrap_or(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_simplest_method() {
        let c = EstimatorConfig::default();
        assert_eq!(c.mode, FreqMode::Average);
        assert_eq!(c.message_policy, MessagePolicy::TransferOnly);
        assert!(!c.concurrency_aware);
        assert_eq!(c.default_ict, None);
        assert_eq!(c.default_size, None);
    }

    #[test]
    fn default_weight_builders() {
        let c = EstimatorConfig::new().with_default_ict(50).with_default_size(200);
        assert_eq!(c.default_ict, Some(50));
        assert_eq!(c.default_size, Some(200));
    }

    #[test]
    fn degraded_fills_missing_fallbacks_only() {
        let d = EstimatorConfig::new().degraded();
        assert_eq!(d.default_ict, Some(1));
        assert_eq!(d.default_size, Some(1));
        // An explicit fallback survives degradation.
        let d = EstimatorConfig::new().with_default_ict(50).degraded();
        assert_eq!(d.default_ict, Some(50));
        assert_eq!(d.default_size, Some(1));
        // Other knobs are untouched.
        let d = EstimatorConfig::new().with_mode(FreqMode::Max).degraded();
        assert_eq!(d.mode, FreqMode::Max);
    }

    #[test]
    fn builder_chains() {
        let c = EstimatorConfig::new()
            .with_mode(FreqMode::Min)
            .with_message_policy(MessagePolicy::IncludeReceiver)
            .with_concurrency_aware(true);
        assert_eq!(c.mode, FreqMode::Min);
        assert_eq!(c.message_policy, MessagePolicy::IncludeReceiver);
        assert!(c.concurrency_aware);
    }
}
