//! Ablation: preprocessed weight-sum estimation vs per-query re-synthesis.
//!
//! The abstract's headline: SLIF "enables estimations of design metrics
//! in an order of magnitude less time and memory". Section 5 makes the
//! mechanism concrete — with SLIF "we can synthesize each node
//! beforehand, so size estimation only requires adding the
//! previously-determined node sizes"; with a fine-grained format one must
//! "perform a rough synthesis on that entire set of nodes" per query,
//! which "is not feasible when we use algorithms that examine thousands
//! of possibilities".
//!
//! This bench estimates the ASIC size of growing behavior sets two ways:
//! the SLIF way (sum the preprocessed `size_list` weights) and the naive
//! way (re-run pseudo-synthesis on every behavior in the set). Expected
//! shape: the lookup stays in nanoseconds while re-synthesis costs
//! microseconds-to-milliseconds and grows with the set — several orders
//! of magnitude apart.

use criterion::{criterion_group, criterion_main, Criterion};
use slif_cdfg::{lower_spec, Cdfg};
use slif_core::PmRef;
use slif_estimate::size;
use slif_frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif_speclang::corpus;
use slif_techlib::{synthesize_behavior, AsicModel, TechnologyLibrary};
use std::hint::black_box;

fn bench_preprocessing(c: &mut Criterion) {
    slif_bench::banner("Ablation: weight-sum lookup vs re-synthesis per size query");
    let entry = corpus::by_name("ether").expect("ether exists");
    let rs = entry.load().expect("loads");
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let cdfgs: Vec<Cdfg> = lower_spec(&rs);
    let model = AsicModel::gate_array();

    let behaviors: Vec<_> = design.graph().behavior_ids().collect();
    let mut group = c.benchmark_group("ablation_preprocessing");
    for &set_size in &[2usize, 5, 10, behaviors.len()] {
        let set = &behaviors[..set_size.min(behaviors.len())];
        // Map the set onto the ASIC.
        let mut part = all_software_partition(&design, arch);
        for &n in set {
            part.assign_node(n, PmRef::Processor(arch.asic));
        }
        let asic = PmRef::Processor(arch.asic);

        group.bench_function(format!("slif_lookup_sum/{set_size}"), |b| {
            b.iter(|| black_box(size(&design, &part, asic).expect("weights present")))
        });
        // The naive path: re-synthesize every behavior of the set on each
        // query (what an operation-granularity format forces).
        let set_cdfgs: Vec<&Cdfg> = set
            .iter()
            .map(|&n| {
                cdfgs
                    .iter()
                    .find(|g| g.name() == design.graph().node(n).name())
                    .expect("behavior has a cdfg")
            })
            .collect();
        group.bench_function(format!("resynthesize/{set_size}"), |b| {
            b.iter(|| {
                let total: u64 = set_cdfgs
                    .iter()
                    .map(|g| synthesize_behavior(g, &model).weights.size)
                    .sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
