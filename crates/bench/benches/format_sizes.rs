//! Section 5's format-size comparison, made operational.
//!
//! The paper reports node/edge counts (SLIF 35/56 vs ADD 450+/400+ vs
//! CDFG 1100+/900+ on fuzzy) and derives the work an `n²` partitioning
//! algorithm would do on each (1 225 / 202 500 / 1 210 000 computations).
//! This bench prints the measured counts and then actually *runs* an
//! n²-shaped pass — a pairwise scan over each format's nodes — so the
//! blow-up is wall-clock, not arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use slif_bench::built_entry;
use slif_cdfg::lower_spec;
use slif_formats::{build_spec_add, FormatComparison};
use slif_speclang::corpus;
use std::hint::black_box;

/// The n²-shaped workload: visit every ordered node pair.
fn n_squared_pass(n: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        for j in 0..n {
            acc = acc.wrapping_add((i ^ j) as u64);
        }
    }
    acc
}

fn bench_formats(c: &mut Criterion) {
    slif_bench::banner("Section 5: format sizes and n^2 algorithm work");
    let entry = corpus::by_name("fuzzy").expect("fuzzy exists");
    let rs = entry.load().expect("loads");
    let (design, _) = built_entry(&entry);
    let cmp = FormatComparison::measure(&rs, design.graph().channel_count());
    println!("{cmp}");

    let slif_nodes = cmp.slif().nodes;
    let add = build_spec_add(&rs);
    let cdfgs = lower_spec(&rs);
    let cdfg_nodes: usize = cdfgs.iter().map(|g| g.node_count()).sum();

    let mut group = c.benchmark_group("format_sizes/n_squared_pass");
    group.bench_function("slif_ag", |b| {
        b.iter(|| black_box(n_squared_pass(black_box(slif_nodes))))
    });
    group.bench_function("add", |b| {
        b.iter(|| black_box(n_squared_pass(black_box(add.node_count()))))
    });
    group.bench_function("cdfg", |b| {
        b.iter(|| black_box(n_squared_pass(black_box(cdfg_nodes))))
    });
    group.finish();

    // Building the fine-grained formats is itself part of their cost.
    let mut group = c.benchmark_group("format_sizes/build");
    group.bench_function("add", |b| b.iter(|| black_box(build_spec_add(&rs))));
    group.bench_function("cdfg", |b| b.iter(|| black_box(lower_spec(&rs))));
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
