//! Ablations over the estimator design choices DESIGN.md calls out.
//!
//! * sequential-access assumption (the paper's Equation 1 default) vs the
//!   concurrency-aware extension — what the tag machinery costs,
//! * plain weight-sum hardware size (Equation 4) vs the sharing-aware
//!   extension (the paper's reference \[1\]),
//! * message transfer-only policy vs the literal Equation 1
//!   (receiver-inclusive) reading — both estimator cost and value impact
//!   are printed.

use criterion::{criterion_group, criterion_main, Criterion};
use slif_bench::built_entry;
use slif_core::PmRef;
use slif_estimate::{size, size_shared, EstimatorConfig, ExecTimeEstimator, MessagePolicy};
use slif_speclang::corpus;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    slif_bench::banner("Ablations: estimator variants (cost and value impact)");
    let entry = corpus::by_name("fuzzy").expect("fuzzy exists");
    let (mut design, part) = built_entry(&entry);
    let asic = design.processor_by_name("asic0").expect("allocated");
    // Put all behaviors on the ASIC so hardware sizing has something to do.
    let mut hw_part = part.clone();
    for n in design.graph().node_ids() {
        if design.graph().node(n).kind().is_behavior() {
            hw_part.assign_node(n, PmRef::Processor(asic));
        }
    }
    let main = design.graph().node_by_name("FuzzyMain").expect("exists");

    // Print the value-level differences once.
    let t_seq = ExecTimeEstimator::new(&design, &part)
        .exec_time(main)
        .unwrap();
    let t_conc = ExecTimeEstimator::with_config(
        &design,
        &part,
        EstimatorConfig::default().with_concurrency_aware(true),
    )
    .exec_time(main)
    .unwrap();
    let s_plain = size(&design, &hw_part, PmRef::Processor(asic)).unwrap();
    let s_shared = size_shared(&design, &hw_part, PmRef::Processor(asic), 0.3).unwrap();
    println!("FuzzyMain period: sequential {t_seq:.0} ns, concurrency-aware {t_conc:.0} ns");
    println!("ASIC size: plain sum {s_plain} gates, sharing-aware (α=0.3) {s_shared} gates");

    let mut group = c.benchmark_group("ablation_estimators");
    group.bench_function("exec_time/sequential", |b| {
        b.iter(|| {
            black_box(
                ExecTimeEstimator::new(&design, &part)
                    .exec_time(main)
                    .unwrap(),
            )
        })
    });
    group.bench_function("exec_time/concurrency_aware", |b| {
        b.iter(|| {
            black_box(
                ExecTimeEstimator::with_config(
                    &design,
                    &part,
                    EstimatorConfig::default().with_concurrency_aware(true),
                )
                .exec_time(main)
                .unwrap(),
            )
        })
    });
    group.bench_function("exec_time/messages_include_receiver", |b| {
        b.iter(|| {
            black_box(
                ExecTimeEstimator::with_config(
                    &design,
                    &part,
                    EstimatorConfig::default().with_message_policy(MessagePolicy::IncludeReceiver),
                )
                .exec_time(main)
                .unwrap(),
            )
        })
    });
    group.bench_function("hw_size/plain_sum", |b| {
        b.iter(|| black_box(size(&design, &hw_part, PmRef::Processor(asic)).unwrap()))
    });
    group.bench_function("hw_size/sharing_aware", |b| {
        b.iter(|| black_box(size_shared(&design, &hw_part, PmRef::Processor(asic), 0.3).unwrap()))
    });
    group.finish();
    let _ = &mut design;
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
