//! Figure 4, T-slif column: time to build the SLIF representation.
//!
//! The paper reports 0.34–10.40 s on a Sparc 2 for the four examples and
//! argues that is acceptable because "the SLIF is built only once, when a
//! system-design tool is first started". This bench measures the whole
//! step — parse, resolve, CDFG lowering, profiling, per-class
//! pre-compilation and pre-synthesis, channel annotation — per example.
//! Expected shape: milliseconds on modern hardware, ordered by system
//! size (ether largest).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slif_frontend::build_design;
use slif_speclang::corpus;
use slif_techlib::TechnologyLibrary;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    slif_bench::banner("Figure 4 / T-slif: build SLIF from the specification");
    let lib = TechnologyLibrary::proc_asic();
    let mut group = c.benchmark_group("fig4_build");
    for entry in corpus::all() {
        group.bench_function(entry.name, |b| {
            b.iter_batched(
                || entry.load().expect("corpus loads"),
                |rs| black_box(build_design(&rs, &lib)),
                BatchSize::SmallInput,
            )
        });
        // Parsing+resolution alone, to separate front-end from annotation.
        group.bench_function(format!("{}_parse_resolve", entry.name), |b| {
            b.iter(|| black_box(entry.load().expect("corpus loads")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
