//! Figure 4, T-est column: time to obtain size, pin, bitrate and
//! performance estimates for a partition.
//!
//! The paper reports less than a hundredth of a second per example —
//! below its timer's resolution — and argues this "enables rapid feedback
//! during interactive design, and permits the use of algorithms that
//! explore thousands of possible designs". Expected shape: microseconds
//! here, two or more orders of magnitude below the corresponding build
//! time.

use criterion::{criterion_group, criterion_main, Criterion};
use slif_bench::built_entry;
use slif_estimate::DesignReport;
use slif_speclang::corpus;
use std::hint::black_box;

fn bench_estimate(c: &mut Criterion) {
    slif_bench::banner("Figure 4 / T-est: full estimate suite (Equations 1-6)");
    let mut group = c.benchmark_group("fig4_estimate");
    for entry in corpus::all() {
        let (design, part) = built_entry(&entry);
        group.bench_function(entry.name, |b| {
            b.iter(|| black_box(DesignReport::compute(&design, &part).expect("estimates")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
