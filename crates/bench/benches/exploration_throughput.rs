//! Partition-exploration throughput: the "thousands of possible designs"
//! claim.
//!
//! The paper's estimation speed exists so that partitioning algorithms
//! can "explore thousands of possible designs" interactively (Section 5).
//! This bench measures candidate partitions evaluated per second — one
//! evaluation = move one node + recompute the full cost function — with
//! the incremental estimator, with a from-scratch estimator per candidate
//! (the ablation), and across growing synthetic designs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slif_bench::built_entry;
use slif_core::gen::DesignGenerator;
use slif_core::{Design, NodeId, Partition, PmRef};
use slif_estimate::{DesignReport, IncrementalEstimator};
use slif_explore::{cost, Objectives};
use slif_speclang::corpus;
use std::hint::black_box;

/// One evaluation round: move `moves` nodes cyclically, scoring after each.
fn incremental_rounds(
    design: &Design,
    part: &Partition,
    objectives: &Objectives,
    moves: usize,
) -> f64 {
    let mut est = IncrementalEstimator::new(design, part.clone()).expect("valid start");
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let mut acc = 0.0;
    for k in 0..moves {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[k % procs.len()].into();
        est.move_node(n, target).expect("legal move");
        acc += cost(&mut est, objectives).expect("estimable");
    }
    acc
}

/// The ablation: same moves, but a full report recomputed from scratch
/// per candidate.
fn full_recompute_rounds(design: &Design, part: &Partition, moves: usize) -> f64 {
    let mut current = part.clone();
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let mut acc = 0.0;
    for k in 0..moves {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[k % procs.len()].into();
        if design.graph().node(n).kind().is_behavior() {
            current.assign_node(n, target);
        }
        let report = DesignReport::compute(design, &current).expect("estimable");
        acc += report.processes.iter().map(|p| p.exec_time).sum::<f64>();
    }
    acc
}

fn bench_throughput(c: &mut Criterion) {
    slif_bench::banner("Exploration throughput: candidate partitions per second");
    let objectives = Objectives::new();
    const MOVES: usize = 64;

    let mut group = c.benchmark_group("exploration_throughput");
    group.throughput(Throughput::Elements(MOVES as u64));

    // The real corpus, incremental vs full recompute.
    for name in ["fuzzy", "ether"] {
        let entry = corpus::by_name(name).expect("exists");
        let (design, part) = built_entry(&entry);
        group.bench_function(format!("{name}/incremental"), |b| {
            b.iter(|| black_box(incremental_rounds(&design, &part, &objectives, MOVES)))
        });
        group.bench_function(format!("{name}/full_recompute"), |b| {
            b.iter(|| black_box(full_recompute_rounds(&design, &part, MOVES)))
        });
    }

    // Scaling on synthetic designs well past the corpus sizes.
    for &(behaviors, variables) in &[(50usize, 50usize), (200, 200), (500, 500)] {
        let (design, part) = DesignGenerator::new(99)
            .behaviors(behaviors)
            .variables(variables)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        group.bench_function(
            format!("synthetic_{}_nodes/incremental", behaviors + variables),
            |b| b.iter(|| black_box(incremental_rounds(&design, &part, &objectives, MOVES))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
