//! Compiled-view speedup: baseline design walks vs `CompiledDesign`.
//!
//! The PR 3 refactor moved estimation onto an immutable compiled query
//! layer (CSR adjacency, dense weight tables, slab caches). This bench
//! compares candidate-evaluation cost (move one node + recompute the full
//! cost function) between the preserved pre-refactor estimator
//! (`slif_bench::baseline`) and the compiled incremental and full
//! estimators, on generated designs at ~100, ~1k, and ~10k nodes.
//! The machine-readable twin of this target is `src/bin/pr3_bench.rs`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slif_bench::baseline::{baseline_cost, BaselineIncremental};
use slif_core::gen::DesignGenerator;
use slif_core::{CompiledDesign, Design, NodeId, Partition, PmRef};
use slif_estimate::{FullEstimator, IncrementalEstimator};
use slif_explore::{cost, Objectives};
use std::hint::black_box;

const MOVES: usize = 64;

fn baseline_rounds(design: &Design, part: &Partition, objectives: &Objectives) -> f64 {
    let mut est = BaselineIncremental::new(design, part.clone()).expect("valid start");
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let mut acc = 0.0;
    for k in 0..MOVES {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[k % procs.len()].into();
        est.move_node(n, target).expect("legal move");
        acc += baseline_cost(design, &mut est, objectives).expect("estimable");
    }
    acc
}

fn incremental_rounds(
    design: &Design,
    cd: &CompiledDesign,
    part: &Partition,
    objectives: &Objectives,
) -> f64 {
    let mut est = IncrementalEstimator::from_compiled(cd, part.clone()).expect("valid start");
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let mut acc = 0.0;
    for k in 0..MOVES {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[k % procs.len()].into();
        est.move_node(n, target).expect("legal move");
        acc += cost(&mut est, objectives).expect("estimable");
    }
    acc
}

fn full_rounds(
    design: &Design,
    cd: &CompiledDesign,
    part: &Partition,
    objectives: &Objectives,
) -> f64 {
    let mut est = FullEstimator::from_compiled(cd, part.clone()).expect("valid start");
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let mut acc = 0.0;
    for k in 0..MOVES {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[k % procs.len()].into();
        est.move_node(n, target).expect("legal move");
        acc += cost(&mut est, objectives).expect("estimable");
    }
    acc
}

fn bench_compiled_speedup(c: &mut Criterion) {
    slif_bench::banner("Compiled-view speedup: baseline walks vs CompiledDesign");
    let objectives = Objectives::new();

    let mut group = c.benchmark_group("compiled_speedup");
    group.throughput(Throughput::Elements(MOVES as u64));

    for &(behaviors, variables) in &[(50usize, 50usize), (500, 500), (5000, 5000)] {
        let nodes = behaviors + variables;
        let (design, part) = DesignGenerator::new(99)
            .behaviors(behaviors)
            .variables(variables)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let cd = CompiledDesign::compile(&design);
        group.bench_function(format!("{nodes}_nodes/baseline_incremental"), |b| {
            b.iter(|| black_box(baseline_rounds(&design, &part, &objectives)))
        });
        group.bench_function(format!("{nodes}_nodes/compiled_incremental"), |b| {
            b.iter(|| black_box(incremental_rounds(&design, &cd, &part, &objectives)))
        });
        group.bench_function(format!("{nodes}_nodes/compiled_full"), |b| {
            b.iter(|| black_box(full_rounds(&design, &cd, &part, &objectives)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compiled_speedup);
criterion_main!(benches);
