//! Corpus parity: the compiled estimation path is bit-identical to the
//! pre-refactor design-walking path on every speclang corpus system.
//!
//! The refactor's contract is "same floats, same errors, faster" — not
//! "close enough". Exec times, sizes, pins, and the full cost function
//! must agree to the last bit between [`slif_bench::baseline`] (the
//! preserved old path) and the compiled estimators, on the real corpus
//! designs, before and after a deterministic walk of node moves.

use slif_bench::baseline::{baseline_cost, BaselineIncremental};
use slif_bench::built_entry;
use slif_core::{CompiledDesign, NodeId, PmRef};
use slif_estimate::{Evaluator, FullEstimator, IncrementalEstimator};
use slif_explore::{cost, Objectives};
use slif_speclang::corpus;

const ENTRIES: [&str; 4] = ["ans", "ether", "fuzzy", "vol"];

/// Asserts bit-identity of every metric between the baseline and a
/// compiled evaluator at the current partition state.
fn assert_metrics_match<E: Evaluator>(
    name: &str,
    base: &mut BaselineIncremental<'_>,
    est: &mut E,
) {
    let cd = est.compiled().clone();
    for n in cd.node_ids() {
        let a = base.exec_time(n).unwrap();
        let b = est.exec_time(n).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: exec_time({n:?})");
    }
    for pm in cd.pm_refs() {
        assert_eq!(base.size(pm), est.size(pm).unwrap(), "{name}: size({pm:?})");
    }
    for p in cd.processor_ids() {
        assert_eq!(
            base.pins(p).unwrap(),
            est.pins(p).unwrap(),
            "{name}: pins({p:?})"
        );
    }
}

#[test]
fn corpus_estimates_are_bit_identical_between_paths() {
    let objectives = Objectives::new();
    for name in ENTRIES {
        let entry = corpus::by_name(name).expect("corpus entry exists");
        let (design, part) = built_entry(&entry);
        let cd = CompiledDesign::compile(&design);

        let mut base = BaselineIncremental::new(&design, part.clone()).unwrap();
        let mut inc = IncrementalEstimator::from_compiled(&cd, part.clone()).unwrap();
        let mut full = FullEstimator::from_compiled(&cd, part.clone()).unwrap();

        assert_metrics_match(name, &mut base, &mut inc);
        assert_metrics_match(name, &mut base, &mut full);
        let c0 = baseline_cost(&design, &mut base, &objectives).unwrap();
        assert_eq!(
            c0.to_bits(),
            cost(&mut inc, &objectives).unwrap().to_bits(),
            "{name}: initial cost (incremental)"
        );
        assert_eq!(
            c0.to_bits(),
            cost(&mut full, &objectives).unwrap().to_bits(),
            "{name}: initial cost (full)"
        );

        // Walk every node cyclically across the processors; parity must
        // survive arbitrary intermediate partitions, not just the
        // all-software start.
        let procs: Vec<_> = design.processor_ids().collect();
        let nodes: Vec<NodeId> = design.graph().node_ids().collect();
        for (k, &n) in nodes.iter().enumerate() {
            let target: PmRef = procs[k % procs.len()].into();
            let rb = base.move_node(n, target);
            let ri = inc.move_node(n, target);
            let rf = full.move_node(n, target);
            assert_eq!(rb.is_ok(), ri.is_ok(), "{name}: move {k} outcome");
            assert_eq!(rb.is_ok(), rf.is_ok(), "{name}: move {k} outcome (full)");
            let cb = baseline_cost(&design, &mut base, &objectives).unwrap();
            let ci = cost(&mut inc, &objectives).unwrap();
            let cf = cost(&mut full, &objectives).unwrap();
            assert_eq!(cb.to_bits(), ci.to_bits(), "{name}: cost after move {k}");
            assert_eq!(cb.to_bits(), cf.to_bits(), "{name}: full cost after move {k}");
        }
        assert_metrics_match(name, &mut base, &mut inc);
        assert_metrics_match(name, &mut base, &mut full);
    }
}

#[test]
fn corpus_reports_unchanged_by_compilation_reuse() {
    // Compiling once and sharing the view across estimators must not
    // change anything either.
    for name in ENTRIES {
        let entry = corpus::by_name(name).expect("corpus entry exists");
        let (design, part) = built_entry(&entry);
        let cd = CompiledDesign::compile(&design);
        let mut owned = IncrementalEstimator::new(&design, part.clone()).unwrap();
        let mut shared = IncrementalEstimator::from_compiled(&cd, part).unwrap();
        for n in design.graph().node_ids() {
            assert_eq!(
                owned.exec_time(n).unwrap().to_bits(),
                shared.exec_time(n).unwrap().to_bits(),
                "{name}: exec_time({n:?})"
            );
        }
        for p in design.processor_ids() {
            assert_eq!(owned.pins(p).unwrap(), shared.pins(p).unwrap());
        }
    }
}
