//! Shared helpers for the SLIF benchmark harness.
//!
//! Each bench target under `benches/` regenerates one of the paper's
//! tables or figures (see DESIGN.md's experiment index); this crate holds
//! the setup they share.

use slif_core::{Design, Partition};
use slif_frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif_speclang::corpus::CorpusEntry;
use slif_techlib::TechnologyLibrary;

pub mod baseline;

/// Builds a corpus entry with the paper's processor–ASIC architecture and
/// its all-software starting partition.
pub fn built_entry(entry: &CorpusEntry) -> (Design, Partition) {
    let rs = entry.load().expect("corpus entry loads");
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let part = all_software_partition(&design, arch);
    (design, part)
}

/// Prints a one-line banner tying a bench to its paper artifact.
pub fn banner(what: &str) {
    println!("── {what} ──");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_entry_produces_valid_partitions() {
        for entry in slif_speclang::corpus::all() {
            let (design, part) = built_entry(&entry);
            part.validate(&design).unwrap();
        }
    }
}
