//! PR 10 bench smoke: flow-sensitive analysis throughput + memoized
//! re-analysis, as JSON.
//!
//! Two workloads:
//!
//! - **Throughput ladder** — synthetic specifications of ~1k/10k/100k
//!   design nodes run through the full flow-sensitive analyzer
//!   (`analyze_compiled_with_flow`: graph passes A001–A005 plus the
//!   dataflow passes A006–A009 and the unproven-interleaving pass A010),
//!   reporting nodes analyzed per second.
//! - **Memoized re-analysis** — the largest corpus spec (`ether`) with
//!   one procedure's body edited: a warm
//!   [`analyze_compiled_memoized_with_flow`] pass (flow-only dirt, so
//!   only the edited behavior re-solves against the per-behavior cache)
//!   must beat the cold full analysis by ≥5x *and* return a report
//!   bit-identical to it. Both facts are asserted here and recorded in
//!   the JSON, so the committed record always matches the code.
//!
//! Writes `BENCH_analyze.json` (or the path given as the first argument).

use slif_analyze::{
    analyze_compiled_memoized_with_flow, analyze_compiled_with_flow, AnalysisConfig, AnalysisDirt,
    AnalysisMemo, SourceMap,
};
use slif_core::CompiledDesign;
use slif_frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif_speclang::{corpus, parse, parse_with_limits, resolve, FlowProgram, ParseLimits};
use slif_techlib::TechnologyLibrary;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SPEEDUP_FLOOR: f64 = 5.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// A synthetic specification whose behaviors exercise every flow pass:
/// locals, branches, counted loops, arithmetic on shared variables.
fn synth_spec(processes: usize, vars: usize) -> String {
    let mut s = String::from("system Big;\n");
    for v in 0..vars {
        let _ = writeln!(s, "var v{v} : int<16>;");
    }
    for p in 0..processes {
        let _ = writeln!(
            s,
            "process P{p} {{\n  var t : int<16>;\n  t = v{} + 1;\n  \
             if t > 3 {{ v{} = t; }} else {{ v{} = 0; }}\n  \
             for j{p} in 0 .. 4 {{ t = t + 1; }}\n  wait 2;\n}}",
            p % vars,
            (p + 1) % vars,
            (p + 1) % vars,
        );
    }
    s
}

/// Full flow-sensitive analysis over a synthetic spec of roughly
/// `processes + vars` design nodes. Returns (nodes, flow_nodes, ns).
fn throughput(processes: usize, vars: usize, rounds: usize) -> (usize, usize, f64) {
    let source = synth_spec(processes, vars);
    // The 100k-node rung is legitimately bigger than the serving-side
    // parse caps; the bench raises them rather than shrinking the rung.
    let limits = ParseLimits::new()
        .with_max_bytes(64 << 20)
        .with_max_tokens(1 << 24);
    let spec = parse_with_limits(&source, &limits).expect("synthetic spec parses");
    let flow = FlowProgram::from_spec(&spec);
    let flow_nodes: usize = flow.behaviors.iter().map(|b| b.nodes.len()).sum();
    let rs = resolve(spec).expect("synthetic spec resolves");
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let nodes = design.graph().node_count();
    let cd = CompiledDesign::compile(&design);
    let config = AnalysisConfig::new();
    let ns = median(
        (0..rounds)
            .map(|_| {
                let start = Instant::now();
                let report = analyze_compiled_with_flow(&cd, None, &config, &flow, None);
                let ns = start.elapsed().as_nanos() as f64;
                black_box(report);
                ns
            })
            .collect(),
    );
    (nodes, flow_nodes, ns)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_analyze.json".to_string());
    let config = AnalysisConfig::new();

    // -- Throughput ladder --------------------------------------------
    let mut entries = String::new();
    for (i, &(processes, vars, rounds)) in
        [(500usize, 500usize, 5usize), (5_000, 5_000, 3), (50_000, 50_000, 1)]
            .iter()
            .enumerate()
    {
        let (nodes, flow_nodes, ns) = throughput(processes, vars, rounds);
        let nodes_per_sec = nodes as f64 / (ns / 1e9);
        println!(
            "{nodes:>7} nodes ({flow_nodes:>7} flow nodes): full analysis {:>10.1} us \
             ({:>9.0} nodes/s)",
            ns / 1e3,
            nodes_per_sec,
        );
        if i > 0 {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"nodes\": {nodes}, \"flow_nodes\": {flow_nodes}, \
             \"analyze_ns\": {ns:.1}, \"nodes_per_sec\": {nodes_per_sec:.0}}}"
        )
        .expect("write to string");
    }

    // -- Memoized re-analysis on the largest corpus spec --------------
    // Two variants of `ether` differing in one procedure body; runs
    // alternate between them so every warm pass re-solves exactly the
    // edited behavior against the per-behavior flow cache.
    let variant_a = corpus::ETHER.to_owned();
    let variant_b = variant_a.replace("ifg_timer = 96;", "ifg_timer = 97;");
    assert_ne!(variant_a, variant_b, "edit site vanished from the corpus");
    let rs = resolve(parse(&variant_a).expect("ether parses")).expect("ether resolves");
    let sources = SourceMap::from_spec(rs.spec());
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);
    let cd = CompiledDesign::compile(&design);
    let flows: Vec<FlowProgram> = [&variant_a, &variant_b]
        .iter()
        .map(|src| FlowProgram::from_spec(&parse(src).expect("variant parses")))
        .collect();

    const ROUNDS: usize = 30;
    let cold_ns = median(
        (0..ROUNDS)
            .map(|k| {
                let flow = &flows[k % 2];
                let start = Instant::now();
                let report =
                    analyze_compiled_with_flow(&cd, Some(&partition), &config, flow, Some(&sources));
                let ns = start.elapsed().as_nanos() as f64;
                black_box(report);
                ns
            })
            .collect(),
    );

    let mut memo = AnalysisMemo::new();
    // Seed the memo once (cold), then time flow-only warm passes.
    let _ = analyze_compiled_memoized_with_flow(
        &cd,
        Some(&partition),
        &config,
        &sources,
        Some(&flows[0]),
        &mut memo,
        &AnalysisDirt::all(),
    );
    let mut flow_dirt = AnalysisDirt::none();
    flow_dirt.flow = true;
    let warm_ns = median(
        (0..ROUNDS)
            .map(|k| {
                let flow = &flows[(k + 1) % 2];
                let start = Instant::now();
                let report = analyze_compiled_memoized_with_flow(
                    &cd,
                    Some(&partition),
                    &config,
                    &sources,
                    Some(flow),
                    &mut memo,
                    &flow_dirt,
                );
                let ns = start.elapsed().as_nanos() as f64;
                black_box(report);
                ns
            })
            .collect(),
    );

    // Bit-identity: the warm (memoized, cache-sliced) report must equal
    // the cold full analysis of the same edited program exactly.
    let warm_report = analyze_compiled_memoized_with_flow(
        &cd,
        Some(&partition),
        &config,
        &sources,
        Some(&flows[1]),
        &mut memo,
        &flow_dirt,
    );
    let cold_report =
        analyze_compiled_with_flow(&cd, Some(&partition), &config, &flows[1], Some(&sources));
    assert_eq!(
        warm_report, cold_report,
        "memoized re-analysis diverged from the cold run"
    );
    assert_eq!(warm_report.to_string(), cold_report.to_string());

    let speedup = cold_ns / warm_ns;
    println!(
        "ether one-procedure edit: cold analysis {:>9.1} us, memoized re-analysis \
         {:>8.1} us ({speedup:.1}x speedup, bit-identical)",
        cold_ns / 1e3,
        warm_ns / 1e3,
    );
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "memoized re-analysis speedup {speedup:.2}x fell below the {SPEEDUP_FLOOR}x floor \
         (cold {cold_ns:.0} ns, warm {warm_ns:.0} ns)"
    );

    let json = format!(
        "{{\n  \"bench\": \"pr10_analyze\",\n  \"workload\": \
         \"flow-sensitive analysis throughput; memoized one-procedure re-analysis on ether\",\n  \
         \"sizes\": [{entries}\n  ],\n  \"memoized\": {{\"corpus\": \"ether\", \
         \"rounds\": {ROUNDS}, \"cold_analyze_ns\": {cold_ns:.1}, \
         \"warm_reanalyze_ns\": {warm_ns:.1}, \"speedup\": {speedup:.3}, \
         \"speedup_floor\": {SPEEDUP_FLOOR}, \"bit_identical\": true}}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
