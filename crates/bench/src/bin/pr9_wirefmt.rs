//! PR 9 bench smoke: interchange throughput and compiled-cache payoff,
//! as JSON.
//!
//! Two questions decide whether the wire format is usable at scale:
//!
//! - How fast do the `.slif` text and `.slifb` binary encodings move?
//!   For generated designs at ~1k, ~10k, and ~100k nodes this measures
//!   write and strict-parse throughput in MB/s for both encodings —
//!   parse includes the full verification chain (frame checksums,
//!   content rehash, trailer key match).
//! - Does the content-addressed `CompiledDesign` cache actually skip
//!   compilation? `warm_compiled_ns` reads the design AND its compiled
//!   form back in one verified cache hit; `warm_design_ns` is the
//!   design-only hit that still pays `compile_bounded`; `cold_ns` is
//!   the straight compile. The warm-compiled hit must beat the paths
//!   that recompile, or the cache is dead weight.
//!
//! Writes `BENCH_wirefmt.json` (or the path given as the first
//! argument). Like `pr3_bench` and `pr7_store` this emits
//! machine-readable output so `scripts/verify.sh` keeps the committed
//! record honest.

use slif_core::gen::DesignGenerator;
use slif_core::{CompiledDesign, Design, GraphLimits, Partition};
use slif_formats::wirefmt::{read_bytes, write_bytes, Encoding, FormatLimits, Strictness};
use slif_store::DesignCache;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const ROUNDS: usize = 9;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn mb_per_s(bytes: usize, ns: f64) -> f64 {
    (bytes as f64 / (1024.0 * 1024.0)) / (ns / 1e9)
}

/// A generated design with roughly `target` nodes (4:1 behaviors to
/// variables) and a fanout that keeps the channel table realistic.
fn sized_design(target: usize) -> (Design, Partition) {
    DesignGenerator::new(target as u64)
        .behaviors(target * 4 / 5)
        .variables(target / 5)
        .ports(6)
        .avg_fanout(1.8)
        .processors(3)
        .memories(2)
        .buses(2)
        .build()
}

fn bench_write(design: &Design, partition: &Partition, encoding: Encoding) -> (f64, usize) {
    let bytes = write_bytes(design, Some(partition), encoding).expect("bench design writes");
    let ns = median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let out =
                    write_bytes(design, Some(partition), encoding).expect("bench design writes");
                let ns = start.elapsed().as_nanos() as f64;
                black_box(out);
                ns
            })
            .collect(),
    );
    (ns, bytes.len())
}

fn bench_parse(bytes: &[u8], limits: &FormatLimits) -> f64 {
    median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let out = read_bytes(bytes, Strictness::Strict, limits).expect("bench bytes parse");
                let ns = start.elapsed().as_nanos() as f64;
                assert!(black_box(out).verified, "bench parse must verify");
                ns
            })
            .collect(),
    )
}

struct CacheNumbers {
    cold_ns: f64,
    warm_design_ns: f64,
    warm_compiled_ns: f64,
}

/// The compiled-cache ladder on one large design, keyed the way
/// `POST /designs` keys the store. Three ways a consumer holding the
/// design's content hash gets a query-ready `CompiledDesign`:
///
/// - cold: strict wire parse of the interchange bytes + `compile_bounded`
///   (no store at all),
/// - PR 7 design-only cache: verified design object read
///   (`get_by_key`: frame check, content re-hash, canonical decode),
///   then `compile_bounded`,
/// - PR 9 compiled cache: `get_compiled_by_key` — one frame-checked
///   strict decode of the compiled slabs; no design decode, no content
///   re-hash, no compile.
fn bench_compiled_cache(dir: &std::path::Path, design: &Design, source: &[u8]) -> CacheNumbers {
    let graph_limits = GraphLimits::default();
    let fmt_limits = FormatLimits::default();
    let cold_ns = median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let out = read_bytes(source, Strictness::Strict, &fmt_limits)
                    .expect("bench bytes parse");
                let cd = CompiledDesign::compile_bounded(&out.design, &graph_limits)
                    .expect("bench design compiles");
                let ns = start.elapsed().as_nanos() as f64;
                black_box(cd);
                ns
            })
            .collect(),
    );

    let cache = DesignCache::open(dir).expect("open cache");
    let compiled =
        CompiledDesign::compile_bounded(design, &graph_limits).expect("bench design compiles");
    let key = cache
        .put_with_compiled(source, design, &compiled)
        .expect("cache put");
    let warm_design_ns = median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let hit = cache.get_by_key(&key).expect("warm read must hit");
                let cd = CompiledDesign::compile_bounded(&hit, &graph_limits)
                    .expect("bench design compiles");
                let ns = start.elapsed().as_nanos() as f64;
                black_box(cd);
                ns
            })
            .collect(),
    );
    let warm_compiled_ns = median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let cd = cache
                    .get_compiled_by_key(&key)
                    .expect("compiled read must hit, not fall back");
                let ns = start.elapsed().as_nanos() as f64;
                black_box(cd);
                ns
            })
            .collect(),
    );

    CacheNumbers {
        cold_ns,
        warm_design_ns,
        warm_compiled_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_wirefmt.json".to_string());
    let scratch = std::env::temp_dir().join(format!("slif-pr9-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let limits = FormatLimits::default();

    let mut entries = String::new();
    for (i, &target) in [1_000usize, 10_000, 100_000].iter().enumerate() {
        let (design, partition) = sized_design(target);
        let nodes = design.graph().node_count();
        if i > 0 {
            entries.push(',');
        }
        let _ = write!(entries, "\n    {{\"nodes\": {nodes}, \"encodings\": {{");
        for (j, encoding) in [Encoding::Text, Encoding::Binary].into_iter().enumerate() {
            let (write_ns, len) = bench_write(&design, &partition, encoding);
            let bytes = write_bytes(&design, Some(&partition), encoding).expect("writes");
            let parse_ns = bench_parse(&bytes, &limits);
            let write_mbs = mb_per_s(len, write_ns);
            let parse_mbs = mb_per_s(len, parse_ns);
            println!(
                "{nodes:>7} nodes {encoding:>6}: {len:>9} B  write {write_mbs:>7.1} MB/s  \
                 parse {parse_mbs:>7.1} MB/s"
            );
            if j > 0 {
                entries.push_str(", ");
            }
            let _ = write!(
                entries,
                "\"{encoding}\": {{\"bytes\": {len}, \"write_ns\": {write_ns:.0}, \
                 \"write_mb_s\": {write_mbs:.1}, \"parse_ns\": {parse_ns:.0}, \
                 \"parse_mb_s\": {parse_mbs:.1}}}"
            );
        }
        entries.push_str("}}");
    }

    // Compiled-cache ladder at the 100k-node size, where both the
    // parse a miss pays and the compile pass are at their priciest.
    let (design, partition) = sized_design(100_000);
    let source = write_bytes(&design, Some(&partition), Encoding::Binary).expect("writes");
    let cache = bench_compiled_cache(&scratch, &design, &source);
    let vs_cold = cache.cold_ns / cache.warm_compiled_ns;
    let vs_design_only = cache.warm_design_ns / cache.warm_compiled_ns;
    println!(
        "compiled cache @ {} nodes: cold parse+compile {:>11.0} ns, design-only cache \
         +recompile {:>11.0} ns, compiled hit {:>11.0} ns ({vs_cold:.2}x vs cold, \
         {vs_design_only:.2}x vs design-only cache)",
        design.graph().node_count(),
        cache.cold_ns,
        cache.warm_design_ns,
        cache.warm_compiled_ns,
    );
    assert!(
        cache.warm_compiled_ns < cache.cold_ns,
        "warm compiled hit ({:.0} ns) failed to beat the cold parse+compile miss path \
         ({:.0} ns): the cache is not paying for itself",
        cache.warm_compiled_ns,
        cache.cold_ns
    );
    assert!(
        cache.warm_compiled_ns < cache.warm_design_ns,
        "warm compiled hit ({:.0} ns) failed to beat the PR 7 design-only cache plus \
         recompile ({:.0} ns): the compiled entry is not skipping compilation",
        cache.warm_compiled_ns,
        cache.warm_design_ns
    );

    let json = format!(
        "{{\n  \"bench\": \"pr9_wirefmt\",\n  \"workload\": \
         \"interchange write/strict-parse throughput both encodings; compiled-cache ladder\",\n  \
         \"rounds\": {ROUNDS},\n  \"sizes\": [{entries}\n  ],\n  \
         \"compiled_cache\": {{\"nodes\": {}, \"cold_parse_compile_ns\": {:.0}, \
         \"warm_design_recompile_ns\": {:.0}, \"warm_compiled_hit_ns\": {:.0}, \
         \"speedup_vs_cold\": {vs_cold:.3}, \"speedup_vs_design_only_cache\": \
         {vs_design_only:.3}}}\n}}\n",
        design.graph().node_count(),
        cache.cold_ns,
        cache.warm_design_ns,
        cache.warm_compiled_ns,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    let _ = std::fs::remove_dir_all(&scratch);
    println!("wrote {out_path}");
}
