//! PR 3 bench smoke: baseline vs compiled cost evaluation, as JSON.
//!
//! Measures the median ns per candidate evaluation (move one node +
//! recompute the full cost) on generated designs at ~100, ~1k, and ~10k
//! nodes, for three estimators:
//!
//! - `baseline_incremental` — the pre-refactor design-walking estimator
//!   preserved in [`slif_bench::baseline`],
//! - `compiled_incremental` — today's `IncrementalEstimator` over a
//!   `CompiledDesign`,
//! - `compiled_full` — the memo-clearing `FullEstimator`, the floor any
//!   incremental scheme must beat.
//!
//! Writes `BENCH_pr3.json` (or the path given as the first argument).
//! Unlike the criterion targets this emits machine-readable output, so
//! `scripts/verify.sh` can seed the repo's benchmark record.

use slif_bench::baseline::{baseline_cost, BaselineIncremental};
use slif_core::gen::DesignGenerator;
use slif_core::{CompiledDesign, Design, NodeId, Partition, PmRef};
use slif_estimate::{FullEstimator, IncrementalEstimator};
use slif_explore::{cost, Objectives};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const MOVES: usize = 64;
const ROUNDS: usize = 15;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// One timed round over a pre-built estimator: `MOVES` move+cost
/// evaluations, target shifted by `shift` so repeated rounds never
/// degenerate into no-op moves. Construction and design compilation stay
/// outside the timer — an exploration compiles the design once and then
/// evaluates thousands of candidates, and the acceptance metric is the
/// per-candidate cost.
fn timed_round<E>(
    design: &Design,
    est: &mut E,
    shift: usize,
    mut mv: impl FnMut(&mut E, NodeId, PmRef),
    mut score: impl FnMut(&mut E) -> f64,
) -> f64 {
    let procs: Vec<_> = design.processor_ids().collect();
    let n_nodes = design.graph().node_count();
    let start = Instant::now();
    let mut acc = 0.0;
    for k in 0..MOVES {
        let n = NodeId::from_raw((k % n_nodes) as u32);
        let target: PmRef = procs[(k + shift) % procs.len()].into();
        mv(est, n, target);
        acc += score(est);
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / MOVES as f64
}

fn measure(design: &Design, part: &Partition, objectives: &Objectives) -> (f64, f64, f64) {
    let cd = CompiledDesign::compile(design);
    let baseline = {
        let mut est = BaselineIncremental::new(design, part.clone()).expect("valid start");
        median(
            (0..ROUNDS)
                .map(|r| {
                    timed_round(
                        design,
                        &mut est,
                        r,
                        |e, n, t| {
                            e.move_node(n, t).expect("legal move");
                        },
                        |e| baseline_cost(design, e, objectives).expect("estimable"),
                    )
                })
                .collect(),
        )
    };
    let incremental = {
        let mut est = IncrementalEstimator::from_compiled(&cd, part.clone()).expect("valid start");
        median(
            (0..ROUNDS)
                .map(|r| {
                    timed_round(
                        design,
                        &mut est,
                        r,
                        |e, n, t| {
                            e.move_node(n, t).expect("legal move");
                        },
                        |e| cost(e, objectives).expect("estimable"),
                    )
                })
                .collect(),
        )
    };
    let full = {
        let mut est = FullEstimator::from_compiled(&cd, part.clone()).expect("valid start");
        median(
            (0..ROUNDS)
                .map(|r| {
                    timed_round(
                        design,
                        &mut est,
                        r,
                        |e, n, t| {
                            e.move_node(n, t).expect("legal move");
                        },
                        |e| cost(e, objectives).expect("estimable"),
                    )
                })
                .collect(),
        )
    };
    (baseline, incremental, full)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let objectives = Objectives::new();

    let mut entries = String::new();
    for (i, &(behaviors, variables)) in [(50usize, 50usize), (500, 500), (5000, 5000)]
        .iter()
        .enumerate()
    {
        let nodes = behaviors + variables;
        let (design, part) = DesignGenerator::new(99)
            .behaviors(behaviors)
            .variables(variables)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let (baseline, incremental, full) = measure(&design, &part, &objectives);
        let speedup = baseline / incremental;
        println!(
            "{nodes:>6} nodes: baseline {baseline:>12.1} ns/eval, compiled incremental \
             {incremental:>12.1} ns/eval, compiled full {full:>12.1} ns/eval \
             ({speedup:.2}x incremental speedup)"
        );
        if i > 0 {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"nodes\": {nodes}, \
             \"baseline_incremental_ns_per_eval\": {baseline:.1}, \
             \"compiled_incremental_ns_per_eval\": {incremental:.1}, \
             \"compiled_full_ns_per_eval\": {full:.1}, \
             \"incremental_speedup\": {speedup:.3}}}"
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"pr3_compiled_speedup\",\n  \"workload\": \
         \"move one node cyclically then recompute full cost, per evaluation\",\n  \
         \"moves_per_round\": {MOVES},\n  \"rounds\": {ROUNDS},\n  \"sizes\": [{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
