//! PR 7 bench smoke: durable-store overhead and payoff, as JSON.
//!
//! Three numbers decide whether crash-safe persistence is affordable:
//!
//! - `cold_compile_ns` — the full spec→allocated-design pipeline
//!   (parse, resolve, build, allocate) the cache lets repeat requests
//!   skip,
//! - `warm_hit_ns` — a verified content-addressed cache read (frame
//!   checksum, content rehash, strict canonical decode) for the same
//!   spec,
//! - `journal_append_ns` — one accepted+completed record pair, each
//!   fsynced, i.e. the write-ahead tax every durable job pays.
//!
//! Writes `BENCH_store.json` (or the path given as the first argument).
//! Like `pr3_bench` this emits machine-readable output so
//! `scripts/verify.sh` can extend the repo's benchmark record.

use slif_frontend::{build_design, try_allocate_proc_asic};
use slif_speclang::{parse, resolve};
use slif_store::{DesignCache, JobRecord, Journal};
use slif_techlib::TechnologyLibrary;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

const ROUNDS: usize = 25;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// A well-formed spec with `vars` variables and one process touching
/// each, so source size (and the compiled design) scales linearly.
fn spec_source(vars: usize) -> String {
    let mut s = String::from("system Bench;\n");
    for i in 0..vars {
        let _ = writeln!(s, "var v{i} : int<16>;");
    }
    s.push_str("process Main {\n");
    for i in 0..vars {
        let _ = writeln!(s, "  v{i} = v{i} + 1;");
    }
    s.push_str("}\n");
    s
}

fn cold_compile(source: &str) -> slif_core::Design {
    let spec = parse(source).expect("bench spec parses");
    let rs = resolve(spec).expect("bench spec resolves");
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    try_allocate_proc_asic(&mut design).expect("bench spec allocates");
    design
}

fn bench_compile(source: &str) -> f64 {
    median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                black_box(cold_compile(source));
                start.elapsed().as_nanos() as f64
            })
            .collect(),
    )
}

fn bench_warm_hit(dir: &Path, source: &str) -> f64 {
    let cache = DesignCache::open(dir).expect("open cache");
    let design = cold_compile(source);
    cache.put(source.as_bytes(), &design).expect("cache put");
    median(
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let hit = cache.get(source.as_bytes());
                let ns = start.elapsed().as_nanos() as f64;
                assert!(black_box(hit).is_some(), "warm read must hit");
                ns
            })
            .collect(),
    )
}

fn bench_journal_append(path: &Path, payload_len: usize) -> f64 {
    let (mut journal, _) = Journal::open(path).expect("open journal");
    let payload = vec![0x5a; payload_len];
    let body = vec![0x6b; 256];
    median(
        (0..ROUNDS)
            .map(|i| {
                let id = i as u64 + 1;
                let start = Instant::now();
                journal
                    .append(&JobRecord::Accepted {
                        id,
                        payload: payload.clone(),
                    })
                    .expect("append accepted");
                journal
                    .append(&JobRecord::Completed {
                        id,
                        status: 200,
                        body: body.clone(),
                    })
                    .expect("append completed");
                start.elapsed().as_nanos() as f64
            })
            .collect(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    let scratch = std::env::temp_dir().join(format!("slif-pr7-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let mut entries = String::new();
    for (i, &vars) in [8usize, 64, 256].iter().enumerate() {
        let source = spec_source(vars);
        let cache_dir = scratch.join(format!("cache-{vars}"));
        let cold = bench_compile(&source);
        let warm = bench_warm_hit(&cache_dir, &source);
        let speedup = cold / warm;
        println!(
            "{vars:>4} vars ({:>6} B spec): cold compile {cold:>12.0} ns, warm cache hit \
             {warm:>12.0} ns ({speedup:.2}x)",
            source.len()
        );
        if i > 0 {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"vars\": {vars}, \"spec_bytes\": {}, \
             \"cold_compile_ns\": {cold:.0}, \"warm_hit_ns\": {warm:.0}, \
             \"warm_speedup\": {speedup:.3}}}",
            source.len()
        )
        .expect("write to string");
    }

    let journal = bench_journal_append(&scratch.join("journal.wal"), 128);
    println!("journal accepted+completed (fsynced): {journal:>12.0} ns/job");

    let json = format!(
        "{{\n  \"bench\": \"pr7_store_durability\",\n  \"workload\": \
         \"cold spec compile vs verified warm cache read; fsynced journal append pair\",\n  \
         \"rounds\": {ROUNDS},\n  \"journal_append_pair_ns\": {journal:.0},\n  \
         \"sizes\": [{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    let _ = std::fs::remove_dir_all(&scratch);
    println!("wrote {out_path}");
}
