//! PR 8 bench smoke: incremental edit sessions vs cold rebuild, as JSON.
//!
//! Opens an [`slif_session::EditSession`] over synthetic specifications
//! of ~120 and ~1200 design nodes, then measures:
//!
//! - `cold_open_ns` — the full cold pipeline (parse → resolve → build →
//!   allocate → estimate → lint), i.e. what every keystroke would cost
//!   without the session machinery;
//! - `edit_ns` — one `apply_edit` of a single-procedure body change
//!   (dirty-region reparse → cached build → annotation patch →
//!   memo-slice re-estimate → re-lint).
//!
//! Writes `BENCH_edit.json` (or the path given as the first argument).
//! The tentpole target: ≥10x speedup at the ≥1k-node size.

use slif_session::{EditDelta, EditSession, RecomputeTier, SessionConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const COLD_ROUNDS: usize = 7;
const EDITS: usize = 60;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// A synthetic specification: `vars` shared variables and `processes`
/// processes, each reading one variable and writing the next, so the
/// access graph is connected and every node carries real annotations.
fn synth_spec(processes: usize, vars: usize) -> String {
    let mut s = String::from("system Big;\n");
    for v in 0..vars {
        let _ = writeln!(s, "var v{v} : int<16>;");
    }
    for p in 0..processes {
        let _ = writeln!(
            s,
            "process P{p} {{\n  v{} = v{} + 1;\n  wait {};\n}}",
            (p + 1) % vars,
            p % vars,
            1 + p % 7
        );
    }
    s
}

fn measure(processes: usize, vars: usize) -> (usize, f64, f64) {
    let source = synth_spec(processes, vars);
    let config = SessionConfig::default();

    // Cold: what a from-scratch rebuild of the whole pipeline costs.
    let cold = median(
        (0..COLD_ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let (session, update) = EditSession::open(&source, config.clone());
                assert!(update.clean, "synthetic spec must be clean: {:?}", update.diagnostics);
                black_box(&session);
                start.elapsed().as_nanos() as f64
            })
            .collect(),
    );

    // Warm: one-procedure body edits, alternating `+ 1` <-> `+ 2` in
    // P0 so every edit really changes an annotation (dirty set >= 1)
    // while the topology — and therefore the patch tier — holds.
    let (mut session, _) = EditSession::open(&source, config.clone());
    let at = source.find("+ 1;").expect("edit site");
    let nodes = session
        .design()
        .map(|d| d.graph().node_count())
        .unwrap_or(0);
    let mut timings = Vec::with_capacity(EDITS);
    for k in 0..EDITS {
        let text = if k % 2 == 0 { "+ 2" } else { "+ 1" };
        let delta = EditDelta::new(at, at + 3, text);
        let start = Instant::now();
        let update = session.apply_edit(&delta).expect("in-bounds edit");
        timings.push(start.elapsed().as_nanos() as f64);
        assert!(update.clean, "{:?}", update.diagnostics);
        assert_eq!(update.tier, RecomputeTier::Patched, "body edit must patch");
        black_box(&update);
    }
    (nodes, cold, median(timings))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_edit.json".to_string());

    let mut entries = String::new();
    for (i, &(processes, vars)) in [(60usize, 60usize), (600, 600)].iter().enumerate() {
        let (nodes, cold, edit) = measure(processes, vars);
        let speedup = cold / edit;
        println!(
            "{nodes:>6} nodes: cold open {:>12.1} us, incremental edit {:>9.1} us \
             ({speedup:.1}x speedup)",
            cold / 1e3,
            edit / 1e3,
        );
        if i > 0 {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"nodes\": {nodes}, \"cold_open_ns\": {cold:.1}, \
             \"edit_ns\": {edit:.1}, \"speedup\": {speedup:.3}}}"
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"pr8_edit_session\",\n  \"workload\": \
         \"one-procedure body edit through an EditSession vs a cold pipeline rebuild\",\n  \
         \"cold_rounds\": {COLD_ROUNDS},\n  \"edits\": {EDITS},\n  \"sizes\": [{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
