//! The pre-refactor estimation path, preserved as a measurable baseline.
//!
//! Before the compiled-view refactor, the estimators walked the mutable
//! [`Design`] directly: `WeightList` binary searches for every ict/size
//! lookup, `Vec`-collecting graph walks for adjacency, and a full
//! node-table scan inside the cost function. This module is a faithful
//! copy of that path (default configuration, which is all the benches
//! use), so `benches/compiled_speedup.rs` and the `pr3_bench` binary can
//! measure what the compiled layer buys. It is **not** public API beyond
//! the bench harness and is deliberately frozen — do not "optimize" it.

use slif_core::{
    AccessKind, AccessTarget, ChannelId, CoreError, Design, NodeId, Partition, PmRef, ProcessorId,
};
use slif_explore::Objectives;

/// Memoization state for one node's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum MemoState {
    #[default]
    Unvisited,
    InProgress,
    Done(f64),
}

fn eval_exec_time(
    design: &Design,
    partition: &Partition,
    memo: &mut [MemoState],
    n: NodeId,
) -> Result<f64, CoreError> {
    if n.index() >= memo.len() || n.index() >= partition.node_slots() {
        return Err(CoreError::DanglingReference {
            what: "node",
            index: n.index(),
        });
    }
    match memo[n.index()] {
        MemoState::Done(t) => Ok(t),
        MemoState::InProgress => Err(CoreError::RecursiveAccess { node: n }),
        MemoState::Unvisited => {
            memo[n.index()] = MemoState::InProgress;
            let result = eval_compute(design, partition, memo, n);
            match result {
                Ok(t) => {
                    memo[n.index()] = MemoState::Done(t);
                    Ok(t)
                }
                Err(e) => {
                    memo[n.index()] = MemoState::Unvisited;
                    Err(e)
                }
            }
        }
    }
}

fn eval_compute(
    design: &Design,
    partition: &Partition,
    memo: &mut [MemoState],
    n: NodeId,
) -> Result<f64, CoreError> {
    let comp = partition
        .node_component(n)
        .ok_or(CoreError::UnmappedNode { node: n })?;
    let comp_exists = match comp {
        PmRef::Processor(p) => p.index() < design.processor_count(),
        PmRef::Memory(m) => m.index() < design.memory_count(),
    };
    if !comp_exists {
        return Err(CoreError::UnknownComponent { component: comp });
    }
    let class = design.component_class(comp);
    if class.index() >= design.class_count() {
        return Err(CoreError::DanglingReference {
            what: "class",
            index: class.index(),
        });
    }
    let ict = match design.graph().node(n).ict().get(class) {
        Some(v) => v as f64,
        None => {
            return Err(CoreError::MissingWeight {
                node: n,
                list: "ict",
                component: comp,
            })
        }
    };
    if design.graph().node(n).kind().is_variable() {
        return Ok(ict);
    }
    // Default configuration: sequential accesses, so plain summation.
    let channels: Vec<ChannelId> = design.graph().channels_of(n).collect();
    let mut comm = 0.0;
    for c in channels {
        comm += eval_channel_time(design, partition, memo, c, comp)?;
    }
    Ok(ict + comm)
}

fn eval_channel_time(
    design: &Design,
    partition: &Partition,
    memo: &mut [MemoState],
    c: ChannelId,
    src_comp: PmRef,
) -> Result<f64, CoreError> {
    let ch = design.graph().channel(c);
    let freq = ch.freq().avg;
    if freq == 0.0 {
        return Ok(0.0);
    }
    let bus_id = partition
        .channel_bus(c)
        .ok_or(CoreError::UnmappedChannel { channel: c })?;
    if bus_id.index() >= design.bus_count() {
        return Err(CoreError::UnknownBus { bus: bus_id });
    }
    let bus = design.bus(bus_id);
    if bus.bitwidth() == 0 {
        return Err(CoreError::ZeroBitwidthBus { bus: bus_id });
    }
    let (same, dst_time) = match ch.dst() {
        AccessTarget::Port(_) => (false, 0.0),
        AccessTarget::Node(dst) => {
            if dst.index() >= partition.node_slots() {
                return Err(CoreError::DanglingReference {
                    what: "node",
                    index: dst.index(),
                });
            }
            let dst_comp = partition
                .node_component(dst)
                .ok_or(CoreError::UnmappedNode { node: dst })?;
            // Default message policy: transfers only, no receiver time.
            let include_dst = match ch.kind() {
                AccessKind::Message => false,
                AccessKind::Call | AccessKind::Read | AccessKind::Write => true,
            };
            let dst_time = if include_dst {
                eval_exec_time(design, partition, memo, dst)?
            } else {
                0.0
            };
            (dst_comp == src_comp, dst_time)
        }
    };
    let transfer = bus.access_time(ch.bits(), same) as f64;
    Ok(freq * (transfer + dst_time))
}

fn node_size_on(design: &Design, n: NodeId, pm: PmRef) -> Result<u64, CoreError> {
    let class = design.component_class(pm);
    design
        .graph()
        .node(n)
        .size()
        .get(class)
        .ok_or(CoreError::MissingWeight {
            node: n,
            list: "size",
            component: pm,
        })
}

fn io_pins(design: &Design, partition: &Partition, p: ProcessorId) -> Result<u32, CoreError> {
    if p.index() >= design.processor_count() {
        return Err(CoreError::InvalidProcessor { processor: p });
    }
    let cut: Vec<_> = partition.cut_channels(design, p).collect();
    for &c in &cut {
        if partition.channel_bus(c).is_none() {
            return Err(CoreError::UnmappedChannel { channel: c });
        }
    }
    let mut pins = 0u32;
    for &b in partition.cut_buses(design, p).iter() {
        if b.index() >= design.bus_count() {
            return Err(CoreError::UnknownBus { bus: b });
        }
        pins = pins.saturating_add(design.bus(b).bitwidth());
    }
    Ok(pins)
}

fn pm_index(design: &Design, pm: PmRef) -> usize {
    match pm {
        PmRef::Processor(p) => p.index(),
        PmRef::Memory(m) => design.processor_count() + m.index(),
    }
}

/// The pre-refactor incremental estimator: same caches and invalidation
/// rules as today's `IncrementalEstimator`, but every lookup walks the
/// mutable design.
#[derive(Debug)]
pub struct BaselineIncremental<'a> {
    design: &'a Design,
    partition: Partition,
    comp_size: Vec<u64>,
    exec_memo: Vec<MemoState>,
    pins_cache: Vec<Option<u32>>,
}

impl<'a> BaselineIncremental<'a> {
    /// Creates the baseline estimator over a complete partition.
    ///
    /// # Errors
    ///
    /// As for `IncrementalEstimator::new`.
    pub fn new(design: &'a Design, partition: Partition) -> Result<Self, CoreError> {
        let slots = design.processor_count() + design.memory_count();
        let mut comp_size = vec![0u64; slots];
        for n in design.graph().node_ids() {
            let comp = partition
                .node_component(n)
                .ok_or(CoreError::UnmappedNode { node: n })?;
            comp_size[pm_index(design, comp)] += node_size_on(design, n, comp)?;
        }
        Ok(Self {
            design,
            partition,
            comp_size,
            exec_memo: vec![MemoState::default(); design.graph().node_count()],
            pins_cache: vec![None; design.processor_count()],
        })
    }

    /// Moves node `n` to `comp` with the pre-refactor update rules.
    ///
    /// # Errors
    ///
    /// As for `IncrementalEstimator::move_node`.
    pub fn move_node(&mut self, n: NodeId, comp: PmRef) -> Result<Option<PmRef>, CoreError> {
        let old = self.partition.node_component(n);
        if old == Some(comp) {
            return Ok(old);
        }
        if let PmRef::Memory(m) = comp {
            if self.design.graph().node(n).kind().is_behavior() {
                return Err(CoreError::BehaviorInMemory { node: n, memory: m });
            }
        }
        let new_w = node_size_on(self.design, n, comp)?;
        if let Some(old_comp) = old {
            let old_w = node_size_on(self.design, n, old_comp)?;
            self.comp_size[pm_index(self.design, old_comp)] -= old_w;
        }
        self.comp_size[pm_index(self.design, comp)] += new_w;
        self.partition.assign_node(n, comp);
        for dep in self.design.graph().dependents_of(n) {
            self.exec_memo[dep.index()] = MemoState::default();
        }
        self.invalidate_pins_of_comp(old);
        self.invalidate_pins_of_comp(Some(comp));
        let g = self.design.graph();
        let mut neighbours: Vec<Option<PmRef>> = Vec::new();
        for c in g.channels_of(n) {
            if let AccessTarget::Node(dst) = g.channel(c).dst() {
                neighbours.push(self.partition.node_component(dst));
            }
        }
        for c in g.accessors_of(n) {
            neighbours.push(self.partition.node_component(g.channel(c).src()));
        }
        for comp in neighbours {
            self.invalidate_pins_of_comp(comp);
        }
        Ok(old)
    }

    fn invalidate_pins_of_comp(&mut self, comp: Option<PmRef>) {
        if let Some(PmRef::Processor(p)) = comp {
            self.pins_cache[p.index()] = None;
        }
    }

    /// Equation 1 execution time, from the memo where valid.
    ///
    /// # Errors
    ///
    /// As for `IncrementalEstimator::exec_time`.
    pub fn exec_time(&mut self, n: NodeId) -> Result<f64, CoreError> {
        eval_exec_time(self.design, &self.partition, &mut self.exec_memo, n)
    }

    /// Equation 4/5 size, an O(1) cache read.
    pub fn size(&self, pm: PmRef) -> u64 {
        self.comp_size[pm_index(self.design, pm)]
    }

    /// Equation 6 pins, from cache where valid.
    ///
    /// # Errors
    ///
    /// As for `IncrementalEstimator::pins`.
    pub fn pins(&mut self, p: ProcessorId) -> Result<u32, CoreError> {
        if let Some(pins) = self.pins_cache[p.index()] {
            return Ok(pins);
        }
        let pins = io_pins(self.design, &self.partition, p)?;
        self.pins_cache[p.index()] = Some(pins);
        Ok(pins)
    }

    /// The current working partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }
}

/// The pre-refactor cost function: identical arithmetic to
/// `slif_explore::cost` under default objectives, but driven by design
/// walks (including the full node-table scan for the pressure term, with
/// its magic `1.0e9` divisor — which [`Objectives::DEFAULT_PERF_SCALE`]
/// has since replaced).
///
/// # Errors
///
/// As for `slif_explore::cost`.
pub fn baseline_cost(
    design: &Design,
    est: &mut BaselineIncremental<'_>,
    objectives: &Objectives,
) -> Result<f64, CoreError> {
    let mut total = 0.0;
    let mut perf_sum = 0.0;
    let mut perf_norm = 0.0;
    for &(process, deadline) in objectives.deadlines() {
        let t = est.exec_time(process)?;
        if t > deadline {
            total += objectives.wt_time * (t - deadline) / deadline;
        }
        perf_sum += t;
        perf_norm += deadline;
    }
    if perf_norm > 0.0 {
        total += objectives.wt_perf * perf_sum / perf_norm;
    } else {
        let mut sum = 0.0;
        for n in design.graph().node_ids() {
            if design.graph().node(n).kind().is_process() {
                sum += est.exec_time(n)?;
            }
        }
        total += objectives.wt_perf * sum / 1.0e9;
    }
    for pm in design.pm_refs() {
        let constraint = match pm {
            PmRef::Processor(p) => design.processor(p).size_constraint(),
            PmRef::Memory(m) => design.memory(m).size_constraint(),
        };
        if let Some(max) = constraint {
            let used = est.size(pm);
            if used > max {
                total += objectives.wt_size * (used - max) as f64 / max.max(1) as f64;
            }
        }
    }
    for p in design.processor_ids() {
        if let Some(max) = design.processor(p).pin_constraint() {
            let pins = est.pins(p)?;
            if pins > max {
                total += objectives.wt_pins * f64::from(pins - max) / f64::from(max.max(1));
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;
    use slif_estimate::IncrementalEstimator;
    use slif_explore::cost;

    /// The baseline must stay a faithful pre-refactor copy: identical
    /// costs to the compiled path through a deterministic move walk.
    #[test]
    fn baseline_agrees_with_compiled_path() {
        let (design, part) = DesignGenerator::new(33)
            .behaviors(20)
            .variables(15)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        let objectives = Objectives::new();
        let mut base = BaselineIncremental::new(&design, part.clone()).unwrap();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let procs: Vec<_> = design.processor_ids().collect();
        let nodes: Vec<_> = design.graph().node_ids().collect();
        for (k, &n) in nodes.iter().enumerate() {
            let target: PmRef = procs[k % procs.len()].into();
            assert_eq!(
                base.move_node(n, target).is_ok(),
                inc.move_node(n, target).is_ok()
            );
            let a = baseline_cost(&design, &mut base, &objectives).unwrap();
            let b = cost(&mut inc, &objectives).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "cost diverged after move {k}");
        }
    }
}
