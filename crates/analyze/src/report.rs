//! Structured findings and the aggregated analysis report.

use crate::lint::{LintId, LintLevel};
use slif_core::{ChannelId, NodeId, ValidationIssue, ValidationReport};
use slif_speclang::Span;
use std::fmt;

/// One structured finding of an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which lint produced the finding.
    pub lint: LintId,
    /// The effective level it was reported at (`Warn` or `Deny`; `Allow`ed
    /// findings are suppressed before they reach the report).
    pub level: LintLevel,
    /// The human-readable description, naming every object involved.
    pub message: String,
    /// The primary node involved, when the finding is anchored to one.
    pub node: Option<NodeId>,
    /// The primary channel involved, when the finding is anchored to one.
    pub channel: Option<ChannelId>,
    /// The specification-source location of the primary node, when the
    /// caller supplied a [`SourceMap`](crate::SourceMap).
    pub span: Option<Span>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.level, self.lint, self.message)?;
        if let Some(span) = self.span {
            write!(f, " (spec {span})")?;
        }
        Ok(())
    }
}

/// Every finding of one analyzer run, in pass order, plus a count of the
/// findings `Allow`-level configuration suppressed.
///
/// The report is plain data: running the analyzer twice on the same
/// design yields `==` reports with byte-identical `Display` output — the
/// property suite holds the engine to that.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    findings: Vec<Finding>,
    suppressed: usize,
}

impl AnalysisReport {
    pub(crate) fn new(findings: Vec<Finding>, suppressed: usize) -> Self {
        Self {
            findings,
            suppressed,
        }
    }

    /// All findings, grouped by lint in `A001`… pass order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// The findings of one lint.
    pub fn of(&self, lint: LintId) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(move |f| f.lint == lint)
    }

    /// How many findings `Allow`-level configuration dropped.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Number of `Deny`-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == LintLevel::Deny)
            .count()
    }

    /// Number of `Warn`-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == LintLevel::Warn)
            .count()
    }

    /// Returns `true` when no findings were reported (suppressed ones
    /// do not count against cleanliness).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Returns `true` when at least one finding is `Deny`-level — the
    /// run should fail.
    pub fn has_denials(&self) -> bool {
        self.findings.iter().any(|f| f.level == LintLevel::Deny)
    }

    /// Number of reported findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Returns `true` when no findings were reported.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Bridges the report into the core validation vocabulary:
    /// `Deny` findings become error issues, `Warn` findings become
    /// warnings, each message prefixed with the lint's stable code. The
    /// result merges cleanly into a
    /// [`validate`](slif_core::validate::validate) sweep via
    /// [`ValidationReport::merge`].
    pub fn to_validation_report(&self) -> ValidationReport {
        self.findings
            .iter()
            .map(|f| {
                let message = format!("{}: {}", f.lint, f.message);
                match f.level {
                    LintLevel::Deny => ValidationIssue::error(message),
                    _ => ValidationIssue::warning(message),
                }
            })
            .collect()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analysis: {} deny, {} warn ({} suppressed)",
            self.deny_count(),
            self.warn_count(),
            self.suppressed
        )?;
        for finding in &self.findings {
            write!(f, "\n  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: LintId, level: LintLevel, msg: &str) -> Finding {
        Finding {
            lint,
            level,
            message: msg.to_owned(),
            node: Some(NodeId::from_raw(3)),
            channel: None,
            span: None,
        }
    }

    #[test]
    fn report_counts_and_display() {
        let report = AnalysisReport::new(
            vec![
                finding(LintId::SharedVariableRace, LintLevel::Deny, "racy"),
                finding(LintId::DeadCode, LintLevel::Warn, "dead"),
            ],
            1,
        );
        assert_eq!(report.deny_count(), 1);
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.suppressed(), 1);
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert!(!report.is_clean());
        assert!(report.has_denials());
        assert_eq!(report.of(LintId::DeadCode).count(), 1);
        let s = report.to_string();
        assert!(s.contains("1 deny, 1 warn (1 suppressed)"), "{s}");
        assert!(s.contains("deny A001 shared-variable-race: racy"), "{s}");
        assert!(s.contains("warn A002 dead-code: dead"), "{s}");
    }

    #[test]
    fn empty_report_is_clean() {
        let report = AnalysisReport::default();
        assert!(report.is_clean());
        assert!(report.is_empty());
        assert!(!report.has_denials());
        assert!(report.to_validation_report().is_clean());
    }

    #[test]
    fn finding_display_includes_span() {
        let mut f = finding(LintId::BitwidthMismatch, LintLevel::Warn, "narrow");
        f.span = Some(Span {
            start: 0,
            end: 4,
            line: 7,
            col: 3,
        });
        let s = f.to_string();
        assert!(s.contains("A004"), "{s}");
        assert!(s.contains("7:3"), "{s}");
    }

    #[test]
    fn validation_bridge_maps_levels() {
        let report = AnalysisReport::new(
            vec![
                finding(LintId::RecursionCycle, LintLevel::Deny, "loop"),
                finding(LintId::MissingAnnotation, LintLevel::Warn, "gap"),
            ],
            0,
        );
        let vr = report.to_validation_report();
        assert!(vr.has_errors());
        assert_eq!(vr.errors().count(), 1);
        assert_eq!(vr.warnings().count(), 1);
        assert!(vr.errors().any(|i| i.message().contains("A003")), "{vr}");
        assert!(vr.warnings().any(|i| i.message().contains("A005")), "{vr}");
    }
}
