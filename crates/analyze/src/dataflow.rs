//! The monotone dataflow framework: a worklist fixpoint solver over
//! per-behavior control-flow graphs ([`FlowBehavior`]).
//!
//! The solver is deliberately small and deterministic:
//!
//! * the pending set is a [`BTreeSet`] popped at its minimum node index,
//!   so the visit order — and therefore every intermediate state — is a
//!   function of the graph alone, never of seeding order;
//! * states are `Vec<Option<D>>` with `None` meaning *unreachable*;
//!   passes skip `None` nodes instead of inventing facts about dead code;
//! * widening applies only at a behavior's recorded
//!   [`widen_points`](FlowBehavior::widen_points) (back-edge targets)
//!   once a node has been merged into more than [`WIDEN_AFTER`] times;
//! * every node has a visit budget; exceeding it is a *typed refusal*
//!   ([`AnalysisError::WideningCapExceeded`]), never an unsound answer.

use slif_speclang::FlowBehavior;
use std::collections::BTreeSet;
use std::fmt;

/// Merges applied to one node before the solver switches from join to
/// widening at widen points. Small enough to converge fast, large enough
/// that short loop chains still reach their precise fixpoint.
pub(crate) const WIDEN_AFTER: u32 = 4;

/// A typed analysis refusal. The dataflow engine is *bounded*: rather
/// than loop forever (or silently return a half-converged state) when a
/// fixpoint will not settle within the configured visit budget, it
/// refuses with this error and the affected behavior is reported on by
/// no flow-sensitive lint.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A node's merge count exceeded
    /// [`max_fixpoint_visits`](crate::AnalysisConfig::max_fixpoint_visits)
    /// even though widening was already applied.
    WideningCapExceeded {
        /// The behavior whose fixpoint did not settle.
        behavior: String,
        /// The configured per-node visit cap that was exhausted.
        cap: u32,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::WideningCapExceeded { behavior, cap } => write!(
                f,
                "dataflow fixpoint for behavior `{behavior}` did not settle \
                 within {cap} visits per node (widening cap exceeded)"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// What a transfer function sends along one outgoing edge.
pub(crate) enum EdgeFlow<D> {
    /// Propagate the node's ordinary output state.
    Out,
    /// Propagate an edge-refined state (e.g. a branch condition assumed
    /// true on the taken edge).
    Refined(D),
    /// The edge is provably never taken; propagate nothing.
    Dead,
}

/// One dataflow problem over a [`FlowBehavior`] graph.
///
/// `join` and `widen` merge `from` into `into` and report whether `into`
/// changed; the solver re-queues a node only on change, which (with a
/// finite-height domain or a widening operator) guarantees termination.
pub(crate) trait Problem {
    /// The abstract state attached to each node.
    type State: Clone;

    /// The state at the analysis boundary (entry node for forward
    /// problems, exit node for backward ones).
    fn boundary(&self, b: &FlowBehavior) -> Self::State;

    /// The node's output state given its input state.
    fn transfer(&self, b: &FlowBehavior, node: u32, input: &Self::State) -> Self::State;

    /// What flows along edge `edge` (index into the node's successor
    /// list) given the node's output state. Forward problems refine
    /// branch edges here; the default propagates `out` unchanged.
    fn edge(&self, _b: &FlowBehavior, _node: u32, _edge: usize, _out: &Self::State) -> EdgeFlow<Self::State> {
        EdgeFlow::Out
    }

    /// Merges `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;

    /// Widening merge, applied at back-edge targets once they have been
    /// merged into more than [`WIDEN_AFTER`] times. Defaults to `join`
    /// (correct for finite-height domains like bitsets).
    fn widen(&self, into: &mut Self::State, from: &Self::State) -> bool {
        self.join(into, from)
    }
}

/// Runs `problem` forward over `b` to a fixpoint.
///
/// Returns one `Option<State>` per node: the state at the node's *input*
/// (before its transfer), or `None` when no execution reaches the node.
pub(crate) fn solve_forward<P: Problem>(
    b: &FlowBehavior,
    problem: &P,
    cap: u32,
) -> Result<Vec<Option<P::State>>, AnalysisError> {
    let n = b.nodes.len();
    let mut states: Vec<Option<P::State>> = vec![None; n];
    if n == 0 {
        return Ok(states);
    }
    let widen_point: Vec<bool> = {
        let mut w = vec![false; n];
        for &p in &b.widen_points {
            if (p as usize) < n {
                w[p as usize] = true;
            }
        }
        w
    };
    let mut visits = vec![0u32; n];
    states[0] = Some(problem.boundary(b));
    let mut pending: BTreeSet<u32> = BTreeSet::new();
    pending.insert(0);
    while let Some(node) = pending.pop_first() {
        let Some(input) = states[node as usize].as_ref() else {
            continue;
        };
        let out = problem.transfer(b, node, input);
        let succs = b.nodes[node as usize].succs.clone();
        for (ei, &succ) in succs.iter().enumerate() {
            if succ as usize >= n {
                continue;
            }
            let flowing = match problem.edge(b, node, ei, &out) {
                EdgeFlow::Out => out.clone(),
                EdgeFlow::Refined(s) => s,
                EdgeFlow::Dead => continue,
            };
            if merge::<P>(
                problem,
                &mut states[succ as usize],
                flowing,
                widen_point[succ as usize],
                &mut visits[succ as usize],
            ) {
                if visits[succ as usize] > cap {
                    return Err(AnalysisError::WideningCapExceeded {
                        behavior: b.name.clone(),
                        cap,
                    });
                }
                pending.insert(succ);
            }
        }
    }
    Ok(states)
}

/// Runs `problem` backward over `b` to a fixpoint (the graph is walked
/// against its edges; `boundary` seeds the exit node).
///
/// Returns one `Option<State>` per node: the state at the node's
/// *output* (after it, i.e. the join over what its successors need), or
/// `None` when the node cannot reach the exit.
pub(crate) fn solve_backward<P: Problem>(
    b: &FlowBehavior,
    problem: &P,
    cap: u32,
) -> Result<Vec<Option<P::State>>, AnalysisError> {
    let n = b.nodes.len();
    let mut states: Vec<Option<P::State>> = vec![None; n];
    if n == 0 || b.exit as usize >= n {
        return Ok(states);
    }
    let preds = b.preds();
    let mut visits = vec![0u32; n];
    states[b.exit as usize] = Some(problem.boundary(b));
    let mut pending: BTreeSet<u32> = BTreeSet::new();
    pending.insert(b.exit);
    while let Some(node) = pending.pop_first() {
        let Some(output) = states[node as usize].as_ref() else {
            continue;
        };
        let before = problem.transfer(b, node, output);
        for &pred in &preds[node as usize] {
            if pred as usize >= n {
                continue;
            }
            if merge::<P>(
                problem,
                &mut states[pred as usize],
                before.clone(),
                false,
                &mut visits[pred as usize],
            ) {
                if visits[pred as usize] > cap {
                    return Err(AnalysisError::WideningCapExceeded {
                        behavior: b.name.clone(),
                        cap,
                    });
                }
                pending.insert(pred);
            }
        }
    }
    Ok(states)
}

/// Merges `incoming` into `slot`, counting the merge and switching to
/// widening at widen points after [`WIDEN_AFTER`] merges. Returns
/// whether the slot changed.
fn merge<P: Problem>(
    problem: &P,
    slot: &mut Option<P::State>,
    incoming: P::State,
    widen_here: bool,
    visits: &mut u32,
) -> bool {
    *visits += 1;
    match slot {
        None => {
            *slot = Some(incoming);
            true
        }
        Some(current) => {
            if widen_here && *visits > WIDEN_AFTER {
                problem.widen(current, &incoming)
            } else {
                problem.join(current, &incoming)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::{parse, FlowProgram};

    /// "Reached" analysis: unit domain; tests the traversal skeleton.
    struct Reachable;
    impl Problem for Reachable {
        type State = ();
        fn boundary(&self, _b: &FlowBehavior) {}
        fn transfer(&self, _b: &FlowBehavior, _node: u32, _input: &()) {}
        fn join(&self, _into: &mut (), _from: &()) -> bool {
            false
        }
    }

    /// Loop-trip counter with no widening: each join strictly increases,
    /// so the visit cap must fire on any loop.
    struct Counter;
    impl Problem for Counter {
        type State = u64;
        fn boundary(&self, _b: &FlowBehavior) -> u64 {
            0
        }
        fn transfer(&self, _b: &FlowBehavior, _node: u32, input: &u64) -> u64 {
            input + 1
        }
        fn join(&self, into: &mut u64, from: &u64) -> bool {
            if *from > *into {
                *into = *from;
                true
            } else {
                false
            }
        }
    }

    fn behavior(src: &str, name: &str) -> FlowBehavior {
        let p = FlowProgram::from_spec(&parse(src).expect("parse"));
        p.get(name).expect("behavior").clone()
    }

    #[test]
    fn forward_marks_unreachable_nodes_none() {
        let b = behavior(
            "system T;\nvar x : int<8>;\n\
             func F(v : int<8>) -> int<8> { return v; x = 3; }\n",
            "F",
        );
        let states = solve_forward(&b, &Reachable, 64).expect("solve");
        let assign = b
            .nodes
            .iter()
            .position(|n| matches!(n.op, slif_speclang::FlowOp::Assign { .. }))
            .expect("assign after return");
        assert!(states[assign].is_none(), "dead code must stay None");
        assert!(states[b.exit as usize].is_some());
    }

    #[test]
    fn unbounded_growth_hits_the_typed_cap() {
        let b = behavior(
            "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n",
            "Main",
        );
        let err = solve_forward(&b, &Counter, 16).expect_err("must refuse");
        assert!(err.to_string().contains("Main"), "{err}");
        let AnalysisError::WideningCapExceeded { behavior, cap } = err;
        assert_eq!(behavior, "Main");
        assert_eq!(cap, 16);
    }

    #[test]
    fn backward_reaches_all_exit_connected_nodes() {
        let b = behavior(
            "system T;\nvar x : int<8>;\n\
             proc P() { if x > 0 { x = 1; } else { x = 2; } }\n",
            "P",
        );
        let states = solve_backward(&b, &Reachable, 64).expect("solve");
        // Every node in this behavior reaches the exit.
        for (i, s) in states.iter().enumerate() {
            assert!(s.is_some(), "node {i} should reach exit");
        }
    }
}
