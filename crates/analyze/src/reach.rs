//! `A002 dead-code`: nodes unreachable from every process root.
//!
//! Processes are the access graph's entry points; anything no process
//! can reach through call/message/read/write edges is dead — it will
//! never execute or be accessed, yet it still consumes estimation time
//! and, once mapped, component area. Spec slicing work (Oda & Chang)
//! makes the same observation for VDM-SL: the reachable sub-spec is the
//! spec. This pass is one BFS over the PR-3 CSR adjacency.

use crate::analyzer::{Ctx, Sink};
use crate::lint::LintId;
use slif_core::{AccessTarget, NodeId};

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    let cd = ctx.cd;
    if cd.node_count() == 0 {
        return;
    }
    let roots: Vec<NodeId> = cd
        .process_nodes()
        .iter()
        .copied()
        .filter(|p| p.index() < cd.node_count())
        .collect();
    if roots.is_empty() {
        sink.emit(
            LintId::DeadCode,
            None,
            None,
            format!(
                "design has no process roots: all {} nodes are unreachable",
                cd.node_count()
            ),
        );
        return;
    }

    let mut reachable = vec![false; cd.node_count()];
    let mut stack = roots;
    while let Some(n) = stack.pop() {
        if reachable[n.index()] {
            continue;
        }
        reachable[n.index()] = true;
        for &c in cd.channels_of(n) {
            if let AccessTarget::Node(d) = cd.chan_dst(c) {
                if d.index() < cd.node_count() && !reachable[d.index()] {
                    stack.push(d);
                }
            }
        }
    }

    for n in cd.node_ids() {
        if reachable[n.index()] {
            continue;
        }
        let what = if cd.node_kind(n).is_behavior() {
            "behavior"
        } else {
            // A variable with no access channels at all is a plain unused
            // declaration — the access graph gives it no behavior to lose,
            // and the shipped corpus intentionally declares such registers.
            // Dataflow only has something to say when accesses *exist* but
            // cannot execute (their sources are dead or dangling).
            if cd.accessors_of(n).is_empty() {
                continue;
            }
            "variable"
        };
        sink.emit(
            LintId::DeadCode,
            Some(n),
            None,
            format!(
                "{what} {n} ({}) is unreachable from every process root",
                cd.node_name(n)
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{AnalysisConfig, LintId};
    use crate::analyze;
    use slif_core::{AccessKind, Design, NodeKind};

    #[test]
    fn orphan_behavior_and_its_variable_are_dead() {
        let mut d = Design::new("dead");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let used = d.graph_mut().add_node("used", NodeKind::scalar(8));
        let orphan_b = d.graph_mut().add_node("orphan_proc", NodeKind::procedure());
        let orphan_v = d.graph_mut().add_node("orphan_var", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, used.into(), AccessKind::Write)
            .expect("fixture channel");
        // The dead procedure accesses the variable, so the variable's
        // accesses can never execute either.
        d.graph_mut()
            .add_channel(orphan_b, orphan_v.into(), AccessKind::Write)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        let dead: Vec<_> = report.of(LintId::DeadCode).collect();
        assert_eq!(dead.len(), 2, "{report}");
        assert!(dead
            .iter()
            .any(|f| f.message.contains("behavior") && f.message.contains("orphan_proc")));
        assert!(dead
            .iter()
            .any(|f| f.message.contains("variable") && f.message.contains("orphan_var")));
    }

    #[test]
    fn unused_declaration_is_not_dead_code() {
        // A variable nothing accesses has no dataflow to lose; the lint
        // leaves plain unused declarations alone.
        let mut d = Design::new("unused");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let used = d.graph_mut().add_node("used", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, used.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut().add_node("spare_reg", NodeKind::scalar(8));
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::DeadCode).count(), 0, "{report}");
    }

    #[test]
    fn transitively_reached_nodes_are_live() {
        let mut d = Design::new("live");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let helper = d.graph_mut().add_node("helper", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, helper.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(helper, v.into(), AccessKind::Read)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::DeadCode).count(), 0, "{report}");
    }

    #[test]
    fn rootless_design_is_one_finding() {
        let mut d = Design::new("rootless");
        let a = d.graph_mut().add_node("a", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(a, v.into(), AccessKind::Read)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        let dead: Vec<_> = report.of(LintId::DeadCode).collect();
        assert_eq!(dead.len(), 1, "{report}");
        assert!(dead[0].message.contains("no process roots"));
    }

    #[test]
    fn empty_design_is_clean() {
        let d = Design::new("empty");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert!(report.is_clean(), "{report}");
    }
}
