//! # slif-analyze — specification-level lint & dataflow engine
//!
//! The SLIF premise is that the access graph plus annotations makes
//! design questions answerable by cheap graph traversals. The estimators
//! exploit that for *numbers*; this crate exploits it for *checks*: a
//! lint framework, five graph-level analyses, and a flow-sensitive
//! dataflow engine (abstract interpretation over behavior bodies) that
//! catch broken specifications before they flow into estimation and
//! exploration — the analysis-before-estimation stage of the pipeline.
//!
//! | lint | default | what it catches |
//! |---|---|---|
//! | `A001 shared-variable-race` | deny | *proven* concurrent unserialized writes to a shared variable |
//! | `A002 dead-code` | warn | behaviors/variables unreachable from any process root |
//! | `A003 recursion-cycle` | deny | access-graph cycles that make Eq. 1 non-terminating |
//! | `A004 bitwidth-mismatch` | warn | channel bits vs. scalar width / mapped bus bitwidth |
//! | `A005 missing-annotation` | warn | ict/size gaps on classes the allocation instantiates |
//! | `A006 value-range-overflow` | deny | stores/returns whose value range never fits the declared width |
//! | `A007 uninitialized-read` | deny | locals read with a definition on no path from entry |
//! | `A008 dead-store` | warn | stores to locals no later read observes |
//! | `A009 constant-condition` | warn | branches decided the same way on every execution |
//! | `A010 unproven-interleaving` | warn | race-shaped access pairs no observed execution proves |
//!
//! `A001`–`A005` and `A010` read the compiled access graph;
//! `A006`–`A009` run a monotone worklist fixpoint (interval and bitset
//! domains, widening at loop heads) over the [`FlowProgram`] lowered
//! from the same specification — see
//! [`analyze_compiled_with_flow`]. In-spec `@allow(A00x)` suppressions
//! are honored and counted, never silently dropped.
//!
//! The engine is *total* (it never fails — corrupted designs produce
//! findings, not panics; a behavior whose fixpoint exceeds the visit cap
//! degrades to ⊤, with [`check_flow_bounded`] as the typed-refusal
//! surface) and *pure* (same inputs, `==` report with byte-identical
//! rendering). Findings carry node/channel locations and, through a
//! [`SourceMap`], specification source spans.
//!
//! [`FlowProgram`]: slif_speclang::FlowProgram
//!
//! # Examples
//!
//! ```
//! use slif_analyze::{analyze, AnalysisConfig, LintId};
//! use slif_core::{AccessKind, Design, NodeKind};
//!
//! let mut d = Design::new("demo");
//! let a = d.graph_mut().add_node("A", NodeKind::process());
//! let b = d.graph_mut().add_node("B", NodeKind::process());
//! let v = d.graph_mut().add_node("shared", NodeKind::scalar(8));
//! d.graph_mut().add_channel(a, v.into(), AccessKind::Write)?;
//! d.graph_mut().add_channel(b, v.into(), AccessKind::Write)?;
//!
//! let report = analyze(&d, None, &AnalysisConfig::new());
//! assert_eq!(report.of(LintId::SharedVariableRace).count(), 1);
//! assert!(report.has_denials());
//! # Ok::<(), slif_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::expect_used)]

mod analyzer;
mod annotation;
mod bitwidth;
mod constcond;
mod cycle;
mod dataflow;
mod deadstore;
mod domains;
mod flowdrive;
mod lint;
mod memo;
mod race;
mod range;
mod reach;
mod report;
mod uninit;

pub use analyzer::{
    analyze, analyze_compiled, analyze_compiled_with_flow, analyze_compiled_with_sources,
    analyze_with_sources, check_flow_bounded, SourceMap,
};
pub use dataflow::AnalysisError;
pub use lint::{AnalysisConfig, LintId, LintLevel, LINT_COUNT};
pub use memo::{
    analyze_compiled_memoized, analyze_compiled_memoized_with_flow, AnalysisDirt, AnalysisMemo,
};
pub use report::{AnalysisReport, Finding};
