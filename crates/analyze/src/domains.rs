//! Abstract domains for the flow-sensitive lints.
//!
//! The workhorse is [`Interval`]: a join-semilattice of `i128` ranges
//! with explicit infinities, saturating arithmetic and a widening
//! operator that jumps unstable bounds to ±∞. On top of it,
//! [`ValueProblem`] instantiates the generic solver as a forward
//! value-range analysis over one behavior: per-slot intervals, branch
//! refinement on comparisons, declared-range resets at user calls and
//! receives. Both `A006` (range/overflow) and `A009` (constant
//! condition) consume its fixpoint.

use crate::dataflow::{solve_forward, AnalysisError, EdgeFlow, Problem};
use slif_speclang::ast::{BinOp, UnOp};
use slif_speclang::{FlowBehavior, FlowExpr, FlowOp, SlotInfo, SlotKind};
use std::collections::BTreeMap;
use std::fmt;

/// Positive infinity sentinel. Half of `i128::MAX` leaves headroom so
/// saturating arithmetic can never overflow the machine type.
pub(crate) const INF: i128 = i128::MAX / 2;
/// Negative infinity sentinel.
pub(crate) const NEG_INF: i128 = -INF;

/// A non-empty integer range `[lo, hi]` with ±∞ sentinels.
///
/// Emptiness is represented *outside* the type (unreachable states are
/// `None` at the solver level; refinement returns `None` on an empty
/// meet), which keeps every stored interval well-formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interval {
    pub lo: i128,
    pub hi: i128,
}

/// Clamps a raw bound into the representable sentinel range.
fn sat(v: i128) -> i128 {
    v.clamp(NEG_INF, INF)
}

impl Interval {
    pub(crate) const TOP: Interval = Interval { lo: NEG_INF, hi: INF };

    pub(crate) fn new(lo: i128, hi: i128) -> Interval {
        Interval { lo: sat(lo), hi: sat(hi) }
    }

    pub(crate) fn constant(v: i128) -> Interval {
        Interval::new(v, v)
    }

    /// The least upper bound.
    pub(crate) fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The greatest lower bound; `None` when the ranges are disjoint.
    pub(crate) fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard interval widening: a bound that moved since `self` jumps
    /// to its infinity, so loops converge in one extra pass.
    pub(crate) fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { NEG_INF } else { self.lo },
            hi: if next.hi > self.hi { INF } else { self.hi },
        }
    }

    /// Whether the two ranges share no value.
    pub(crate) fn disjoint(self, other: Interval) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }

    pub(crate) fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo.saturating_add(o.lo), self.hi.saturating_add(o.hi))
    }

    pub(crate) fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo.saturating_sub(o.hi), self.hi.saturating_sub(o.lo))
    }

    pub(crate) fn neg(self) -> Interval {
        Interval::new(self.hi.saturating_neg(), self.lo.saturating_neg())
    }

    pub(crate) fn mul(self, o: Interval) -> Interval {
        let mut lo = INF;
        let mut hi = NEG_INF;
        for a in [self.lo, self.hi] {
            for b in [o.lo, o.hi] {
                // A saturated (infinite) operand poisons precision in its
                // sign direction; checked arithmetic catches the rest.
                let p = match a.checked_mul(b) {
                    Some(p) => sat(p),
                    None => {
                        if (a > 0) == (b > 0) {
                            INF
                        } else {
                            NEG_INF
                        }
                    }
                };
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Interval { lo, hi }
    }

    pub(crate) fn div(self, o: Interval) -> Interval {
        // A divisor range containing zero can trap or produce anything;
        // claim nothing.
        if o.lo <= 0 && o.hi >= 0 {
            return Interval::TOP;
        }
        let mut lo = INF;
        let mut hi = NEG_INF;
        for a in [self.lo, self.hi] {
            for b in [o.lo, o.hi] {
                let q = sat(a.checked_div(b).unwrap_or(0));
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo, hi }
    }

    pub(crate) fn rem(self, o: Interval) -> Interval {
        if o.lo <= 0 && o.hi >= 0 {
            return Interval::TOP;
        }
        // |a % b| < |b|; sign follows the dividend.
        let m = o.lo.abs().max(o.hi.abs()).saturating_sub(1);
        let lo = if self.lo < 0 { -m } else { 0 };
        let hi = if self.hi > 0 { m } else { 0 };
        Interval::new(lo, hi)
    }

    pub(crate) fn abs(self) -> Interval {
        if self.lo >= 0 {
            self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            Interval::new(0, self.hi.max(self.lo.saturating_neg()))
        }
    }

    pub(crate) fn min_of(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.min(o.hi))
    }

    pub(crate) fn max_of(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.max(o.hi))
    }

    /// The truth of the interval as a condition: `Some(false)` when it is
    /// exactly zero, `Some(true)` when zero lies outside it.
    pub(crate) fn truth(self) -> Option<bool> {
        if self.lo == 0 && self.hi == 0 {
            Some(false)
        } else if self.lo > 0 || self.hi < 0 {
            Some(true)
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo <= NEG_INF, self.hi >= INF) {
            (true, true) => write!(f, "[-inf, +inf]"),
            (true, false) => write!(f, "[-inf, {}]", self.hi),
            (false, true) => write!(f, "[{}, +inf]", self.lo),
            (false, false) => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

/// The values an `int<N>` storage location can represent. The
/// specification language keeps widths storage-level, sign-agnostic:
/// `int<N>` holds `-(2^(N-1)) ..= 2^N - 1` (either interpretation fits).
pub(crate) fn int_range(w: u32) -> Interval {
    if w > 0 && w < 126 {
        Interval::new(-(1i128 << (w - 1)), (1i128 << w) - 1)
    } else {
        Interval::TOP
    }
}

/// The values a slot can represent, from its declaration.
pub(crate) fn declared_range(info: &SlotInfo) -> Interval {
    if info.is_bool {
        return Interval::new(0, 1);
    }
    match info.width {
        Some(w) => int_range(w),
        None => Interval::TOP,
    }
}

/// The comparison `lhs op rhs` over intervals, as a `{0,1}` interval.
fn compare(op: BinOp, l: Interval, r: Interval) -> Interval {
    let (t, f) = (Interval::constant(1), Interval::constant(0));
    let both = Interval::new(0, 1);
    match op {
        BinOp::Eq => {
            if l.disjoint(r) {
                f
            } else if l.lo == l.hi && r.lo == r.hi && l.lo == r.lo {
                t
            } else {
                both
            }
        }
        BinOp::Ne => {
            if l.disjoint(r) {
                t
            } else if l.lo == l.hi && r.lo == r.hi && l.lo == r.lo {
                f
            } else {
                both
            }
        }
        BinOp::Lt => {
            if l.hi < r.lo {
                t
            } else if l.lo >= r.hi {
                f
            } else {
                both
            }
        }
        BinOp::Le => {
            if l.hi <= r.lo {
                t
            } else if l.lo > r.hi {
                f
            } else {
                both
            }
        }
        BinOp::Gt => compare(BinOp::Lt, r, l),
        BinOp::Ge => compare(BinOp::Le, r, l),
        _ => both,
    }
}

/// Boolean connectives over `{0,1}` intervals.
fn logic(op: BinOp, l: Interval, r: Interval) -> Interval {
    let (lt, rt) = (l.truth(), r.truth());
    let known = |b: bool| Interval::constant(i128::from(b));
    match op {
        BinOp::And => match (lt, rt) {
            (Some(false), _) | (_, Some(false)) => known(false),
            (Some(true), Some(true)) => known(true),
            _ => Interval::new(0, 1),
        },
        BinOp::Or => match (lt, rt) {
            (Some(true), _) | (_, Some(true)) => known(true),
            (Some(false), Some(false)) => known(false),
            _ => Interval::new(0, 1),
        },
        _ => Interval::new(0, 1),
    }
}

/// Callee return-range summaries, by behavior name. Built bottom-up over
/// the call graph; missing entries (unknown callees, call cycles broken
/// at the back edge) evaluate to [`Interval::TOP`].
pub(crate) type Summaries = BTreeMap<String, Interval>;

/// Evaluates an expression to an interval in `state` (one interval per
/// slot of the behavior).
pub(crate) fn eval(
    e: &FlowExpr,
    state: &[Interval],
    slots: &[SlotInfo],
    summaries: &Summaries,
) -> Interval {
    match e {
        FlowExpr::Const(v) => Interval::constant(sat(*v)),
        FlowExpr::Slot(s) => state
            .get(*s as usize)
            .copied()
            .unwrap_or(Interval::TOP),
        // Array elements are not tracked element-wise; they hold their
        // declared range (element writes outside it are flagged at the
        // write by A006).
        FlowExpr::Index { slot, .. } => slots
            .get(*slot as usize)
            .map_or(Interval::TOP, declared_range),
        FlowExpr::Call { callee, args } => {
            let arg = |i: usize| {
                args.get(i)
                    .map_or(Interval::TOP, |a| eval(a, state, slots, summaries))
            };
            match callee.as_str() {
                "min" => arg(0).min_of(arg(1)),
                "max" => arg(0).max_of(arg(1)),
                "abs" => arg(0).abs(),
                _ => summaries.get(callee).copied().unwrap_or(Interval::TOP),
            }
        }
        FlowExpr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, state, slots, summaries);
            let r = eval(rhs, state, slots, summaries);
            match op {
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::Div => l.div(r),
                BinOp::Rem => l.rem(r),
                BinOp::And | BinOp::Or => logic(*op, l, r),
                _ => compare(*op, l, r),
            }
        }
        FlowExpr::Unary { op, operand } => {
            let v = eval(operand, state, slots, summaries);
            match op {
                UnOp::Neg => v.neg(),
                UnOp::Not => match v.truth() {
                    Some(b) => Interval::constant(i128::from(!b)),
                    None => Interval::new(0, 1),
                },
            }
        }
        FlowExpr::Unknown => Interval::TOP,
    }
}

/// The forward value-range problem over one behavior.
pub(crate) struct ValueProblem<'a> {
    pub summaries: &'a Summaries,
}

/// Whether executing this node can run user-defined code (whose writes
/// to globals/ports the intra-procedural state cannot track).
fn calls_user(op: &FlowOp) -> bool {
    match op {
        FlowOp::Call { callee, args } => {
            !slif_speclang::flow::is_builtin(callee)
                || args.iter().any(FlowExpr::calls_user_code)
        }
        FlowOp::Assign { index, value, .. } => {
            value.calls_user_code()
                || index.as_ref().is_some_and(FlowExpr::calls_user_code)
        }
        FlowOp::Branch { cond, .. } => cond.calls_user_code(),
        FlowOp::Send { value, .. } => value.calls_user_code(),
        FlowOp::Return { value } => value.as_ref().is_some_and(FlowExpr::calls_user_code),
        _ => false,
    }
}

/// Resets every global/port slot to its declared range (the
/// intra-procedural summary of "someone else may have written it").
fn clamp_shared(state: &mut [Interval], slots: &[SlotInfo]) {
    for (i, info) in slots.iter().enumerate() {
        if matches!(info.kind, SlotKind::Global | SlotKind::Port(_)) {
            state[i] = declared_range(info);
        }
    }
}

impl Problem for ValueProblem<'_> {
    type State = Vec<Interval>;

    fn boundary(&self, b: &FlowBehavior) -> Vec<Interval> {
        // Inputs are assumed in their declared ranges (the caller's
        // violations are the caller's findings); loop variables are Top
        // until their init assigns them.
        b.slots.iter().map(declared_range).collect()
    }

    fn transfer(&self, b: &FlowBehavior, node: u32, input: &Vec<Interval>) -> Vec<Interval> {
        let n = &b.nodes[node as usize];
        let mut out = input.clone();
        match &n.op {
            FlowOp::Assign { dst, index, value } => {
                let v = eval(value, input, &b.slots, self.summaries);
                if calls_user(&n.op) {
                    clamp_shared(&mut out, &b.slots);
                }
                if let Some(slot) = out.get_mut(*dst as usize) {
                    if index.is_none() {
                        // Whole-slot write. Model the store as clamped to
                        // the declared range: the violation (if any) is
                        // A006's finding at this node; downstream facts
                        // assume the declared storage.
                        let info = &b.slots[*dst as usize];
                        let declared = declared_range(info);
                        *slot = v.meet(declared).unwrap_or(declared);
                    }
                    // Element writes leave the per-array summary at its
                    // declared range.
                }
            }
            FlowOp::Receive { dst, .. } => {
                if let Some(info) = b.slots.get(*dst as usize) {
                    out[*dst as usize] = declared_range(info);
                }
            }
            op if calls_user(op) => clamp_shared(&mut out, &b.slots),
            _ => {}
        }
        out
    }

    fn edge(
        &self,
        b: &FlowBehavior,
        node: u32,
        edge: usize,
        out: &Vec<Interval>,
    ) -> EdgeFlow<Vec<Interval>> {
        let FlowOp::Branch { cond, .. } = &b.nodes[node as usize].op else {
            return EdgeFlow::Out;
        };
        // succs[0] is the taken edge, succs[1] the fall-through.
        let truth = edge == 0;
        match refine(cond, out, b, self.summaries, truth) {
            Refinement::State(s) => EdgeFlow::Refined(s),
            Refinement::Dead => EdgeFlow::Dead,
            Refinement::Unchanged => EdgeFlow::Out,
        }
    }

    fn join(&self, into: &mut Vec<Interval>, from: &Vec<Interval>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    fn widen(&self, into: &mut Vec<Interval>, from: &Vec<Interval>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let w = a.widen(a.join(*b));
            if w != *a {
                *a = w;
                changed = true;
            }
        }
        changed
    }
}

enum Refinement {
    State(Vec<Interval>),
    Dead,
    Unchanged,
}

/// Refines `state` under the assumption that `cond` evaluates to
/// `truth`. Handles boolean slots, negation, conjunction/disjunction and
/// comparisons with a slot on either side.
fn refine(
    cond: &FlowExpr,
    state: &[Interval],
    b: &FlowBehavior,
    summaries: &Summaries,
    truth: bool,
) -> Refinement {
    match cond {
        FlowExpr::Slot(s) => {
            let Some(cur) = state.get(*s as usize) else {
                return Refinement::Unchanged;
            };
            let want = Interval::constant(i128::from(truth));
            match cur.meet(want) {
                Some(m) if m == *cur => Refinement::Unchanged,
                Some(m) => {
                    let mut next = state.to_vec();
                    next[*s as usize] = m;
                    Refinement::State(next)
                }
                None => Refinement::Dead,
            }
        }
        FlowExpr::Unary { op: UnOp::Not, operand } => {
            refine(operand, state, b, summaries, !truth)
        }
        FlowExpr::Binary { op, lhs, rhs } => {
            let chain = |first: &FlowExpr, second: &FlowExpr| {
                // Both conjuncts hold: refine under the first, then the
                // second on the result.
                match refine(first, state, b, summaries, truth) {
                    Refinement::Dead => Refinement::Dead,
                    Refinement::State(s) => match refine(second, &s, b, summaries, truth) {
                        Refinement::Unchanged => Refinement::State(s),
                        other => other,
                    },
                    Refinement::Unchanged => refine(second, state, b, summaries, truth),
                }
            };
            match (op, truth) {
                (BinOp::And, true) | (BinOp::Or, false) => chain(lhs, rhs),
                (BinOp::And, false) | (BinOp::Or, true) => Refinement::Unchanged,
                _ => refine_cmp(*op, lhs, rhs, state, b, summaries, truth),
            }
        }
        _ => Refinement::Unchanged,
    }
}

/// Flips a comparison for use when the operands swap sides.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The negation of a comparison, for the fall-through edge.
fn negate(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => return None,
    })
}

#[allow(clippy::too_many_arguments)]
fn refine_cmp(
    op: BinOp,
    lhs: &FlowExpr,
    rhs: &FlowExpr,
    state: &[Interval],
    b: &FlowBehavior,
    summaries: &Summaries,
    truth: bool,
) -> Refinement {
    let (slot, other, op) = match (lhs, rhs) {
        (FlowExpr::Slot(s), other) => (*s, other, op),
        (other, FlowExpr::Slot(s)) => (*s, other, flip(op)),
        _ => return Refinement::Unchanged,
    };
    let op = if truth {
        op
    } else {
        match negate(op) {
            Some(n) => n,
            None => return Refinement::Unchanged,
        }
    };
    let Some(&cur) = state.get(slot as usize) else {
        return Refinement::Unchanged;
    };
    let o = eval(other, state, &b.slots, summaries);
    let bound = match op {
        BinOp::Lt => Interval::new(NEG_INF, o.hi.saturating_sub(1)),
        BinOp::Le => Interval::new(NEG_INF, o.hi),
        BinOp::Gt => Interval::new(o.lo.saturating_add(1), INF),
        BinOp::Ge => Interval::new(o.lo, INF),
        BinOp::Eq => o,
        // `!=` only refines against a point.
        BinOp::Ne if o.lo == o.hi && cur.lo == o.lo && cur.lo < cur.hi => {
            Interval::new(cur.lo + 1, cur.hi)
        }
        BinOp::Ne if o.lo == o.hi && cur.hi == o.lo && cur.lo < cur.hi => {
            Interval::new(cur.lo, cur.hi - 1)
        }
        _ => return Refinement::Unchanged,
    };
    match cur.meet(bound) {
        Some(m) if m == cur => Refinement::Unchanged,
        Some(m) => {
            let mut next = state.to_vec();
            next[slot as usize] = m;
            Refinement::State(next)
        }
        None => Refinement::Dead,
    }
}

/// Solves the value-range problem for one behavior: per-node input
/// states (interval per slot), `None` for unreachable nodes.
pub(crate) fn solve_values(
    b: &FlowBehavior,
    summaries: &Summaries,
    cap: u32,
) -> Result<Vec<Option<Vec<Interval>>>, AnalysisError> {
    solve_forward(b, &ValueProblem { summaries }, cap)
}

/// The behavior's return-range summary given its solved states: the join
/// of every reachable `return` value, clamped into the declared return
/// range (callers trust the declaration; the violation is flagged at the
/// return site).
pub(crate) fn summarize_returns(
    b: &FlowBehavior,
    states: &[Option<Vec<Interval>>],
    summaries: &Summaries,
) -> Interval {
    let declared = b.ret_width.map_or(Interval::TOP, int_range);
    let mut acc: Option<Interval> = None;
    for (i, n) in b.nodes.iter().enumerate() {
        let FlowOp::Return { value: Some(v) } = &n.op else {
            continue;
        };
        let Some(Some(state)) = states.get(i) else {
            continue;
        };
        let r = eval(v, state, &b.slots, summaries);
        acc = Some(match acc {
            Some(a) => a.join(r),
            None => r,
        });
    }
    match acc {
        Some(a) => a.meet(declared).unwrap_or(declared),
        None => declared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::{parse, FlowProgram};

    #[test]
    fn interval_lattice_ops() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.join(b), Interval::new(0, 20));
        assert_eq!(a.meet(b), Some(Interval::new(5, 10)));
        assert_eq!(a.meet(Interval::new(11, 12)), None);
        assert!(a.disjoint(Interval::new(11, 12)));
        assert_eq!(a.widen(Interval::new(0, 11)).hi, INF);
        assert_eq!(a.widen(Interval::new(-1, 10)).lo, NEG_INF);
        assert_eq!(a.widen(a), a);
        assert_eq!(Interval::constant(3).to_string(), "[3, 3]");
        assert_eq!(Interval::TOP.to_string(), "[-inf, +inf]");
    }

    #[test]
    fn interval_arithmetic_saturates() {
        let a = Interval::new(2, 3);
        let b = Interval::new(-1, 4);
        assert_eq!(a.add(b), Interval::new(1, 7));
        assert_eq!(a.sub(b), Interval::new(-2, 4));
        assert_eq!(a.mul(b), Interval::new(-3, 12));
        assert_eq!(a.neg(), Interval::new(-3, -2));
        assert_eq!(Interval::new(10, 20).div(Interval::new(2, 5)), Interval::new(2, 10));
        assert_eq!(Interval::new(1, 2).div(Interval::new(-1, 1)), Interval::TOP);
        assert_eq!(Interval::new(-7, 9).rem(Interval::new(4, 4)), Interval::new(-3, 3));
        assert_eq!(Interval::new(-5, 3).abs(), Interval::new(0, 5));
        assert_eq!(Interval::TOP.mul(Interval::TOP), Interval::TOP);
        assert_eq!(
            Interval::new(i128::MAX / 3, i128::MAX / 3).mul(Interval::constant(4)).hi,
            INF
        );
    }

    #[test]
    fn declared_ranges_follow_storage_widths() {
        let slot = |width, is_bool| SlotInfo {
            name: "s".into(),
            kind: SlotKind::Local,
            width,
            is_bool,
            is_array: false,
        };
        assert_eq!(declared_range(&slot(Some(8), false)), Interval::new(-128, 255));
        assert_eq!(declared_range(&slot(None, true)), Interval::new(0, 1));
        assert_eq!(declared_range(&slot(None, false)), Interval::TOP);
    }

    fn solved(src: &str, name: &str) -> (FlowBehavior, Vec<Option<Vec<Interval>>>) {
        let p = FlowProgram::from_spec(&parse(src).expect("parse"));
        let b = p.get(name).expect("behavior").clone();
        let states = solve_values(&b, &Summaries::new(), 64).expect("solve");
        (b, states)
    }

    #[test]
    fn loop_header_refines_the_induction_variable() {
        let (b, states) = solved(
            "system T;\nvar a : int<8>[10];\nproc P() { for i in 0 .. 9 { a[i] = i; } }\n",
            "P",
        );
        let i_slot = b
            .slots
            .iter()
            .position(|s| s.name == "i")
            .expect("loop var slot");
        // At the (reachable) element write inside the body, i ∈ [0, 9].
        let write = b
            .nodes
            .iter()
            .position(|n| matches!(&n.op, FlowOp::Assign { index: Some(_), .. }))
            .expect("element write");
        let state = states[write].as_ref().expect("reachable");
        assert_eq!(state[i_slot], Interval::new(0, 9));
    }

    #[test]
    fn branch_refinement_narrows_both_edges() {
        let (b, states) = solved(
            "system T;\nvar x : int<8>;\nvar y : int<8>;\n\
             proc P() { if x > 10 { y = 1; } else { y = 2; } }\n",
            "P",
        );
        let x = b.slots.iter().position(|s| s.name == "x").expect("x");
        let writes: Vec<usize> = b
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(&n.op, FlowOp::Assign { .. }))
            .map(|(i, _)| i)
            .collect();
        let then_state = states[writes[0]].as_ref().expect("then reachable");
        let else_state = states[writes[1]].as_ref().expect("else reachable");
        assert_eq!(then_state[x], Interval::new(11, 255));
        assert_eq!(else_state[x], Interval::new(-128, 10));
    }

    #[test]
    fn widening_settles_an_unbounded_accumulator() {
        let (b, states) = solved(
            "system T;\nvar x : int<32>;\nprocess Main { x = x + 1; wait 1; }\n",
            "Main",
        );
        // The fixpoint converged within the cap (no error) and the
        // accumulated range is the declared storage of x at the write.
        let assign = b
            .nodes
            .iter()
            .position(|n| matches!(&n.op, FlowOp::Assign { .. }))
            .expect("assign");
        assert!(states[assign].is_some());
    }
}
