//! `A006 value-range-overflow`: definite out-of-range stores.
//!
//! Consumes the per-behavior interval fixpoint ([`solve_values`]) and
//! flags a write (or `return`) whose computed value range is *entirely*
//! disjoint from the target's representable range. That makes `A006` a
//! true-positive upgrade over `A004`'s width heuristics: an `A006`
//! finding means every execution reaching the statement stores an
//! unrepresentable value — inputs permitting, there is no false-positive
//! mode short of dead code.
//!
//! [`solve_values`]: crate::domains::solve_values

use crate::domains::{declared_range, eval, int_range, Interval, Summaries};
use crate::flowdrive::RawFinding;
use crate::lint::LintId;
use slif_speclang::{FlowBehavior, FlowOp};

pub(crate) fn check(
    b: &FlowBehavior,
    states: &[Option<Vec<Interval>>],
    summaries: &Summaries,
) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, n) in b.nodes.iter().enumerate() {
        let Some(Some(state)) = states.get(i) else {
            continue; // unreachable: claim nothing about dead code
        };
        match &n.op {
            FlowOp::Assign { dst, index, value } => {
                let Some(info) = b.slots.get(*dst as usize) else {
                    continue;
                };
                // Booleans are the type checker's business; loop
                // variables have no declared width.
                if info.is_bool || info.width.is_none() {
                    continue;
                }
                let declared = declared_range(info);
                let v = eval(value, state, &b.slots, summaries);
                if v.disjoint(declared) {
                    let what = if index.is_some() {
                        format!("an element of {}", info.name)
                    } else {
                        info.name.clone()
                    };
                    let w = info.width.unwrap_or(0);
                    out.push(RawFinding {
                        lint: LintId::ValueRangeOverflow,
                        node: i as u32,
                        message: format!(
                            "assignment to {what} always overflows: the stored \
                             value is in {v}, but int<{w}> holds {declared}"
                        ),
                    });
                }
            }
            FlowOp::Return { value: Some(v) } => {
                let Some(w) = b.ret_width else {
                    continue;
                };
                let declared = int_range(w);
                let r = eval(v, state, &b.slots, summaries);
                if r.disjoint(declared) {
                    out.push(RawFinding {
                        lint: LintId::ValueRangeOverflow,
                        node: i as u32,
                        message: format!(
                            "returned value always overflows: it is in {r}, but \
                             {} returns int<{w}> holding {declared}",
                            b.name
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}
