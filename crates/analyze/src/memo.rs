//! Sliced re-linting for edit sessions.
//!
//! The analyzer is pure: each pass is a function of the compiled view,
//! the partition, and the configuration. When an incremental edit patched
//! annotations in place — topology and partition untouched — most passes
//! read nothing the edit changed:
//!
//! | pass         | reads                                             |
//! |--------------|---------------------------------------------------|
//! | `race`       | topology, channel tags, partition                 |
//! | `reach`      | topology only                                     |
//! | `cycle`      | topology only                                     |
//! | `bitwidth`   | channel bits, bus widths, partition, config       |
//! | `annotation` | weight tables, class kinds                        |
//!
//! No pass reads channel *frequencies* at all: a frequency-only edit
//! (the common "tweak a loop bound" case) re-lints for free.
//!
//! [`AnalysisMemo`] caches each pass's findings between runs;
//! [`analyze_compiled_memoized`] re-runs only the passes an
//! [`AnalysisDirt`] marks stale and splices the rest from the cache.
//! Findings are cached span-less and spans re-attached from the current
//! [`SourceMap`] on every call, because an edit moves spans even when it
//! changes no finding.

use crate::analyzer::{attach_spans, shape_checked, Ctx, Sink, SourceMap};
use crate::lint::AnalysisConfig;
use crate::report::{AnalysisReport, Finding};
use crate::{annotation, bitwidth, cycle, race, reach};
use slif_core::{AnnotationDelta, CompiledDesign, Partition};

/// Number of lint passes, in execution order.
const PASSES: usize = 5;

/// Which analyzer inputs changed since the memo was last valid.
///
/// The contract mirrors
/// [`patch_annotations_delta`](CompiledDesign::patch_annotations_delta):
/// the flags describe *annotation* changes on an otherwise identical
/// compiled view. Any change the flags cannot express — topology,
/// partition contents, thresholds — must use [`AnalysisDirt::all`],
/// which re-runs every pass (and is what an empty memo does anyway).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnalysisDirt {
    /// Re-run every pass regardless of the other flags.
    pub everything: bool,
    /// Some channel's bit width or concurrency tag changed
    /// (`race` and `bitwidth` re-run).
    pub chan_bits_or_tags: bool,
    /// Some node's weight row changed (`annotation` re-runs).
    pub weights: bool,
}

impl AnalysisDirt {
    /// Nothing changed: every cached pass result is still valid.
    pub fn none() -> Self {
        Self::default()
    }

    /// Everything may have changed: re-run all passes.
    pub fn all() -> Self {
        Self {
            everything: true,
            ..Self::default()
        }
    }

    /// Whether pass `i` (execution order) must re-run.
    fn stale(&self, i: usize) -> bool {
        if self.everything {
            return true;
        }
        match i {
            0 => self.chan_bits_or_tags,          // race: channel tags
            1 | 2 => false,                       // reach, cycle: topology only
            3 => self.chan_bits_or_tags,          // bitwidth: channel bits
            _ => self.weights,                    // annotation: weight tables
        }
    }
}

impl From<&AnnotationDelta> for AnalysisDirt {
    /// The dirt an in-place annotation patch implies. Frequency-only
    /// deltas map to [`AnalysisDirt::none`]: no lint reads frequencies.
    fn from(delta: &AnnotationDelta) -> Self {
        Self {
            everything: false,
            chan_bits_or_tags: delta.chan_bits_or_tags,
            weights: delta.weights,
        }
    }
}

/// One pass's cached result: its span-less findings and how many it
/// suppressed under `Allow` levels.
#[derive(Debug, Clone, Default)]
struct PassCache {
    findings: Vec<Finding>,
    suppressed: usize,
}

/// Cached per-pass lint results for one (compiled view, partition,
/// config) lineage. See [`analyze_compiled_memoized`].
#[derive(Debug, Default)]
pub struct AnalysisMemo {
    /// The configuration the cached results were produced under; a
    /// mismatch invalidates everything (levels decide suppression).
    config: Option<AnalysisConfig>,
    passes: Option<[PassCache; PASSES]>,
    /// Passes served from cache across all runs (operational metric).
    reused: u64,
    /// Passes actually executed across all runs.
    ran: u64,
}

impl AnalysisMemo {
    /// Creates an empty memo; the first run seeds every pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lint passes served from cache across all runs.
    pub fn passes_reused(&self) -> u64 {
        self.reused
    }

    /// Lint passes actually executed across all runs (including seeding).
    pub fn passes_run(&self) -> u64 {
        self.ran
    }
}

/// [`analyze_compiled_with_sources`](crate::analyze_compiled_with_sources)
/// with per-pass memoization: passes whose inputs `dirt` leaves clean are
/// spliced from `memo` instead of re-running. With a warm memo and any
/// `dirt`, the report is `==` (and renders byte-identical) to the
/// unmemoized analyzer — provided the caller upholds the [`AnalysisDirt`]
/// contract that topology and partition are unchanged since the memo was
/// seeded. When in doubt, pass [`AnalysisDirt::all`].
pub fn analyze_compiled_memoized(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
    memo: &mut AnalysisMemo,
    dirt: &AnalysisDirt,
) -> AnalysisReport {
    let partition = shape_checked(cd, partition);
    let ctx = Ctx {
        cd,
        partition,
        config,
    };
    let seeded = memo.passes.is_some() && memo.config.as_ref() == Some(config);
    if !seeded {
        memo.passes = Some(Default::default());
        memo.config = Some(*config);
    }
    // The borrow is re-taken after the reset above.
    let passes = match memo.passes.as_mut() {
        Some(p) => p,
        None => unreachable!("memo.passes seeded just above"),
    };
    let runners: [fn(&Ctx<'_>, &mut Sink<'_>); PASSES] = [
        race::run,
        reach::run,
        cycle::run,
        bitwidth::run,
        annotation::run,
    ];
    for (i, run) in runners.iter().enumerate() {
        if seeded && !dirt.stale(i) {
            memo.reused += 1;
            continue;
        }
        let mut sink = Sink::new(config);
        run(&ctx, &mut sink);
        let (findings, suppressed) = sink.into_parts();
        passes[i] = PassCache {
            findings,
            suppressed,
        };
        memo.ran += 1;
    }

    let mut findings: Vec<Finding> = passes
        .iter()
        .flat_map(|p| p.findings.iter().cloned())
        .collect();
    let suppressed = passes.iter().map(|p| p.suppressed).sum();
    attach_spans(cd, sources, &mut findings);
    AnalysisReport::new(findings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_compiled_with_sources;
    use crate::lint::{LintId, LintLevel};
    use slif_core::gen::DesignGenerator;

    fn fixture() -> (CompiledDesign, Partition) {
        let (design, partition) = DesignGenerator::new(41)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .buses(1)
            .build();
        (CompiledDesign::compile(&design), partition)
    }

    #[test]
    fn memoized_equals_unmemoized_for_every_dirt() {
        let (cd, part) = fixture();
        let config = AnalysisConfig::new();
        let sources = SourceMap::default();
        let plain = analyze_compiled_with_sources(&cd, Some(&part), &config, &sources);

        let mut memo = AnalysisMemo::new();
        let dirts = [
            AnalysisDirt::all(),
            AnalysisDirt::none(),
            AnalysisDirt {
                everything: false,
                chan_bits_or_tags: true,
                weights: false,
            },
            AnalysisDirt {
                everything: false,
                chan_bits_or_tags: false,
                weights: true,
            },
            AnalysisDirt::none(),
        ];
        for dirt in dirts {
            let memoized =
                analyze_compiled_memoized(&cd, Some(&part), &config, &sources, &mut memo, &dirt);
            assert_eq!(memoized, plain, "dirt {dirt:?}");
            assert_eq!(memoized.to_string(), plain.to_string(), "dirt {dirt:?}");
        }
        // Seeding ran 5 passes; the later runs re-ran only stale ones:
        // none=0, bits=race+bitwidth=2, weights=annotation=1, none=0.
        assert_eq!(memo.passes_run(), 8);
        assert!(memo.passes_reused() > 0);
    }

    #[test]
    fn annotation_dirt_tracks_a_real_weight_change() {
        let (mut design, partition) = DesignGenerator::new(17)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(1)
            .build();
        let config = AnalysisConfig::new();
        let sources = SourceMap::default();
        let mut cd = CompiledDesign::compile(&design);
        let mut memo = AnalysisMemo::new();
        let first = analyze_compiled_memoized(
            &cd,
            Some(&partition),
            &config,
            &sources,
            &mut memo,
            &AnalysisDirt::all(),
        );
        assert_eq!(
            first,
            analyze_compiled_with_sources(&cd, Some(&partition), &config, &sources)
        );

        // Clearing a node's weights trips the annotation lint; the memo
        // must pick it up from a weights-only dirt.
        let victim = design.graph().behavior_ids().next().unwrap();
        design.graph_mut().node_mut(victim).ict_mut().clear();
        design.graph_mut().node_mut(victim).size_mut().clear();
        let delta = cd.patch_annotations_delta(&design).unwrap();
        assert!(delta.weights);
        let sliced = analyze_compiled_memoized(
            &cd,
            Some(&partition),
            &config,
            &sources,
            &mut memo,
            &AnalysisDirt::from(&delta),
        );
        assert_eq!(
            sliced,
            analyze_compiled_with_sources(&cd, Some(&partition), &config, &sources),
            "sliced re-lint missed the weight change"
        );
        assert_ne!(sliced, first, "weight wipe must surface new findings");
    }

    #[test]
    fn config_change_invalidates_the_memo() {
        let (cd, part) = fixture();
        let sources = SourceMap::default();
        let mut memo = AnalysisMemo::new();
        let loud = AnalysisConfig::new();
        let _ = analyze_compiled_memoized(
            &cd,
            Some(&part),
            &loud,
            &sources,
            &mut memo,
            &AnalysisDirt::all(),
        );
        // Silence every lint: with AnalysisDirt::none, a stale memo would
        // happily return the loud findings. The config check must reseed.
        let mut quiet = AnalysisConfig::new();
        for lint in LintId::ALL {
            quiet = quiet.with_level(lint, LintLevel::Allow);
        }
        let report = analyze_compiled_memoized(
            &cd,
            Some(&part),
            &quiet,
            &sources,
            &mut memo,
            &AnalysisDirt::none(),
        );
        assert_eq!(
            report,
            analyze_compiled_with_sources(&cd, Some(&part), &quiet, &sources)
        );
        assert!(report.findings().is_empty());
    }
}
