//! Sliced re-linting for edit sessions.
//!
//! The analyzer is pure: each pass is a function of the compiled view,
//! the partition, the flow program, and the configuration. When an
//! incremental edit patched annotations in place — topology and
//! partition untouched — most passes read nothing the edit changed:
//!
//! | pass               | reads                                       |
//! |--------------------|---------------------------------------------|
//! | `race` (A001)      | topology, channel tags *and frequencies*, partition |
//! | `reach` (A002)     | topology only                               |
//! | `cycle` (A003)     | topology only                               |
//! | `bitwidth` (A004)  | channel bits, bus widths, partition, config |
//! | `annotation` (A005)| weight tables, class kinds                  |
//! | flow (A006–A009)   | the behavior flow program only              |
//! | `race` (A010)      | topology, channel tags and frequencies, partition |
//!
//! A frequency-only edit re-runs just the two race passes (the
//! proven/unproven split is a happens-before judgment over observed
//! frequencies); a weight tweak re-runs `annotation` alone; a body edit
//! re-runs the flow passes — and those keep a second, per-behavior cache
//! keyed by structural hash, so only the edited behavior actually
//! re-solves.
//!
//! [`AnalysisMemo`] caches each pass's findings between runs;
//! [`analyze_compiled_memoized`] re-runs only the passes an
//! [`AnalysisDirt`] marks stale and splices the rest from the cache.
//! Design-node-anchored findings are cached span-less and spans
//! re-attached from the current [`SourceMap`] on every call, because an
//! edit moves spans even when it changes no finding. (Flow findings are
//! materialized with their statement spans by the flow driver, which
//! re-runs whenever the flow program changed — span drift included.)

use crate::analyzer::{attach_spans, shape_checked, Ctx, Sink, SourceMap};
use crate::flowdrive::{self, FlowCache, FLOW_PASSES};
use crate::lint::AnalysisConfig;
use crate::report::{AnalysisReport, Finding};
use crate::{annotation, bitwidth, cycle, race, reach};
use slif_core::{AnnotationDelta, CompiledDesign, Partition};
use slif_speclang::FlowProgram;

/// Number of lint passes, in execution order: the five design-level
/// passes, the four flow passes, and the trailing `A010` race pass.
const PASSES: usize = 10;

/// Index of the first flow pass (`A006`) in execution order.
const FLOW_BASE: usize = 5;

/// Which analyzer inputs changed since the memo was last valid.
///
/// The contract mirrors
/// [`patch_annotations_delta`](CompiledDesign::patch_annotations_delta):
/// the flags describe *annotation* changes on an otherwise identical
/// compiled view, plus a [`flow`](Self::flow) flag for behavior-body
/// edits (the flow program was re-lowered). Any change the flags cannot
/// express — topology, partition contents, thresholds — must use
/// [`AnalysisDirt::all`], which re-runs every pass (and is what an empty
/// memo does anyway).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnalysisDirt {
    /// Re-run every pass regardless of the other flags.
    pub everything: bool,
    /// Some channel's bit width or concurrency tag changed
    /// (`race`, `bitwidth`, and the `A010` pass re-run).
    pub chan_bits_or_tags: bool,
    /// Some channel's access frequency changed (both race passes
    /// re-run: frequencies decide the proven/unproven split).
    pub chan_freqs: bool,
    /// Some node's weight row changed (`annotation` re-runs).
    pub weights: bool,
    /// The flow program was re-lowered — structure, suppressions, or
    /// just spans may differ (the `A006`–`A009` passes re-run, hitting
    /// their per-behavior cache for unchanged behaviors).
    pub flow: bool,
}

impl AnalysisDirt {
    /// Nothing changed: every cached pass result is still valid.
    pub fn none() -> Self {
        Self::default()
    }

    /// Everything may have changed: re-run all passes.
    pub fn all() -> Self {
        Self {
            everything: true,
            ..Self::default()
        }
    }

    /// Whether pass `i` (execution order) must re-run.
    fn stale(&self, i: usize) -> bool {
        if self.everything {
            return true;
        }
        match i {
            0 => self.chan_bits_or_tags || self.chan_freqs, // race: tags + freqs
            1 | 2 => false,                                 // reach, cycle: topology only
            3 => self.chan_bits_or_tags,                    // bitwidth: channel bits
            4 => self.weights,                              // annotation: weight tables
            5..=8 => self.flow,                             // flow passes: flow program
            _ => self.chan_bits_or_tags || self.chan_freqs, // A010: tags + freqs
        }
    }
}

impl From<&AnnotationDelta> for AnalysisDirt {
    /// The dirt an in-place annotation patch implies. An annotation
    /// patch never touches behavior bodies, so `flow` stays clean.
    fn from(delta: &AnnotationDelta) -> Self {
        Self {
            everything: false,
            chan_bits_or_tags: delta.chan_bits_or_tags,
            chan_freqs: delta.chan_freqs,
            weights: delta.weights,
            flow: false,
        }
    }
}

/// One pass's cached result: its findings (span-less for node-anchored
/// ones) and how many it suppressed under `Allow` levels or `@allow`.
#[derive(Debug, Clone, Default)]
struct PassCache {
    findings: Vec<Finding>,
    suppressed: usize,
}

/// Cached per-pass lint results for one (compiled view, partition,
/// config, flow) lineage. See [`analyze_compiled_memoized`].
#[derive(Debug, Default)]
pub struct AnalysisMemo {
    /// The configuration the cached results were produced under; a
    /// mismatch invalidates everything (levels decide suppression).
    config: Option<AnalysisConfig>,
    /// Fingerprint of the spec's `@allow` set the cached results were
    /// produced under (`None` = no flow program); a mismatch reseeds.
    sup_fp: Option<u64>,
    passes: Option<[PassCache; PASSES]>,
    /// Per-behavior flow solves, keyed by structural hash. Survives
    /// pass-cache reseeds: levels and suppressions are applied at
    /// materialization, never baked into the cached solves.
    flow_cache: FlowCache,
    /// Passes served from cache across all runs (operational metric).
    reused: u64,
    /// Passes actually executed across all runs.
    ran: u64,
}

impl AnalysisMemo {
    /// Creates an empty memo; the first run seeds every pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lint passes served from cache across all runs.
    pub fn passes_reused(&self) -> u64 {
        self.reused
    }

    /// Lint passes actually executed across all runs (including seeding).
    pub fn passes_run(&self) -> u64 {
        self.ran
    }
}

/// [`analyze_compiled_with_sources`](crate::analyze_compiled_with_sources)
/// with per-pass memoization: passes whose inputs `dirt` leaves clean are
/// spliced from `memo` instead of re-running. With a warm memo and any
/// `dirt`, the report is `==` (and renders byte-identical) to the
/// unmemoized analyzer — provided the caller upholds the [`AnalysisDirt`]
/// contract that topology and partition are unchanged since the memo was
/// seeded. When in doubt, pass [`AnalysisDirt::all`].
pub fn analyze_compiled_memoized(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
    memo: &mut AnalysisMemo,
    dirt: &AnalysisDirt,
) -> AnalysisReport {
    analyze_compiled_memoized_with_flow(cd, partition, config, sources, None, memo, dirt)
}

/// [`analyze_compiled_with_flow`](crate::analyze_compiled_with_flow)
/// with per-pass memoization. Equal to the unmemoized flow analysis
/// under the same [`AnalysisDirt`] contract; additionally, when `dirt`
/// marks the flow program stale, only behaviors whose structural hash
/// (or callee summaries) changed actually re-solve — the rest come from
/// the memo's per-behavior cache, re-materialized with current spans.
pub fn analyze_compiled_memoized_with_flow(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
    flow: Option<&FlowProgram>,
    memo: &mut AnalysisMemo,
    dirt: &AnalysisDirt,
) -> AnalysisReport {
    let partition = shape_checked(cd, partition);
    let ctx = Ctx {
        cd,
        partition,
        config,
    };
    let sup_fp = flow.map(|f| f.suppressions.fingerprint());
    let seeded =
        memo.passes.is_some() && memo.config.as_ref() == Some(config) && memo.sup_fp == sup_fp;
    if !seeded {
        memo.passes = Some(Default::default());
        memo.config = Some(*config);
        memo.sup_fp = sup_fp;
    }
    // The borrow is re-taken after the reset above.
    let passes = match memo.passes.as_mut() {
        Some(p) => p,
        None => unreachable!("memo.passes seeded just above"),
    };
    let new_sink = || match flow {
        Some(f) => Sink::with_suppressions(config, &f.suppressions, cd),
        None => Sink::new(config),
    };

    let runners: [fn(&Ctx<'_>, &mut Sink<'_>); FLOW_BASE] = [
        race::run,
        reach::run,
        cycle::run,
        bitwidth::run,
        annotation::run,
    ];
    for (i, run) in runners.iter().enumerate() {
        if seeded && !dirt.stale(i) {
            memo.reused += 1;
            continue;
        }
        let mut sink = new_sink();
        run(&ctx, &mut sink);
        let (findings, suppressed) = sink.into_parts();
        passes[i] = PassCache {
            findings,
            suppressed,
        };
        memo.ran += 1;
    }

    // The four flow passes share one solve, so they go stale (and
    // re-run) together.
    if seeded && !dirt.stale(FLOW_BASE) {
        memo.reused += FLOW_PASSES as u64;
    } else if let Some(f) = flow {
        let results = flowdrive::run_flow_passes(f, config, Some(&mut memo.flow_cache));
        for (p, (findings, suppressed)) in results.passes.into_iter().enumerate() {
            passes[FLOW_BASE + p] = PassCache {
                findings,
                suppressed,
            };
            memo.ran += 1;
        }
    } else {
        for p in 0..FLOW_PASSES {
            passes[FLOW_BASE + p] = PassCache::default();
            memo.ran += 1;
        }
    }

    if seeded && !dirt.stale(PASSES - 1) {
        memo.reused += 1;
    } else {
        let mut sink = new_sink();
        race::run_unproven(&ctx, &mut sink);
        let (findings, suppressed) = sink.into_parts();
        passes[PASSES - 1] = PassCache {
            findings,
            suppressed,
        };
        memo.ran += 1;
    }

    let mut findings: Vec<Finding> = passes
        .iter()
        .flat_map(|p| p.findings.iter().cloned())
        .collect();
    let suppressed = passes.iter().map(|p| p.suppressed).sum();
    attach_spans(cd, sources, &mut findings);
    AnalysisReport::new(findings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_compiled_with_sources;
    use crate::lint::{LintId, LintLevel};
    use slif_core::gen::DesignGenerator;

    fn fixture() -> (CompiledDesign, Partition) {
        let (design, partition) = DesignGenerator::new(41)
            .behaviors(10)
            .variables(8)
            .processors(2)
            .memories(1)
            .buses(1)
            .build();
        (CompiledDesign::compile(&design), partition)
    }

    fn dirt(bits: bool, freqs: bool, weights: bool, flow: bool) -> AnalysisDirt {
        AnalysisDirt {
            everything: false,
            chan_bits_or_tags: bits,
            chan_freqs: freqs,
            weights,
            flow,
        }
    }

    #[test]
    fn memoized_equals_unmemoized_for_every_dirt() {
        let (cd, part) = fixture();
        let config = AnalysisConfig::new();
        let sources = SourceMap::default();
        let plain = analyze_compiled_with_sources(&cd, Some(&part), &config, &sources);

        let mut memo = AnalysisMemo::new();
        let dirts = [
            AnalysisDirt::all(),
            AnalysisDirt::none(),
            dirt(true, false, false, false),
            dirt(false, true, false, false),
            dirt(false, false, true, false),
            dirt(false, false, false, true),
            AnalysisDirt::none(),
        ];
        for dirt in dirts {
            let memoized =
                analyze_compiled_memoized(&cd, Some(&part), &config, &sources, &mut memo, &dirt);
            assert_eq!(memoized, plain, "dirt {dirt:?}");
            assert_eq!(memoized.to_string(), plain.to_string(), "dirt {dirt:?}");
        }
        // Seeding ran 10 passes; later runs re-ran only stale ones:
        // none=0, bits=race+bitwidth+A010=3, freqs=race+A010=2,
        // weights=annotation=1, flow=A006..A009=4, none=0.
        assert_eq!(memo.passes_run(), 20);
        assert!(memo.passes_reused() > 0);
    }

    #[test]
    fn annotation_dirt_tracks_a_real_weight_change() {
        let (mut design, partition) = DesignGenerator::new(17)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(1)
            .build();
        let config = AnalysisConfig::new();
        let sources = SourceMap::default();
        let mut cd = CompiledDesign::compile(&design);
        let mut memo = AnalysisMemo::new();
        let first = analyze_compiled_memoized(
            &cd,
            Some(&partition),
            &config,
            &sources,
            &mut memo,
            &AnalysisDirt::all(),
        );
        assert_eq!(
            first,
            analyze_compiled_with_sources(&cd, Some(&partition), &config, &sources)
        );

        // Clearing a node's weights trips the annotation lint; the memo
        // must pick it up from a weights-only dirt.
        let victim = design.graph().behavior_ids().next().unwrap();
        design.graph_mut().node_mut(victim).ict_mut().clear();
        design.graph_mut().node_mut(victim).size_mut().clear();
        let delta = cd.patch_annotations_delta(&design).unwrap();
        assert!(delta.weights);
        let sliced = analyze_compiled_memoized(
            &cd,
            Some(&partition),
            &config,
            &sources,
            &mut memo,
            &AnalysisDirt::from(&delta),
        );
        assert_eq!(
            sliced,
            analyze_compiled_with_sources(&cd, Some(&partition), &config, &sources),
            "sliced re-lint missed the weight change"
        );
        assert_ne!(sliced, first, "weight wipe must surface new findings");
    }

    #[test]
    fn config_change_invalidates_the_memo() {
        let (cd, part) = fixture();
        let sources = SourceMap::default();
        let mut memo = AnalysisMemo::new();
        let loud = AnalysisConfig::new();
        let _ = analyze_compiled_memoized(
            &cd,
            Some(&part),
            &loud,
            &sources,
            &mut memo,
            &AnalysisDirt::all(),
        );
        // Silence every lint: with AnalysisDirt::none, a stale memo would
        // happily return the loud findings. The config check must reseed.
        let mut quiet = AnalysisConfig::new();
        for lint in LintId::ALL {
            quiet = quiet.with_level(lint, LintLevel::Allow);
        }
        let report = analyze_compiled_memoized(
            &cd,
            Some(&part),
            &quiet,
            &sources,
            &mut memo,
            &AnalysisDirt::none(),
        );
        assert_eq!(
            report,
            analyze_compiled_with_sources(&cd, Some(&part), &quiet, &sources)
        );
        assert!(report.findings().is_empty());
    }

    #[test]
    fn flow_memo_equals_unmemoized_flow_analysis() {
        use crate::analyze_compiled_with_flow;
        use slif_speclang::{parse, FlowProgram};

        let src = "system T;\nvar g : int<8>;\n\
                   process Main { g = g + 1; wait 1; }\n\
                   func F() -> int<8> { var x : int<8>; x = 1; return x; }\n";
        let spec = parse(src).expect("parse");
        let flow = FlowProgram::from_spec(&spec);
        let (cd, part) = fixture();
        let config = AnalysisConfig::new();
        let sources = SourceMap::default();
        let plain = analyze_compiled_with_flow(&cd, Some(&part), &config, &flow, Some(&sources));

        let mut memo = AnalysisMemo::new();
        for d in [
            AnalysisDirt::all(),
            AnalysisDirt::none(),
            dirt(false, false, false, true),
        ] {
            let memoized = analyze_compiled_memoized_with_flow(
                &cd,
                Some(&part),
                &config,
                &sources,
                Some(&flow),
                &mut memo,
                &d,
            );
            assert_eq!(memoized, plain, "dirt {d:?}");
            assert_eq!(memoized.to_string(), plain.to_string(), "dirt {d:?}");
        }
        // The flow-dirty rerun must have served every behavior solve
        // from the per-behavior cache (structural hashes unchanged).
        assert!(memo.passes_reused() > 0);
    }
}
