//! The lint registry: stable IDs, default severities, and per-run
//! configuration.
//!
//! Every analysis this crate ships is a *lint* with a stable ID
//! (`A001`…) so reports stay greppable and suppressions stay meaningful
//! across releases. A [`LintId`] names the analysis; [`LintLevel`] says
//! what the analyzer does with its findings (ignore, warn, deny); an
//! [`AnalysisConfig`] carries the per-lint levels plus the numeric knobs
//! some lints need.

use std::fmt;

/// The analyses the engine ships, one stable ID each.
///
/// The discriminant order is the `A00n` numbering and the order passes
/// run in, so reports list findings grouped by lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LintId {
    /// `A001`: two processes can reach write (or write/read) channels to
    /// the same variable with overlapping concurrency, and the partition
    /// does not serialize them onto one component.
    SharedVariableRace,
    /// `A002`: a behavior or variable is unreachable from every process
    /// root — dead weight that still costs estimation time and component
    /// area.
    DeadCode,
    /// `A003`: the behavior access graph has a cycle, which makes the
    /// Equation 1 execution-time recurrence non-terminating.
    RecursionCycle,
    /// `A004`: channel `bits` are inconsistent with the accessed scalar's
    /// width (silent truncation) or with the mapped bus's `bitwidth`
    /// (excessive transfer splitting), or the mapped bus does not exist.
    BitwidthMismatch,
    /// `A005`: a node has no `ict`/`size` weight for a component class the
    /// allocation actually instantiates — every estimate would consult the
    /// [`EstimatorConfig::degraded`] defaults there.
    ///
    /// [`EstimatorConfig::degraded`]: https://docs.rs/slif-estimate
    MissingAnnotation,
    /// `A006`: flow-sensitive value-range analysis proves an assignment's
    /// (or return's) computed interval is *entirely* outside the target's
    /// representable range — a definite overflow, not a may-truncate
    /// heuristic like `A004`.
    ValueRangeOverflow,
    /// `A007`: a local variable is read at a point no execution path has
    /// assigned — definite-assignment analysis found zero reaching
    /// definitions on *any* path.
    UninitializedRead,
    /// `A008`: a whole-slot store to a local whose value no later read can
    /// observe — backward liveness proved the stored value dead.
    DeadStore,
    /// `A009`: a branch condition the interval analysis evaluates to a
    /// constant — one arm is unreachable on every execution.
    ConstantCondition,
    /// `A010`: a shared-variable interleaving that satisfies the `A001`
    /// topology criteria but that the happens-before refinement could not
    /// *prove* reachable at runtime (a reaching channel has zero observed
    /// access frequency). Split off from `A001` so proven races stay
    /// deny-level while unproven ones only warn.
    UnprovenInterleaving,
}

/// Number of lints in the registry.
pub const LINT_COUNT: usize = 10;

impl LintId {
    /// Every lint, in `A001`… order.
    pub const ALL: [LintId; LINT_COUNT] = [
        LintId::SharedVariableRace,
        LintId::DeadCode,
        LintId::RecursionCycle,
        LintId::BitwidthMismatch,
        LintId::MissingAnnotation,
        LintId::ValueRangeOverflow,
        LintId::UninitializedRead,
        LintId::DeadStore,
        LintId::ConstantCondition,
        LintId::UnprovenInterleaving,
    ];

    /// The stable report code (`"A001"`…). Codes are append-only: a
    /// retired lint's code is never reused.
    pub fn code(self) -> &'static str {
        match self {
            LintId::SharedVariableRace => "A001",
            LintId::DeadCode => "A002",
            LintId::RecursionCycle => "A003",
            LintId::BitwidthMismatch => "A004",
            LintId::MissingAnnotation => "A005",
            LintId::ValueRangeOverflow => "A006",
            LintId::UninitializedRead => "A007",
            LintId::DeadStore => "A008",
            LintId::ConstantCondition => "A009",
            LintId::UnprovenInterleaving => "A010",
        }
    }

    /// The kebab-case name used in configuration and reports.
    pub fn name(self) -> &'static str {
        match self {
            LintId::SharedVariableRace => "shared-variable-race",
            LintId::DeadCode => "dead-code",
            LintId::RecursionCycle => "recursion-cycle",
            LintId::BitwidthMismatch => "bitwidth-mismatch",
            LintId::MissingAnnotation => "missing-annotation",
            LintId::ValueRangeOverflow => "value-range-overflow",
            LintId::UninitializedRead => "uninitialized-read",
            LintId::DeadStore => "dead-store",
            LintId::ConstantCondition => "constant-condition",
            LintId::UnprovenInterleaving => "unproven-interleaving",
        }
    }

    /// One-line description for `--help`-style listings.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::SharedVariableRace => {
                "concurrent unserialized writes to a shared variable"
            }
            LintId::DeadCode => "behaviors/variables unreachable from any process root",
            LintId::RecursionCycle => {
                "access-graph cycle that makes Eq. 1 estimation non-terminating"
            }
            LintId::BitwidthMismatch => {
                "channel bits inconsistent with scalar width or mapped bus bitwidth"
            }
            LintId::MissingAnnotation => {
                "missing ict/size weight for an allocated component class"
            }
            LintId::ValueRangeOverflow => {
                "assigned value range provably outside the target's representable range"
            }
            LintId::UninitializedRead => "local read before any path assigns it",
            LintId::DeadStore => "store to a local no later read observes",
            LintId::ConstantCondition => {
                "branch condition that is constant on every execution"
            }
            LintId::UnprovenInterleaving => {
                "A001-shaped interleaving not proven reachable at runtime"
            }
        }
    }

    /// The level the lint runs at unless configured otherwise.
    ///
    /// Findings the dataflow engine *proves* (races, recursion cycles,
    /// definite overflow, definitely-uninitialized reads) make the
    /// specification's meaning unreliable, so they deny by default; the
    /// rest — including `A010`'s unproven interleavings — are fidelity
    /// warnings.
    pub fn default_level(self) -> LintLevel {
        match self {
            LintId::SharedVariableRace
            | LintId::RecursionCycle
            | LintId::ValueRangeOverflow
            | LintId::UninitializedRead => LintLevel::Deny,
            LintId::DeadCode
            | LintId::BitwidthMismatch
            | LintId::MissingAnnotation
            | LintId::DeadStore
            | LintId::ConstantCondition
            | LintId::UnprovenInterleaving => LintLevel::Warn,
        }
    }

    /// Looks a lint up by its stable code (`"A001"`) or kebab-case name.
    pub fn from_code(code: &str) -> Option<LintId> {
        LintId::ALL
            .into_iter()
            .find(|l| l.code() == code || l.name() == code)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            LintId::SharedVariableRace => 0,
            LintId::DeadCode => 1,
            LintId::RecursionCycle => 2,
            LintId::BitwidthMismatch => 3,
            LintId::MissingAnnotation => 4,
            LintId::ValueRangeOverflow => 5,
            LintId::UninitializedRead => 6,
            LintId::DeadStore => 7,
            LintId::ConstantCondition => 8,
            LintId::UnprovenInterleaving => 9,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// What the analyzer does with a lint's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintLevel {
    /// Drop the findings (only a suppression counter records them).
    Allow,
    /// Report the findings; they do not fail the run.
    Warn,
    /// Report the findings and fail the run
    /// ([`AnalysisReport::has_denials`](crate::AnalysisReport::has_denials)).
    Deny,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        })
    }
}

/// Per-run analyzer configuration: one [`LintLevel`] per lint plus the
/// numeric thresholds the bitwidth lint consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    levels: [LintLevel; LINT_COUNT],
    /// Promote every `Warn`-level finding to `Deny` (CI mode). `Allow`ed
    /// lints stay allowed.
    pub deny_warnings: bool,
    /// How many bus transfers one channel access may take before
    /// `A004` flags the channel/bus pairing as mismatched. The default of
    /// 4 tolerates the paper's address+data packing on narrow buses.
    pub max_transfer_cycles: u32,
    /// How many times the dataflow solver may revisit one control-flow
    /// node before refusing with
    /// [`AnalysisError::WideningCapExceeded`](crate::AnalysisError).
    /// Interval widening converges in a handful of visits per loop
    /// level; the default of 256 leaves generous headroom for nested
    /// loops while keeping fixpoint iteration provably bounded.
    pub max_fixpoint_visits: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        let mut levels = [LintLevel::Warn; LINT_COUNT];
        for lint in LintId::ALL {
            levels[lint.index()] = lint.default_level();
        }
        Self {
            levels,
            deny_warnings: false,
            max_transfer_cycles: 4,
            max_fixpoint_visits: 256,
        }
    }
}

impl AnalysisConfig {
    /// The default configuration: every lint at its
    /// [`default_level`](LintId::default_level).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one lint's level.
    #[must_use]
    pub fn with_level(mut self, lint: LintId, level: LintLevel) -> Self {
        self.levels[lint.index()] = level;
        self
    }

    /// Enables or disables warnings-as-denials (CI mode).
    #[must_use]
    pub fn with_deny_warnings(mut self, deny: bool) -> Self {
        self.deny_warnings = deny;
        self
    }

    /// Replaces the `A004` transfer-cycle threshold.
    #[must_use]
    pub fn with_max_transfer_cycles(mut self, cycles: u32) -> Self {
        self.max_transfer_cycles = cycles;
        self
    }

    /// Replaces the dataflow solver's per-node visit cap.
    #[must_use]
    pub fn with_max_fixpoint_visits(mut self, visits: u32) -> Self {
        self.max_fixpoint_visits = visits;
        self
    }

    /// The configured level of a lint, before `deny_warnings` promotion.
    pub fn level(&self, lint: LintId) -> LintLevel {
        self.levels[lint.index()]
    }

    /// The level findings of `lint` are actually reported at:
    /// the configured level, with `Warn` promoted to `Deny` when
    /// [`deny_warnings`](Self::deny_warnings) is set.
    pub fn effective_level(&self, lint: LintId) -> LintLevel {
        match self.level(lint) {
            LintLevel::Warn if self.deny_warnings => LintLevel::Deny,
            level => level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = LintId::ALL.iter().map(|l| l.code()).collect();
        assert_eq!(
            codes,
            ["A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008", "A009", "A010"]
        );
        for lint in LintId::ALL {
            assert_eq!(LintId::from_code(lint.code()), Some(lint));
            assert_eq!(LintId::from_code(lint.name()), Some(lint));
            assert!(!lint.summary().is_empty());
            assert_eq!(LintId::ALL[lint.index()], lint);
        }
        assert_eq!(LintId::from_code("A999"), None);
    }

    #[test]
    fn names_are_kebab_case() {
        for lint in LintId::ALL {
            assert!(
                lint.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{lint:?} renders `{}`",
                lint.name()
            );
        }
        assert_eq!(
            LintId::SharedVariableRace.to_string(),
            "A001 shared-variable-race"
        );
    }

    #[test]
    fn default_levels_and_overrides() {
        let cfg = AnalysisConfig::new();
        assert_eq!(cfg.level(LintId::SharedVariableRace), LintLevel::Deny);
        assert_eq!(cfg.level(LintId::RecursionCycle), LintLevel::Deny);
        assert_eq!(cfg.level(LintId::DeadCode), LintLevel::Warn);
        let cfg = cfg.with_level(LintId::DeadCode, LintLevel::Allow);
        assert_eq!(cfg.level(LintId::DeadCode), LintLevel::Allow);
        assert_eq!(cfg.effective_level(LintId::DeadCode), LintLevel::Allow);
    }

    #[test]
    fn deny_warnings_promotes_warn_but_not_allow() {
        let cfg = AnalysisConfig::new()
            .with_deny_warnings(true)
            .with_level(LintId::BitwidthMismatch, LintLevel::Allow);
        assert_eq!(cfg.effective_level(LintId::DeadCode), LintLevel::Deny);
        assert_eq!(
            cfg.effective_level(LintId::BitwidthMismatch),
            LintLevel::Allow
        );
        assert_eq!(
            cfg.effective_level(LintId::SharedVariableRace),
            LintLevel::Deny
        );
    }

    #[test]
    fn levels_order_and_display() {
        assert!(LintLevel::Allow < LintLevel::Warn);
        assert!(LintLevel::Warn < LintLevel::Deny);
        assert_eq!(LintLevel::Allow.to_string(), "allow");
        assert_eq!(LintLevel::Warn.to_string(), "warn");
        assert_eq!(LintLevel::Deny.to_string(), "deny");
    }
}
