//! `A004 bitwidth-mismatch`: channel bits vs. scalar width and bus width.
//!
//! Three inconsistencies, all of which the estimators silently absorb
//! today:
//!
//! * a read/write channel carries more bits per access than the scalar
//!   variable it targets can hold — the extra bits are truncated with no
//!   diagnostic anywhere;
//! * a channel is mapped to a bus so much narrower than its transfer
//!   that one access splits into more than
//!   [`max_transfer_cycles`](crate::AnalysisConfig::max_transfer_cycles)
//!   bus cycles (the Section 3 `bus_access_time` model charges
//!   `ceil(bits/bitwidth)` data cycles, so this is a quiet performance
//!   cliff, not an error);
//! * a channel is mapped to a bus that does not exist, so no width check
//!   is possible at all.
//!
//! Arrays are exempt from the truncation check: the frontend legitimately
//! packs address and data bits into one channel transfer, so
//! `bits > word_bits` is expected there.

use crate::analyzer::{Ctx, Sink};
use crate::lint::LintId;
use slif_core::{AccessKind, AccessTarget, NodeKind};

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    let cd = ctx.cd;
    for c in cd.channel_ids() {
        let bits = cd.chan_bits(c);

        // Silent truncation into a scalar variable.
        if let AccessTarget::Node(d) = cd.chan_dst(c) {
            if d.index() < cd.node_count()
                && matches!(cd.chan_kind(c), AccessKind::Read | AccessKind::Write)
            {
                if let NodeKind::Variable {
                    words: 1,
                    word_bits,
                } = cd.node_kind(d)
                {
                    if bits > word_bits {
                        sink.emit(
                            LintId::BitwidthMismatch,
                            Some(d),
                            Some(c),
                            format!(
                                "channel {c} transfers {bits} bits per access but \
                                 scalar variable {d} ({}) holds only {word_bits}; \
                                 the excess is silently truncated",
                                cd.node_name(d)
                            ),
                        );
                    }
                }
            }
        }

        // Bus-side consistency, when a valid partition maps the channel.
        let Some(p) = ctx.partition else {
            continue;
        };
        let Some(bus) = p.channel_bus(c) else {
            continue; // unmapped: the validator's UnmappedChannel finding
        };
        if bus.index() >= cd.bus_count() {
            sink.emit(
                LintId::BitwidthMismatch,
                None,
                Some(c),
                format!(
                    "channel {c} is mapped to bus {bus}, which does not exist; \
                     bitwidth consistency cannot be checked"
                ),
            );
            continue;
        }
        let bw = cd.bus_bitwidth(bus);
        if bw == 0 {
            continue; // the validator's ZeroBitwidthBus error
        }
        let cycles = bits.div_ceil(bw);
        if cycles > ctx.config.max_transfer_cycles {
            sink.emit(
                LintId::BitwidthMismatch,
                None,
                Some(c),
                format!(
                    "channel {c} ({bits} bits per access) needs {cycles} transfers \
                     on {bw}-bit bus {bus}, over the configured limit of {}",
                    ctx.config.max_transfer_cycles
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{AnalysisConfig, LintId};
    use crate::analyze;
    use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind, Partition};

    fn fixture(var_bits: u32, chan_bits: u32, bus_bits: u32) -> (Design, Partition) {
        let mut d = Design::new("bw");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(var_bits));
        let c = d
            .graph_mut()
            .add_channel(main, v.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut().channel_mut(c).set_bits(chan_bits);
        let cpu = d.add_processor("cpu", pc);
        let bus = d.add_bus(Bus::new("b", bus_bits, 1, 2));
        let mut p = Partition::new(&d);
        p.assign_node(main, cpu.into());
        p.assign_node(v, cpu.into());
        p.assign_channel(c, bus);
        (d, p)
    }

    #[test]
    fn scalar_truncation_fires() {
        let (d, p) = fixture(8, 16, 16);
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        let hits: Vec<_> = report.of(LintId::BitwidthMismatch).collect();
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("truncated"), "{}", hits[0].message);
    }

    #[test]
    fn matching_widths_are_clean() {
        let (d, p) = fixture(16, 16, 16);
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::BitwidthMismatch).count(), 0, "{report}");
    }

    #[test]
    fn array_address_packing_is_exempt() {
        let mut d = Design::new("arr");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("tab", NodeKind::array(128, 8));
        let c = d
            .graph_mut()
            .add_channel(main, v.into(), AccessKind::Read)
            .expect("fixture channel");
        d.graph_mut().channel_mut(c).set_bits(15); // 7 addr + 8 data
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::BitwidthMismatch).count(), 0, "{report}");
    }

    #[test]
    fn excessive_bus_splitting_fires() {
        // 64 bits over a 4-bit bus = 16 transfers, over the default 4.
        let (d, p) = fixture(64, 64, 4);
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        let hits: Vec<_> = report.of(LintId::BitwidthMismatch).collect();
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("16 transfers"), "{}", hits[0].message);
        // A looser threshold accepts it.
        let cfg = AnalysisConfig::new().with_max_transfer_cycles(16);
        assert_eq!(
            analyze(&d, Some(&p), &cfg)
                .of(LintId::BitwidthMismatch)
                .count(),
            0
        );
    }

    #[test]
    fn dangling_bus_mapping_fires() {
        let (d, mut p) = fixture(16, 16, 16);
        let c = d.graph().channel_ids().next().expect("fixture channel");
        p.assign_channel(c, slif_core::BusId::from_raw(9));
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        let hits: Vec<_> = report.of(LintId::BitwidthMismatch).collect();
        assert_eq!(hits.len(), 1, "{report}");
        assert!(
            hits[0].message.contains("does not exist"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn zero_width_bus_is_left_to_the_validator() {
        let (mut d, mut p) = fixture(16, 16, 16);
        // Only the fault injector can produce a zero-width bus; with a
        // single bus in the design the hit is deterministic.
        let applied = slif_core::faults::FaultInjector::new(0).apply(
            slif_core::faults::FaultKind::ZeroBusBitwidth,
            &mut d,
            &mut p,
        );
        assert!(applied.is_some());
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::BitwidthMismatch).count(), 0, "{report}");
    }
}
