//! `A005 missing-annotation`: weight gaps on allocated classes.
//!
//! The paper's estimation model needs "one weight for each type of
//! system component on which that node could possibly be implemented"
//! (Section 2.4). The validator warns about gaps against *every* class
//! in the library; this lint is sharper — it checks only the classes the
//! allocation actually instantiates as processors and memories, i.e.
//! exactly the lookups an estimate can perform. Every gap it reports is
//! a site where estimation either fails
//! ([`CoreError::MissingWeight`](slif_core::CoreError)) or consults the
//! `EstimatorConfig::degraded()` defaults and records one (deduplicated)
//! `MissingWeight` estimate warning.

use crate::analyzer::{Ctx, Sink};
use crate::lint::LintId;
use slif_core::ClassId;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    let cd = ctx.cd;
    // The classes actually allocated, deduplicated in index order so the
    // report order is stable.
    let mut classes: Vec<ClassId> = cd
        .pm_refs()
        .map(|pm| cd.component_class(pm))
        .filter(|k| k.index() < cd.class_count())
        .collect();
    classes.sort_by_key(|k| k.index());
    classes.dedup();

    for n in cd.node_ids() {
        let kind = cd.node_kind(n);
        for &class in &classes {
            // Behaviors cannot be mapped into memories, so memory-class
            // gaps are unreachable for them.
            if kind.is_behavior() && !cd.class_kind(class).holds_behaviors() {
                continue;
            }
            let mut missing: Vec<&str> = Vec::new();
            if cd.ict_weight(n, class).is_none() {
                missing.push("ict");
            }
            if cd.size_weight(n, class).is_none() {
                missing.push("size");
            }
            if missing.is_empty() {
                continue;
            }
            let what = if kind.is_behavior() {
                "behavior"
            } else {
                "variable"
            };
            sink.emit(
                LintId::MissingAnnotation,
                Some(n),
                None,
                format!(
                    "{what} {n} ({}) has no {} weight for allocated class {class}: \
                     estimation on it fails or substitutes degraded defaults",
                    cd.node_name(n),
                    missing.join(" or "),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{AnalysisConfig, LintId};
    use crate::analyze;
    use slif_core::{AccessKind, ClassKind, Design, NodeKind};

    fn fixture() -> Design {
        let mut d = Design::new("ann");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, v.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut().node_mut(main).ict_mut().set(pc, 10);
        d.graph_mut().node_mut(main).size_mut().set(pc, 100);
        d.graph_mut().node_mut(v).ict_mut().set(pc, 1);
        d.graph_mut().node_mut(v).size_mut().set(pc, 1);
        d.add_processor("cpu", pc);
        d
    }

    #[test]
    fn fully_annotated_allocation_is_clean() {
        let d = fixture();
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::MissingAnnotation).count(), 0, "{report}");
    }

    #[test]
    fn gap_on_allocated_class_fires() {
        let mut d = fixture();
        let main = d.graph().node_by_name("Main").expect("Main exists");
        d.graph_mut().node_mut(main).ict_mut().clear();
        let report = analyze(&d, None, &AnalysisConfig::new());
        let hits: Vec<_> = report.of(LintId::MissingAnnotation).collect();
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("no ict weight"), "{}", hits[0].message);
        assert!(hits[0].message.contains("Main"), "{}", hits[0].message);
    }

    #[test]
    fn gap_on_unallocated_class_is_ignored() {
        let mut d = fixture();
        // A library class nothing instantiates: no lookups can hit it.
        d.add_class("spare-asic", ClassKind::CustomHw);
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::MissingAnnotation).count(), 0, "{report}");
    }

    #[test]
    fn memory_class_gap_counts_for_variables_only() {
        let mut d = fixture();
        let mc = d.add_class("sram", ClassKind::Memory);
        d.add_memory("m0", mc);
        // Neither node has sram weights: only the variable needs them.
        let report = analyze(&d, None, &AnalysisConfig::new());
        let hits: Vec<_> = report.of(LintId::MissingAnnotation).collect();
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("variable"), "{}", hits[0].message);
        assert!(hits[0].message.contains("ict or size"), "{}", hits[0].message);
    }

    #[test]
    fn both_lists_missing_is_one_finding() {
        let mut d = fixture();
        let v = d.graph().node_by_name("v").expect("v exists");
        d.graph_mut().node_mut(v).ict_mut().clear();
        d.graph_mut().node_mut(v).size_mut().clear();
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::MissingAnnotation).count(), 1, "{report}");
    }
}
