//! The flow-pass driver: runs the dataflow lints (`A006`–`A009`) over a
//! [`FlowProgram`], bottom-up, with per-behavior result caching.
//!
//! Behaviors are solved callee-first so each call site sees its callee's
//! return-range summary. Per behavior the driver computes one interval
//! fixpoint ([`solve_values`]) shared by `A006` and `A009`, plus the two
//! bitset fixpoints for `A007` and `A008`. Raw findings are stored
//! *span-less* and keyed by the behavior's structural hash (plus the
//! fixpoint cap and every callee summary), so an edit session re-solves
//! only behaviors whose structure — or whose callees' ranges — actually
//! changed; spans and lint levels are re-attached from the current
//! program on every materialization, which is why reusing a cache entry
//! is bit-identical to a cold run.
//!
//! A behavior that exceeds the fixpoint visit cap is refused *typed*:
//! its summary degrades to ⊤ and it reports no flow findings. Callers
//! that want the refusal itself surface it through
//! [`check_flow_bounded`](crate::check_flow_bounded).

use crate::dataflow::AnalysisError;
use crate::domains::{solve_values, summarize_returns, Interval, Summaries};
use crate::lint::{AnalysisConfig, LintId, LintLevel};
use crate::report::Finding;
use crate::{constcond, deadstore, range, uninit};
use slif_speclang::FlowProgram;
use std::collections::BTreeMap;

/// How many flow passes the driver owns (`A006`, `A007`, `A008`, `A009`).
pub(crate) const FLOW_PASSES: usize = 4;

/// A finding before materialization: no span, no level, node index into
/// the behavior's flow graph rather than a design node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawFinding {
    pub lint: LintId,
    pub node: u32,
    pub message: String,
}

/// One behavior's cached solve: the inputs fingerprint, the return-range
/// summary callers consume, and the raw findings per flow pass.
#[derive(Debug, Clone)]
struct BehaviorEntry {
    key: u64,
    summary: Interval,
    raw: [Vec<RawFinding>; FLOW_PASSES],
}

/// Per-behavior cache, keyed by behavior name. Owned by
/// [`AnalysisMemo`](crate::AnalysisMemo); a cold run uses a throwaway.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowCache {
    entries: BTreeMap<String, BehaviorEntry>,
}

/// Findings and suppressed counts per flow pass, in `A006`…`A009` order.
pub(crate) struct FlowResults {
    pub passes: [(Vec<Finding>, usize); FLOW_PASSES],
}

/// 64-bit FNV-1a over the solve inputs of one behavior.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn interval(&mut self, v: Interval) {
        self.u64(v.lo as u64);
        self.u64((v.lo >> 64) as u64);
        self.u64(v.hi as u64);
        self.u64((v.hi >> 64) as u64);
    }
}

/// What one behavior's solve depends on: its own structure, the visit
/// cap, and the ranges its callees can return. Everything else (spans,
/// levels, suppressions) is applied at materialization.
fn entry_key(b: &slif_speclang::FlowBehavior, cap: u32, summaries: &Summaries) -> u64 {
    let mut h = Fnv::new();
    h.u64(b.hash);
    h.u64(u64::from(cap));
    for callee in b.callees() {
        let s = summaries.get(callee).copied().unwrap_or(Interval::TOP);
        h.interval(s);
    }
    h.0
}

/// Solves one behavior from scratch. A visit-cap refusal degrades to a
/// ⊤ summary and no findings: the analysis stays total.
fn solve_behavior(
    b: &slif_speclang::FlowBehavior,
    summaries: &Summaries,
    cap: u32,
    key: u64,
) -> BehaviorEntry {
    match solve_values(b, summaries, cap) {
        Ok(states) => BehaviorEntry {
            key,
            summary: summarize_returns(b, &states, summaries),
            raw: [
                range::check(b, &states, summaries),
                uninit::check(b, cap).unwrap_or_default(),
                deadstore::check(b, cap).unwrap_or_default(),
                constcond::check(b, &states, summaries),
            ],
        },
        Err(_) => BehaviorEntry {
            key,
            summary: Interval::TOP,
            raw: [const { Vec::new() }; FLOW_PASSES],
        },
    }
}

/// Runs the four flow passes over every behavior, reusing `cache`
/// entries whose inputs fingerprint is unchanged. The cache is replaced
/// with this run's entries, so behaviors deleted from the spec are
/// pruned. Materialization order is deterministic: pass-major, then
/// behavior declaration order, then flow-node order.
pub(crate) fn run_flow_passes(
    flow: &FlowProgram,
    config: &AnalysisConfig,
    cache: Option<&mut FlowCache>,
) -> FlowResults {
    let cap = config.max_fixpoint_visits;
    let mut summaries: Summaries = BTreeMap::new();
    let mut entries: BTreeMap<String, BehaviorEntry> = BTreeMap::new();
    let old = cache.as_ref().map(|c| &c.entries);
    for i in flow.bottom_up_order() {
        let b = &flow.behaviors[i];
        let key = entry_key(b, cap, &summaries);
        let entry = match old.and_then(|c| c.get(&b.name)).filter(|e| e.key == key) {
            Some(hit) => hit.clone(),
            None => solve_behavior(b, &summaries, cap, key),
        };
        summaries.insert(b.name.clone(), entry.summary);
        entries.insert(b.name.clone(), entry);
    }

    let mut passes: [(Vec<Finding>, usize); FLOW_PASSES] =
        [const { (Vec::new(), 0) }; FLOW_PASSES];
    for (p, (findings, suppressed)) in passes.iter_mut().enumerate() {
        for b in &flow.behaviors {
            let Some(entry) = entries.get(&b.name) else {
                continue;
            };
            for raw in &entry.raw[p] {
                if flow.suppressions.behavior_allows(&b.name, raw.lint.code()) {
                    *suppressed += 1;
                    continue;
                }
                match config.effective_level(raw.lint) {
                    LintLevel::Allow => *suppressed += 1,
                    level => findings.push(Finding {
                        lint: raw.lint,
                        level,
                        message: raw.message.clone(),
                        node: None,
                        channel: None,
                        span: b.nodes.get(raw.node as usize).map(|n| n.span),
                    }),
                }
            }
        }
    }

    if let Some(c) = cache {
        c.entries = entries;
    }
    FlowResults { passes }
}

/// Bottom-up boundedness sweep: `Err` on the first behavior whose
/// fixpoint exceeds the visit cap, naming the behavior and the cap.
/// This is the typed-refusal surface behind
/// [`check_flow_bounded`](crate::check_flow_bounded).
pub(crate) fn check_bounded(flow: &FlowProgram, cap: u32) -> Result<(), AnalysisError> {
    let mut summaries: Summaries = BTreeMap::new();
    for i in flow.bottom_up_order() {
        let b = &flow.behaviors[i];
        let states = solve_values(b, &summaries, cap)?;
        uninit::check(b, cap)?;
        deadstore::check(b, cap)?;
        summaries.insert(b.name.clone(), summarize_returns(b, &states, &summaries));
    }
    Ok(())
}
