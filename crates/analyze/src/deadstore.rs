//! `A008 dead-store`: stores no later read observes.
//!
//! Classic backward liveness over a slot bitset: a whole-slot store to a
//! local (or loop variable) whose target is dead in the store's *out*
//! state computes a value nothing ever reads. Globals and ports are live
//! at exit (another behavior or the environment may read them), array
//! element writes never kill (the rest of the array lives on), and
//! stores whose right-hand side calls user code are kept — the call's
//! side effects are the point, even if the stored value is not.

use crate::dataflow::{solve_backward, AnalysisError, Problem};
use crate::flowdrive::RawFinding;
use crate::lint::LintId;
use slif_speclang::{FlowBehavior, FlowExpr, FlowOp, SlotKind};

struct Live;

fn words_for(b: &FlowBehavior) -> usize {
    b.slots.len().div_ceil(64)
}

fn set(bits: &mut [u64], slot: u32) {
    if let Some(w) = bits.get_mut(slot as usize / 64) {
        *w |= 1 << (slot % 64);
    }
}

fn get(bits: &[u64], slot: u32) -> bool {
    bits.get(slot as usize / 64)
        .is_some_and(|w| w & (1 << (slot % 64)) != 0)
}

impl Problem for Live {
    type State = Vec<u64>;

    fn boundary(&self, b: &FlowBehavior) -> Vec<u64> {
        // Live at exit: everything with an observer outside the behavior.
        let mut bits = vec![0u64; words_for(b)];
        for (i, info) in b.slots.iter().enumerate() {
            if matches!(info.kind, SlotKind::Global | SlotKind::Port(_)) {
                set(&mut bits, i as u32);
            }
        }
        bits
    }

    /// `live-in = (live-out \ defs) ∪ uses`.
    fn transfer(&self, b: &FlowBehavior, node: u32, output: &Vec<u64>) -> Vec<u64> {
        let n = &b.nodes[node as usize];
        let mut bits = output.clone();
        if let Some((dst, indexed)) = n.def() {
            if !indexed {
                if let Some(w) = bits.get_mut(dst as usize / 64) {
                    *w &= !(1 << (dst % 64));
                }
            }
        }
        n.for_each_use(&mut |slot| set(&mut bits, slot));
        bits
    }

    fn join(&self, into: &mut Vec<u64>, from: &Vec<u64>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let u = *a | *b;
            if u != *a {
                *a = u;
                changed = true;
            }
        }
        changed
    }
}

/// Nodes reachable from the entry; dead code is `A002`/structure
/// territory, not a dead *store*.
fn forward_reachable(b: &FlowBehavior) -> Vec<bool> {
    let mut seen = vec![false; b.nodes.len()];
    let mut stack = vec![0u32];
    while let Some(n) = stack.pop() {
        let Some(s) = seen.get_mut(n as usize) else {
            continue;
        };
        if *s {
            continue;
        }
        *s = true;
        stack.extend(&b.nodes[n as usize].succs);
    }
    seen
}

pub(crate) fn check(b: &FlowBehavior, cap: u32) -> Result<Vec<RawFinding>, AnalysisError> {
    let live_out = solve_backward(b, &Live, cap)?;
    let reachable = forward_reachable(b);
    let mut out = Vec::new();
    for (i, n) in b.nodes.iter().enumerate() {
        if n.synthetic || !reachable.get(i).copied().unwrap_or(false) {
            continue;
        }
        let FlowOp::Assign {
            dst,
            index: None,
            value,
        } = &n.op
        else {
            continue;
        };
        let Some(info) = b.slots.get(*dst as usize) else {
            continue;
        };
        if !matches!(info.kind, SlotKind::Local | SlotKind::LoopVar) {
            continue;
        }
        if value.calls_user_code() || matches!(value, FlowExpr::Unknown) {
            continue;
        }
        let Some(Some(after)) = live_out.get(i) else {
            continue; // cannot reach exit: no liveness claim
        };
        if !get(after, *dst) {
            out.push(RawFinding {
                lint: LintId::DeadStore,
                node: i as u32,
                message: format!(
                    "value stored to local {} is never read afterwards",
                    info.name
                ),
            });
        }
    }
    Ok(out)
}
