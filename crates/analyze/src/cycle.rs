//! `A003 recursion-cycle`: cycles in the behavior access graph.
//!
//! The Equation 1 execution-time estimate is a recurrence over the
//! behaviors a behavior accesses; a cycle (direct or mutual recursion,
//! or a message loop between processes) makes that recurrence
//! non-terminating, which is why
//! [`behaviors_bottom_up`](slif_core::CompiledDesign::behaviors_bottom_up)
//! fails on such graphs. This pass mirrors the semantics of
//! [`AccessGraph::find_recursion`](slif_core::AccessGraph::find_recursion)
//! — an iterative colour DFS over behavior→behavior edges of every
//! access kind — but reports *all* back edges, not just the first, so a
//! designer fixes every loop in one round.

use crate::analyzer::{Ctx, Sink};
use crate::lint::LintId;
use slif_core::{AccessTarget, NodeId};

const WHITE: u8 = 0;
const GREY: u8 = 1;
const BLACK: u8 = 2;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    let cd = ctx.cd;
    let n = cd.node_count();
    let mut color = vec![WHITE; n];
    let mut emitted: Vec<NodeId> = Vec::new();
    let mut stack: Vec<(NodeId, usize)> = Vec::new();

    for root in cd.node_ids() {
        if color[root.index()] != WHITE || !cd.node_kind(root).is_behavior() {
            continue;
        }
        color[root.index()] = GREY;
        stack.push((root, 0));
        // `(node, cursor)` are copied out so the `stack` borrow is released
        // before the body pushes or pops.
        while let Some(&mut (node, cursor)) = stack.last_mut() {
            let chans = cd.channels_of(node);
            if cursor >= chans.len() {
                color[node.index()] = BLACK;
                stack.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let c = chans[cursor];
            let AccessTarget::Node(d) = cd.chan_dst(c) else {
                continue;
            };
            if d.index() >= n || !cd.node_kind(d).is_behavior() {
                continue;
            }
            match color[d.index()] {
                WHITE => {
                    color[d.index()] = GREY;
                    stack.push((d, 0));
                }
                GREY if !emitted.contains(&d) => {
                    emitted.push(d);
                    sink.emit(
                        LintId::RecursionCycle,
                        Some(d),
                        Some(c),
                        format!(
                            "behavior {d} ({}) is on an access cycle: channel {c} \
                             from {node} ({}) closes the loop, so Eq. 1 \
                             execution-time estimation cannot terminate",
                            cd.node_name(d),
                            cd.node_name(node),
                        ),
                    );
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{AnalysisConfig, LintId};
    use crate::{analyze, LintLevel};
    use slif_core::{AccessKind, Design, NodeKind};

    #[test]
    fn mutual_recursion_fires() {
        let mut d = Design::new("rec");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let f = d.graph_mut().add_node("f", NodeKind::procedure());
        let g = d.graph_mut().add_node("g", NodeKind::procedure());
        d.graph_mut()
            .add_channel(main, f.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(f, g.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(g, f.into(), AccessKind::Call)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        let cycles: Vec<_> = report.of(LintId::RecursionCycle).collect();
        assert_eq!(cycles.len(), 1, "{report}");
        assert_eq!(cycles[0].level, LintLevel::Deny);
        assert!(cycles[0].message.contains("cycle"), "{}", cycles[0].message);
        // The core detector agrees.
        assert!(d.graph().find_recursion().is_some());
    }

    #[test]
    fn self_call_fires() {
        let mut d = Design::new("self");
        let f = d.graph_mut().add_node("f", NodeKind::process());
        d.graph_mut()
            .add_channel(f, f.into(), AccessKind::Call)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::RecursionCycle).count(), 1, "{report}");
    }

    #[test]
    fn message_loop_between_processes_fires() {
        let mut d = Design::new("msgloop");
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        d.graph_mut()
            .add_channel(a, b.into(), AccessKind::Message)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(b, a.into(), AccessKind::Message)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::RecursionCycle).count(), 1, "{report}");
        assert!(d.graph().find_recursion().is_some());
    }

    #[test]
    fn dag_of_calls_is_clean() {
        let mut d = Design::new("dag");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let f = d.graph_mut().add_node("f", NodeKind::procedure());
        let g = d.graph_mut().add_node("g", NodeKind::procedure());
        // Diamond: Main→f, Main→g, f→g. Shared callee, no cycle.
        d.graph_mut()
            .add_channel(main, f.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(main, g.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(f, g.into(), AccessKind::Call)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::RecursionCycle).count(), 0, "{report}");
        assert!(d.graph().find_recursion().is_none());
    }

    #[test]
    fn two_disjoint_cycles_both_reported() {
        let mut d = Design::new("two");
        let a = d.graph_mut().add_node("a", NodeKind::process());
        let b = d.graph_mut().add_node("b", NodeKind::procedure());
        let x = d.graph_mut().add_node("x", NodeKind::process());
        let y = d.graph_mut().add_node("y", NodeKind::procedure());
        for (s, t) in [(a, b), (b, a), (x, y), (y, x)] {
            d.graph_mut()
                .add_channel(s, t.into(), AccessKind::Call)
                .expect("fixture channel");
        }
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::RecursionCycle).count(), 2, "{report}");
    }
}
