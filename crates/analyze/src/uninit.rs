//! `A007 uninitialized-read`: locals read before any path assigns them.
//!
//! A forward *may-assigned* analysis (union join over a bitset of
//! slots): a slot absent from the may-assigned set at a use site has a
//! definition on **no** path from entry — the read is definitely
//! uninitialized, not merely possibly so. The definite-violation
//! framing keeps the lint deny-worthy: control-flow merges only ever
//! add facts, so a finding survives every execution order.
//!
//! Scope: scalar locals and loop variables. Parameters are initialized
//! by the caller, globals and ports by the environment, and arrays are
//! initialized element-wise (which a whole-slot bit cannot track
//! honestly).

use crate::dataflow::{solve_forward, AnalysisError, Problem};
use crate::flowdrive::RawFinding;
use crate::lint::LintId;
use slif_speclang::{FlowBehavior, SlotKind};

struct MayAssign;

fn words_for(b: &FlowBehavior) -> usize {
    b.slots.len().div_ceil(64)
}

fn set(bits: &mut [u64], slot: u32) {
    if let Some(w) = bits.get_mut(slot as usize / 64) {
        *w |= 1 << (slot % 64);
    }
}

fn get(bits: &[u64], slot: u32) -> bool {
    bits.get(slot as usize / 64)
        .is_some_and(|w| w & (1 << (slot % 64)) != 0)
}

impl Problem for MayAssign {
    type State = Vec<u64>;

    fn boundary(&self, b: &FlowBehavior) -> Vec<u64> {
        let mut bits = vec![0u64; words_for(b)];
        for (i, info) in b.slots.iter().enumerate() {
            // Everything except behavior-introduced storage arrives
            // initialized.
            if !matches!(info.kind, SlotKind::Local | SlotKind::LoopVar) {
                set(&mut bits, i as u32);
            }
        }
        bits
    }

    fn transfer(&self, b: &FlowBehavior, node: u32, input: &Vec<u64>) -> Vec<u64> {
        let mut out = input.clone();
        if let Some((dst, _indexed)) = b.nodes[node as usize].def() {
            // Element writes count: they are how arrays initialize, and
            // over-approximating "assigned" only weakens the lint, never
            // falsifies it.
            set(&mut out, dst);
        }
        out
    }

    fn join(&self, into: &mut Vec<u64>, from: &Vec<u64>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let u = *a | *b;
            if u != *a {
                *a = u;
                changed = true;
            }
        }
        changed
    }
}

pub(crate) fn check(b: &FlowBehavior, cap: u32) -> Result<Vec<RawFinding>, AnalysisError> {
    let states = solve_forward(b, &MayAssign, cap)?;
    let mut out = Vec::new();
    for (i, n) in b.nodes.iter().enumerate() {
        let Some(Some(state)) = states.get(i) else {
            continue;
        };
        let mut flagged: Vec<u32> = Vec::new();
        n.for_each_use(&mut |slot| {
            let Some(info) = b.slots.get(slot as usize) else {
                return;
            };
            if !matches!(info.kind, SlotKind::Local | SlotKind::LoopVar) || info.is_array {
                return;
            }
            if !get(state, slot) && !flagged.contains(&slot) {
                flagged.push(slot);
            }
        });
        for slot in flagged {
            out.push(RawFinding {
                lint: LintId::UninitializedRead,
                node: i as u32,
                message: format!(
                    "local {} is read here, but no path from entry assigns it",
                    b.slots[slot as usize].name
                ),
            });
        }
    }
    Ok(out)
}
